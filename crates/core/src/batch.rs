//! Columnar batch execution: typed column slices and vectorized kernels for
//! fused pipelines (Flare-style tight loops instead of tuple-at-a-time
//! interpretation).
//!
//! The row interpreter ([`crate::fused`]) pulls one [`Value`] enum at a time
//! through boxed UDFs, paying dispatch, `Arc` refcount traffic and hash-map
//! churn per tuple. This module offers the batched alternative: a [`Batch`]
//! of aligned typed [`Column`]s with a *selection vector*, and a
//! [`VectorKernel`] compiled from a fused chain whose steps all carry spec
//! descriptors ([`crate::udf::MapSpec`] et al.). Predicates write selection
//! vectors instead of materializing survivors; tokenizing flat-maps build
//! dictionary-encoded string columns (backed by [`crate::intern`]); the
//! fused terminal `ReduceBy` aggregates through a dictionary-keyed fast path
//! ([`reduce_batch`]) that replaces one hash + one allocation per quantum
//! with one slot increment.
//!
//! **Fallback rule:** compilation ([`VectorKernel::compile`]) fails if any
//! step lacks a spec (opaque closure), and execution
//! ([`VectorKernel::run_values`]) fails if the runtime column types don't
//! match the spec (e.g. a sarg over a mixed column). In both cases engines
//! fall back to the row interpreter for the whole segment, so batching is
//! always semantics-preserving: both paths are derived from the same spec
//! and produce identical values in identical order.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use crate::fused::{FusedPipeline, FusedStep};
use crate::intern::{intern, intern_id};
use crate::kernels::bucket_of_key;
use crate::udf::{
    CmpOp, FlatMapSpec, KeySpec, KeyUdf, MapSpec, PredSpec, ReduceSpec, ReduceUdf, Sarg,
};
use crate::value::{Dataset, Value};

/// A typed column of quanta (one attribute across a batch of rows).
#[derive(Clone, Debug)]
pub enum Column {
    /// 64-bit integers.
    Int64(Vec<i64>),
    /// 64-bit floats.
    Float64(Vec<f64>),
    /// Booleans.
    Bool(Vec<bool>),
    /// Dictionary-encoded strings: `ids[i]` indexes `dict`. Dictionary
    /// entries are in first-occurrence order and share interned allocations
    /// where they come from the tokenizer.
    Str {
        /// Distinct strings, first-occurrence order.
        dict: Vec<Arc<str>>,
        /// Per-row dictionary index.
        ids: Vec<u32>,
        /// Global interner ids for `dict`, resolved once per column
        /// allocation on first use. Bucket batches from [`partition_batch`]
        /// share the source chunk's column `Arc`s, so the cache makes key
        /// resolution per-chunk instead of per-bucket-contribution.
        gids: OnceLock<Vec<u32>>,
    },
    /// Row fallback: arbitrary (mixed-type, nested, or null) values.
    Row(Vec<Value>),
}

impl Column {
    /// Number of rows in the column.
    pub fn len(&self) -> usize {
        match self {
            Column::Int64(v) => v.len(),
            Column::Float64(v) => v.len(),
            Column::Bool(v) => v.len(),
            Column::Str { ids, .. } => ids.len(),
            Column::Row(v) => v.len(),
        }
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materialize row `i` as a [`Value`].
    pub fn get(&self, i: usize) -> Value {
        match self {
            Column::Int64(v) => Value::Int(v[i]),
            Column::Float64(v) => Value::Float(v[i]),
            Column::Bool(v) => Value::Bool(v[i]),
            Column::Str { dict, ids, .. } => Value::Str(Arc::clone(&dict[ids[i] as usize])),
            Column::Row(v) => v[i].clone(),
        }
    }
}

/// Build a dictionary column with an empty global-id cache.
fn str_col(dict: Vec<Arc<str>>, ids: Vec<u32>) -> Column {
    Column::Str { dict, ids, gids: OnceLock::new() }
}

/// The cached global interner ids for a dictionary column, resolving the
/// whole dictionary on first use. All selections sharing the column `Arc`
/// (e.g. every bucket cut from one chunk) reuse the same resolution.
fn dict_gids<'a>(dict: &[Arc<str>], gids: &'a OnceLock<Vec<u32>>) -> &'a [u32] {
    gids.get_or_init(|| dict.iter().map(|s| intern_id(s).1).collect())
}

/// Columnarize one attribute: typed vector when every value shares a scalar
/// type, [`Column::Row`] otherwise (nulls, tuples, mixed types).
fn columnize<'a>(vals: impl Iterator<Item = &'a Value> + Clone, len: usize) -> Column {
    let mut it = vals.clone();
    match it.next() {
        Some(Value::Int(_)) => {
            let mut out = Vec::with_capacity(len);
            for v in vals.clone() {
                match v {
                    Value::Int(n) => out.push(*n),
                    _ => return Column::Row(vals.cloned().collect()),
                }
            }
            Column::Int64(out)
        }
        Some(Value::Float(_)) => {
            let mut out = Vec::with_capacity(len);
            for v in vals.clone() {
                match v {
                    Value::Float(x) => out.push(*x),
                    _ => return Column::Row(vals.cloned().collect()),
                }
            }
            Column::Float64(out)
        }
        Some(Value::Bool(_)) => {
            let mut out = Vec::with_capacity(len);
            for v in vals.clone() {
                match v {
                    Value::Bool(b) => out.push(*b),
                    _ => return Column::Row(vals.cloned().collect()),
                }
            }
            Column::Bool(out)
        }
        Some(Value::Str(_)) => {
            let mut dict: Vec<Arc<str>> = Vec::new();
            let mut map: HashMap<Arc<str>, u32> = HashMap::new();
            let mut ids = Vec::with_capacity(len);
            for v in vals.clone() {
                match v {
                    Value::Str(s) => {
                        let id = match map.get(s.as_ref()) {
                            Some(&id) => id,
                            None => {
                                let id = dict.len() as u32;
                                dict.push(Arc::clone(s));
                                map.insert(Arc::clone(s), id);
                                id
                            }
                        };
                        ids.push(id);
                    }
                    _ => return Column::Row(vals.cloned().collect()),
                }
            }
            str_col(dict, ids)
        }
        _ => Column::Row(vals.cloned().collect()),
    }
}

/// Whether a batch holds scalar quanta (one column) or tuple quanta (one
/// column per field).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Shape {
    /// Each row is the single column's value.
    Scalar,
    /// Each row is a tuple of the columns' values, in column order.
    Tuple,
}

/// A batch of aligned columns with an optional selection vector.
///
/// Columns are shared via `Arc`, so transformations that touch one column
/// (e.g. [`MapSpec::FieldIntAdd`]) reuse the others without copying, and
/// cloning a batch (channel fan-out, retries) is O(columns).
#[derive(Clone, Debug)]
pub struct Batch {
    cols: Vec<Arc<Column>>,
    shape: Shape,
    len: usize,
    /// Surviving row indices in ascending order; `None` means all rows.
    sel: Option<Vec<u32>>,
}

impl Batch {
    /// Columnarize a slice of row values. Tuples of uniform arity become one
    /// column per field; anything else becomes a single (possibly
    /// row-fallback) column.
    pub fn from_values(input: &[Value]) -> Batch {
        let arity = match input.first() {
            Some(Value::Tuple(t)) if !t.is_empty() => {
                let n = t.len();
                if input.iter().all(|v| matches!(v, Value::Tuple(t) if t.len() == n)) {
                    Some(n)
                } else {
                    None
                }
            }
            _ => None,
        };
        match arity {
            Some(n) => {
                let cols = (0..n)
                    .map(|i| {
                        Arc::new(columnize(input.iter().map(move |v| v.field(i)), input.len()))
                    })
                    .collect();
                Batch { cols, shape: Shape::Tuple, len: input.len(), sel: None }
            }
            None => Batch {
                cols: vec![Arc::new(columnize(input.iter(), input.len()))],
                shape: Shape::Scalar,
                len: input.len(),
                sel: None,
            },
        }
    }

    /// Total rows (before selection).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no rows survive the selection.
    pub fn is_empty(&self) -> bool {
        self.selected_len() == 0
    }

    /// Rows surviving the selection vector.
    pub fn selected_len(&self) -> usize {
        self.sel.as_ref().map(Vec::len).unwrap_or(self.len)
    }

    /// The batch's shape.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// The underlying columns (shared allocations — bucket batches and
    /// cached batches alias the producing chunk's columns). Exposed so byte
    /// accounting can size shared column allocations once.
    pub fn columns(&self) -> &[Arc<Column>] {
        &self.cols
    }

    /// Surviving row indices when a selection vector is present (`None`
    /// means every physical row survives).
    pub fn selection(&self) -> Option<&[u32]> {
        self.sel.as_deref()
    }

    /// Materialize row `i` (a physical row index, ignoring selection).
    fn row(&self, i: usize) -> Value {
        match self.shape {
            Shape::Scalar => self.cols[0].get(i),
            // Pairs are the dominant tuple width (key/value operators);
            // build them without the intermediate Vec.
            Shape::Tuple => match self.cols.as_slice() {
                [a, b] => Value::pair(a.get(i), b.get(i)),
                cols => Value::tuple(cols.iter().map(|c| c.get(i)).collect::<Vec<_>>()),
            },
        }
    }

    /// Materialize the surviving rows back into row values, in order.
    pub fn to_values(&self) -> Vec<Value> {
        match &self.sel {
            Some(sel) => sel.iter().map(|&i| self.row(i as usize)).collect(),
            None => (0..self.len).map(|i| self.row(i)).collect(),
        }
    }

    /// Iterate surviving physical row indices in order.
    fn selected(&self) -> impl Iterator<Item = usize> + '_ {
        let sel = self.sel.as_deref();
        (0..self.len).filter_map(move |i| match sel {
            Some(s) => s.get(i).map(|&x| x as usize),
            None => Some(i),
        })
    }
}

/// One vectorized step over column slices.
#[derive(Clone, Debug)]
enum VStep {
    /// Structured predicate (sarg, conjunction, or string match) →
    /// selection vector.
    Filter(PredSpec),
    /// Recognized arithmetic / pairing map.
    Map(MapSpec),
    /// Whitespace tokenizer → dictionary-encoded string column.
    Tokenize,
    /// Column projection.
    Project(Vec<usize>),
}

/// A fused chain compiled to vectorized steps. Produced by [`compile`]
/// (`None` when any step is an opaque closure); executed by [`run_values`]
/// (`None` when runtime column types don't fit — callers fall back to the
/// row interpreter).
///
/// [`compile`]: VectorKernel::compile
/// [`run_values`]: VectorKernel::run_values
#[derive(Clone, Debug)]
pub struct VectorKernel {
    steps: Vec<VStep>,
}

impl VectorKernel {
    /// Compile a fused pipeline into vector steps; `None` if any step lacks
    /// a spec descriptor.
    pub fn compile(p: &FusedPipeline) -> Option<VectorKernel> {
        let steps = p
            .steps()
            .iter()
            .map(|s| match s {
                FusedStep::Filter(p) => p.spec.clone().map(VStep::Filter),
                FusedStep::Map(m) => m.spec.clone().map(VStep::Map),
                FusedStep::FlatMap(f) => {
                    (f.spec == Some(FlatMapSpec::SplitWhitespace)).then_some(VStep::Tokenize)
                }
                FusedStep::Project(fields) => Some(VStep::Project(fields.clone())),
            })
            .collect::<Option<Vec<_>>>()?;
        Some(VectorKernel { steps })
    }

    /// Number of vectorized steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the kernel has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Columnarize `input` and run every step over column slices. `None` on
    /// any runtime type mismatch (caller falls back to the row path).
    pub fn run_values(&self, input: &[Value]) -> Option<Batch> {
        self.run_batch(Batch::from_values(input))
    }

    /// Run every step over an already-columnar batch (e.g. one that arrived
    /// through a columnar exchange) — no row round-trip. `None` on any
    /// runtime type mismatch (caller falls back to the row path).
    pub fn run_batch(&self, b: Batch) -> Option<Batch> {
        let mut b = b;
        for s in &self.steps {
            b = apply(s, b)?;
        }
        Some(b)
    }
}

/// Build the new selection vector for `keep` over the currently selected
/// physical rows.
fn filter_sel(b: &Batch, keep: impl Fn(usize) -> bool) -> Vec<u32> {
    let mut out = Vec::with_capacity(b.selected_len());
    match &b.sel {
        Some(sel) => {
            for &i in sel {
                if keep(i as usize) {
                    out.push(i);
                }
            }
        }
        None => {
            for i in 0..b.len {
                if keep(i) {
                    out.push(i as u32);
                }
            }
        }
    }
    out
}

#[inline]
fn ord_ok(op: CmpOp, o: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering::*;
    matches!(
        (op, o),
        (CmpOp::Lt, Less)
            | (CmpOp::Le, Less | Equal)
            | (CmpOp::Gt, Greater)
            | (CmpOp::Ge, Greater | Equal)
            | (CmpOp::Eq, Equal)
            | (CmpOp::Ne, Less | Greater)
    )
}

/// Apply one sargable comparison as a selection pass; `None` on a runtime
/// shape/type mismatch.
fn apply_sarg(sarg: &Sarg, b: Batch) -> Option<Batch> {
    if b.shape != Shape::Tuple || sarg.field >= b.cols.len() {
        return None;
    }
    let op = sarg.op;
    // Tight loop per (column type, literal type) pair, matching the
    // canonical `Value` order exactly (ints and floats cross-compare
    // numerically via `total_cmp`).
    let sel = match (b.cols[sarg.field].as_ref(), &sarg.literal) {
        (Column::Int64(xs), Value::Int(l)) => {
            let l = *l;
            filter_sel(&b, |i| ord_ok(op, xs[i].cmp(&l)))
        }
        (Column::Int64(xs), Value::Float(l)) => {
            let l = *l;
            filter_sel(&b, |i| ord_ok(op, (xs[i] as f64).total_cmp(&l)))
        }
        (Column::Float64(xs), Value::Float(l)) => {
            let l = *l;
            filter_sel(&b, |i| ord_ok(op, xs[i].total_cmp(&l)))
        }
        (Column::Float64(xs), Value::Int(l)) => {
            let l = *l as f64;
            filter_sel(&b, |i| ord_ok(op, xs[i].total_cmp(&l)))
        }
        (Column::Bool(xs), Value::Bool(l)) => {
            let l = *l;
            filter_sel(&b, |i| ord_ok(op, xs[i].cmp(&l)))
        }
        (Column::Str { dict, ids, .. }, Value::Str(l)) => {
            // Evaluate once per distinct string, then index.
            let keep: Vec<bool> =
                dict.iter().map(|s| ord_ok(op, s.as_ref().cmp(l.as_ref()))).collect();
            filter_sel(&b, |i| keep[ids[i] as usize])
        }
        _ => return None,
    };
    Some(Batch { sel: Some(sel), ..b })
}

/// Apply a structured predicate; conjunctions chain selection passes and
/// string predicates evaluate once per distinct dictionary entry.
fn apply_pred(spec: &PredSpec, b: Batch) -> Option<Batch> {
    match spec {
        PredSpec::Sarg(s) => apply_sarg(s, b),
        PredSpec::All(ss) => {
            let mut b = b;
            for s in ss {
                b = apply_sarg(s, b)?;
            }
            Some(b)
        }
        PredSpec::Str(sp) => {
            if b.shape != Shape::Tuple || sp.field >= b.cols.len() {
                return None;
            }
            let Column::Str { dict, ids, .. } = b.cols[sp.field].as_ref() else { return None };
            let keep: Vec<bool> = dict.iter().map(|s| sp.op.eval(s, &sp.needle)).collect();
            let sel = filter_sel(&b, |i| keep[ids[i] as usize]);
            Some(Batch { sel: Some(sel), ..b })
        }
    }
}

/// Apply one vector step; `None` on a runtime shape/type mismatch.
fn apply(step: &VStep, b: Batch) -> Option<Batch> {
    match step {
        VStep::Filter(spec) => apply_pred(spec, b),
        VStep::Map(MapSpec::PairIntLit(lit)) => {
            if b.shape != Shape::Scalar {
                return None;
            }
            let lit_col = Arc::new(Column::Int64(vec![*lit; b.len]));
            Some(Batch {
                cols: vec![Arc::clone(&b.cols[0]), lit_col],
                shape: Shape::Tuple,
                len: b.len,
                sel: b.sel,
            })
        }
        VStep::Map(MapSpec::FieldIntAdd { field, delta }) => {
            if b.shape != Shape::Tuple || *field >= b.cols.len() {
                return None;
            }
            let Column::Int64(xs) = b.cols[*field].as_ref() else { return None };
            let bumped =
                Arc::new(Column::Int64(xs.iter().map(|x| x.wrapping_add(*delta)).collect()));
            let cols = b
                .cols
                .iter()
                .enumerate()
                .map(|(i, c)| if i == *field { Arc::clone(&bumped) } else { Arc::clone(c) })
                .collect();
            Some(Batch { cols, shape: Shape::Tuple, len: b.len, sel: b.sel })
        }
        VStep::Map(MapSpec::FieldFloatAdd { field, delta }) => {
            if b.shape != Shape::Tuple || *field >= b.cols.len() {
                return None;
            }
            let Column::Float64(xs) = b.cols[*field].as_ref() else { return None };
            let shifted = Arc::new(Column::Float64(xs.iter().map(|x| x + delta).collect()));
            let cols = b
                .cols
                .iter()
                .enumerate()
                .map(|(i, c)| if i == *field { Arc::clone(&shifted) } else { Arc::clone(c) })
                .collect();
            Some(Batch { cols, shape: Shape::Tuple, len: b.len, sel: b.sel })
        }
        VStep::Map(MapSpec::FieldFloatMul { field, factor }) => {
            if b.shape != Shape::Tuple || *field >= b.cols.len() {
                return None;
            }
            let Column::Float64(xs) = b.cols[*field].as_ref() else { return None };
            let scaled = Arc::new(Column::Float64(xs.iter().map(|x| x * factor).collect()));
            let cols = b
                .cols
                .iter()
                .enumerate()
                .map(|(i, c)| if i == *field { Arc::clone(&scaled) } else { Arc::clone(c) })
                .collect();
            Some(Batch { cols, shape: Shape::Tuple, len: b.len, sel: b.sel })
        }
        VStep::Tokenize => {
            if b.shape != Shape::Scalar {
                return None;
            }
            let Column::Str { dict, ids, .. } = b.cols[0].as_ref() else { return None };
            // Tokenize each distinct line once, into word ids over an
            // interner-backed output dictionary.
            let mut out_dict: Vec<Arc<str>> = Vec::new();
            let mut map: HashMap<Arc<str>, u32> = HashMap::new();
            let mut line_tokens: Vec<Vec<u32>> = Vec::with_capacity(dict.len());
            for line in dict {
                let toks = line
                    .split_whitespace()
                    .map(|w| match map.get(w) {
                        Some(&id) => id,
                        None => {
                            let a = intern(w);
                            let id = out_dict.len() as u32;
                            out_dict.push(Arc::clone(&a));
                            map.insert(a, id);
                            id
                        }
                    })
                    .collect();
                line_tokens.push(toks);
            }
            let mut out_ids = Vec::new();
            for i in b.selected() {
                out_ids.extend_from_slice(&line_tokens[ids[i] as usize]);
            }
            let len = out_ids.len();
            Some(Batch {
                cols: vec![Arc::new(str_col(out_dict, out_ids))],
                shape: Shape::Scalar,
                len,
                sel: None,
            })
        }
        VStep::Project(fields) => {
            if b.shape != Shape::Tuple || fields.iter().any(|&i| i >= b.cols.len()) {
                return None;
            }
            let cols: Vec<_> = fields.iter().map(|&i| Arc::clone(&b.cols[i])).collect();
            Some(Batch { cols, shape: Shape::Tuple, len: b.len, sel: b.sel })
        }
    }
}

/// Whether a `ReduceBy`'s key/agg pair is recognized for batched
/// aggregation. Static property (spec presence), safe for cost models.
pub fn agg_vectorizable(key: &KeyUdf, agg: &ReduceUdf) -> bool {
    key.spec == Some(KeySpec::Field(0))
        && matches!(agg.spec, Some(ReduceSpec::PairIntSum | ReduceSpec::PairFloatSum))
}

/// Assign a dense slot per distinct key of a two-column tuple batch, in
/// first-occurrence order of the surviving rows. Returns the key column
/// (one entry per slot), one slot index per surviving row, and the slot
/// count. Dictionary-encoded keys get a slot-array (no hashing at all);
/// integer keys pay one `i64` hash per row. `None` for other key columns.
fn key_slots(b: &Batch) -> Option<(Column, Vec<usize>, usize)> {
    match b.cols[0].as_ref() {
        Column::Str { dict, ids, .. } => {
            let mut slot_of = vec![usize::MAX; dict.len()];
            let mut order: Vec<u32> = Vec::new();
            let mut slots = Vec::with_capacity(b.selected_len());
            for i in b.selected() {
                let id = ids[i] as usize;
                if slot_of[id] == usize::MAX {
                    slot_of[id] = order.len();
                    order.push(id as u32);
                }
                slots.push(slot_of[id]);
            }
            let out_dict: Vec<Arc<str>> =
                order.iter().map(|&id| Arc::clone(&dict[id as usize])).collect();
            let n = out_dict.len();
            let ids_out: Vec<u32> = (0..n as u32).collect();
            Some((str_col(out_dict, ids_out), slots, n))
        }
        Column::Int64(keys) => {
            let mut slot: HashMap<i64, usize> = HashMap::new();
            let mut order: Vec<i64> = Vec::new();
            let mut slots = Vec::with_capacity(b.selected_len());
            for i in b.selected() {
                let k = keys[i];
                let s = *slot.entry(k).or_insert_with(|| {
                    order.push(k);
                    order.len() - 1
                });
                slots.push(s);
            }
            let n = order.len();
            Some((Column::Int64(order), slots, n))
        }
        _ => None,
    }
}

/// Sum the value column by slot under the recognized combiner. Integer sums
/// start at zero (`0 + x = x` exactly); float sums seed from the first value
/// so single-occurrence keys reproduce the row accumulator bit-for-bit
/// (the row path never runs the combiner for a lone key).
fn sum_by_slots(b: &Batch, slots: &[usize], n: usize, spec: &ReduceSpec) -> Option<Column> {
    match (spec, b.cols[1].as_ref()) {
        (ReduceSpec::PairIntSum, Column::Int64(vals)) => {
            let mut sums = vec![0i64; n];
            for (pos, i) in b.selected().enumerate() {
                sums[slots[pos]] = sums[slots[pos]].wrapping_add(vals[i]);
            }
            Some(Column::Int64(sums))
        }
        (ReduceSpec::PairFloatSum, Column::Float64(vals)) => {
            let mut sums = vec![0f64; n];
            let mut seen = vec![false; n];
            for (pos, i) in b.selected().enumerate() {
                let s = slots[pos];
                if seen[s] {
                    sums[s] += vals[i];
                } else {
                    seen[s] = true;
                    sums[s] = vals[i];
                }
            }
            Some(Column::Float64(sums))
        }
        _ => None,
    }
}

/// Batched map-side combine over a `(key, value)` tuple batch: slot-array
/// aggregation that stays columnar, producing a two-column `(key, sum)`
/// batch with keys in first-occurrence order of the surviving rows. `None`
/// when the batch is not a two-column tuple with a recognized key/value
/// column pair for `spec` (callers fall back to the row accumulator).
pub fn combine_batch(b: &Batch, spec: &ReduceSpec) -> Option<Batch> {
    if b.shape != Shape::Tuple || b.cols.len() != 2 {
        return None;
    }
    let (keys, slots, n) = key_slots(b)?;
    let sums = sum_by_slots(b, &slots, n, spec)?;
    Some(Batch {
        cols: vec![Arc::new(keys), Arc::new(sums)],
        shape: Shape::Tuple,
        len: n,
        sel: None,
    })
}

/// Materialize a combined `(key, sum)` batch as the keyed pairs the row
/// path's [`finish_keyed`] emits for shuffle routing: `(key, (key, sum))`.
///
/// [`finish_keyed`]: crate::kernels::ReduceByState::finish_keyed
pub fn keyed_values(cb: &Batch) -> Vec<Value> {
    cb.to_values().into_iter().map(|r| Value::pair(r.field(0).clone(), r)).collect()
}

/// Batched hash aggregation over a `(key, value)` tuple batch: the fused
/// terminal `ReduceBy` fast path.
///
/// Emits exactly what the row path's [`crate::kernels::ReduceByState`]
/// would: one `(key, sum)` pair per distinct key in first-occurrence order
/// of the surviving rows — or, with `keyed`, `(key, (key, sum))` pairs as
/// [`finish_keyed`] produces for shuffle routing. `None` when the batch is
/// not a two-column tuple with a recognized key/value column pair (callers
/// fall back to the row accumulator).
///
/// [`finish_keyed`]: crate::kernels::ReduceByState::finish_keyed
pub fn reduce_batch(b: &Batch, spec: &ReduceSpec, keyed: bool) -> Option<Vec<Value>> {
    let cb = combine_batch(b, spec)?;
    Some(if keyed { keyed_values(&cb) } else { cb.to_values() })
}

/// Reduce-side slot-array merge of combined `(key, sum)` batches arriving
/// from producer partitions, in contribution order. Dictionary keys are
/// unified through the global interner ids ([`crate::intern::intern_id`]),
/// so no string content is hashed on the consumer side. Emits one merged
/// `(key, sum)` batch with keys in first-occurrence order across the
/// contributions — exactly what the row path's [`crate::kernels::merge_by`]
/// produces for the same bucket. `None` when key or sum column types are
/// mixed across contributions (callers fall back to the row merge).
pub fn merge_batches(contribs: &[Batch]) -> Option<Batch> {
    for cb in contribs {
        if cb.shape != Shape::Tuple || cb.cols.len() != 2 {
            return None;
        }
    }
    let live: Vec<&Batch> = contribs.iter().filter(|cb| !cb.is_empty()).collect();
    // Key and sum column types must be uniform across live contributions.
    let str_keys = matches!(live.first().map(|cb| cb.cols[0].as_ref()), Some(Column::Str { .. }));
    let int_sums = matches!(live.first().map(|cb| cb.cols[1].as_ref()), Some(Column::Int64(_)));
    for cb in &live {
        match cb.cols[0].as_ref() {
            Column::Str { .. } if str_keys => {}
            Column::Int64(_) if !str_keys => {}
            _ => return None,
        }
        match cb.cols[1].as_ref() {
            Column::Int64(_) if int_sums => {}
            Column::Float64(_) if !int_sums => {}
            _ => return None,
        }
    }
    let mut slot_s: HashMap<u32, usize> = HashMap::new();
    let mut keys_s: Vec<Arc<str>> = Vec::new();
    let mut slot_i: HashMap<i64, usize> = HashMap::new();
    let mut keys_i: Vec<i64> = Vec::new();
    let mut sums_i: Vec<i64> = Vec::new();
    let mut sums_f: Vec<f64> = Vec::new();
    let mut seen_f: Vec<bool> = Vec::new();
    for cb in live {
        // Resolve each surviving row to a merged slot in contribution order.
        let mut row_slots: Vec<usize> = Vec::with_capacity(cb.selected_len());
        match cb.cols[0].as_ref() {
            Column::Str { dict, ids, gids } => {
                // Global ids come from the column's cache (resolved once per
                // source chunk, shared by every bucket cut from it); rows
                // then merge with no string hashing at all.
                let gids = dict_gids(dict, gids);
                for i in cb.selected() {
                    let id = ids[i] as usize;
                    let s = *slot_s.entry(gids[id]).or_insert_with(|| {
                        keys_s.push(Arc::clone(&dict[id]));
                        keys_s.len() - 1
                    });
                    row_slots.push(s);
                }
            }
            Column::Int64(col) => {
                for i in cb.selected() {
                    let s = *slot_i.entry(col[i]).or_insert_with(|| {
                        keys_i.push(col[i]);
                        keys_i.len() - 1
                    });
                    row_slots.push(s);
                }
            }
            _ => return None,
        }
        let n = keys_s.len().max(keys_i.len());
        match cb.cols[1].as_ref() {
            Column::Int64(vals) => {
                sums_i.resize(n, 0);
                for (pos, i) in cb.selected().enumerate() {
                    sums_i[row_slots[pos]] = sums_i[row_slots[pos]].wrapping_add(vals[i]);
                }
            }
            Column::Float64(vals) => {
                sums_f.resize(n, 0.0);
                seen_f.resize(n, false);
                for (pos, i) in cb.selected().enumerate() {
                    let sl = row_slots[pos];
                    if seen_f[sl] {
                        sums_f[sl] += vals[i];
                    } else {
                        seen_f[sl] = true;
                        sums_f[sl] = vals[i];
                    }
                }
            }
            _ => return None,
        }
    }
    let key_col = if str_keys {
        let n = keys_s.len();
        str_col(keys_s, (0..n as u32).collect())
    } else {
        Column::Int64(keys_i)
    };
    let sum_col = if int_sums { Column::Int64(sums_i) } else { Column::Float64(sums_f) };
    let n = key_col.len();
    Some(Batch {
        cols: vec![Arc::new(key_col), Arc::new(sum_col)],
        shape: Shape::Tuple,
        len: n,
        sel: None,
    })
}

/// One-shot helper for engines: vectorize the chain, then aggregate the
/// terminal `ReduceBy` in one batched pass. `None` (→ row fallback) when the
/// key/agg pair is unrecognized, the chain doesn't vectorize at runtime, or
/// the reduced batch has the wrong shape.
pub fn run_reduce(
    vk: &VectorKernel,
    input: &[Value],
    key: &KeyUdf,
    agg: &ReduceUdf,
    keyed: bool,
) -> Option<Vec<Value>> {
    if !agg_vectorizable(key, agg) {
        return None;
    }
    let spec = agg.spec.as_ref()?;
    let b = vk.run_values(input)?;
    reduce_batch(&b, spec, keyed)
}

/// One engine partition: either materialized rows or a columnar batch that
/// survived the previous segment. `Part::Cols` materializes to exactly the
/// rows the row-mode engine would hold for the same partition, so every
/// operator may call [`Part::rows`] and proceed row-wise without changing
/// results — columnar-aware operators instead keep the batch.
#[derive(Clone, Debug)]
pub enum Part {
    /// Row partition (the row-mode representation).
    Rows(Dataset),
    /// Columnar partition (batch-mode stages keep columns across segments).
    Cols(Batch),
}

impl Part {
    /// Rows in the partition (surviving the selection, for batches).
    pub fn len(&self) -> usize {
        match self {
            Part::Rows(d) => d.len(),
            Part::Cols(b) => b.selected_len(),
        }
    }

    /// Whether the partition holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materialize the partition as rows (`Arc` clone for row partitions).
    pub fn rows(&self) -> Dataset {
        match self {
            Part::Rows(d) => Arc::clone(d),
            Part::Cols(b) => Arc::new(b.to_values()),
        }
    }

    /// The columnar batch, when this partition stayed columnar.
    pub fn as_batch(&self) -> Option<&Batch> {
        match self {
            Part::Rows(_) => None,
            Part::Cols(b) => Some(b),
        }
    }
}

/// Materialize every partition as rows (row-mode view of a stage).
pub fn rows_of(parts: &[Part]) -> Vec<Dataset> {
    parts.iter().map(Part::rows).collect()
}

/// Wrap row partitions back into engine parts.
pub fn into_row_parts(ds: Vec<Dataset>) -> Vec<Part> {
    ds.into_iter().map(Part::Rows).collect()
}

/// All partitions as batches, when every partition stayed columnar.
pub fn all_batches(parts: &[Part]) -> Option<Vec<&Batch>> {
    parts.iter().map(Part::as_batch).collect()
}

/// Approximate wire size of the surviving rows (the columnar analogue of
/// `dataset_bytes`: sampled average row size × row count).
pub fn batch_bytes(b: &Batch) -> f64 {
    let n = b.selected_len();
    if n == 0 {
        return 0.0;
    }
    let stride = (n / 64).max(1);
    let mut sum = 0.0;
    let mut cnt = 0usize;
    for (pos, i) in b.selected().enumerate() {
        if pos % stride == 0 {
            sum += b.row(i).approx_bytes() as f64;
            cnt += 1;
        }
    }
    (sum / cnt.max(1) as f64) * n as f64
}

/// The key column a [`KeySpec`] projects out of a batch, when it is typed
/// enough to drive a columnar exchange: `Field(i)` over tuple batches,
/// `Identity` over scalar batches. Anything else (identity over tuples,
/// field keys on scalars — which key on `Null` row-side) falls back.
fn key_col<'a>(b: &'a Batch, key: &KeySpec) -> Option<&'a Column> {
    match (key, b.shape) {
        (KeySpec::Field(i), Shape::Tuple) if *i < b.cols.len() => Some(b.cols[*i].as_ref()),
        (KeySpec::Identity, Shape::Scalar) => Some(b.cols[0].as_ref()),
        _ => None,
    }
}

/// Hash-partition a batch into `n` per-bucket selection batches on the key
/// column `key` projects — no row round-trip; every bucket shares the same
/// column `Arc`s with its own selection vector. Routing reproduces the row
/// shuffle exactly ([`crate::kernels::bucket_of`]): each key value hashes
/// identically to what `KeyUdf::call` would have produced. Dictionary keys
/// hash once per distinct entry. `None` when the key column is untyped
/// (callers fall back to the row shuffle).
pub fn partition_batch(b: &Batch, key: &KeySpec, n: usize) -> Option<Vec<Batch>> {
    let n = n.max(1);
    let col = key_col(b, key)?;
    let mut sels: Vec<Vec<u32>> = vec![Vec::new(); n];
    match col {
        Column::Int64(xs) => {
            for i in b.selected() {
                sels[bucket_of_key(&Value::Int(xs[i]), n)].push(i as u32);
            }
        }
        Column::Float64(xs) => {
            for i in b.selected() {
                sels[bucket_of_key(&Value::Float(xs[i]), n)].push(i as u32);
            }
        }
        Column::Bool(xs) => {
            let buckets =
                [bucket_of_key(&Value::Bool(false), n), bucket_of_key(&Value::Bool(true), n)];
            for i in b.selected() {
                sels[buckets[xs[i] as usize]].push(i as u32);
            }
        }
        Column::Str { dict, ids, .. } => {
            // Hash once per distinct dictionary entry, then route by id.
            let buckets: Vec<usize> =
                dict.iter().map(|s| bucket_of_key(&Value::Str(Arc::clone(s)), n)).collect();
            for i in b.selected() {
                sels[buckets[ids[i] as usize]].push(i as u32);
            }
        }
        Column::Row(_) => return None,
    }
    Some(
        sels.into_iter()
            .map(|sel| Batch { cols: b.cols.clone(), shape: b.shape, len: b.len, sel: Some(sel) })
            .collect(),
    )
}

/// Stable per-partition sort by the key column `key` projects: a selection
/// permutation, zero copy. Dictionary keys compare by precomputed rank so
/// the sort never touches string content per row. `None` for untyped key
/// columns (callers fall back to the row sort).
pub fn sort_batch(b: &Batch, key: &KeySpec) -> Option<Batch> {
    let col = key_col(b, key)?;
    let mut idx: Vec<u32> = b.selected().map(|i| i as u32).collect();
    match col {
        Column::Int64(xs) => idx.sort_by(|&a, &c| xs[a as usize].cmp(&xs[c as usize])),
        Column::Float64(xs) => idx.sort_by(|&a, &c| xs[a as usize].total_cmp(&xs[c as usize])),
        Column::Bool(xs) => idx.sort_by(|&a, &c| xs[a as usize].cmp(&xs[c as usize])),
        Column::Str { dict, ids, .. } => {
            // Rank each distinct entry once; rows then compare by integer
            // rank exactly as the row path compares string content.
            let mut order: Vec<u32> = (0..dict.len() as u32).collect();
            order.sort_by(|&x, &y| dict[x as usize].cmp(&dict[y as usize]));
            let mut rank = vec![0u32; dict.len()];
            for (r, &e) in order.iter().enumerate() {
                rank[e as usize] = r as u32;
            }
            idx.sort_by(|&a, &c| {
                rank[ids[a as usize] as usize].cmp(&rank[ids[c as usize] as usize])
            });
        }
        Column::Row(_) => return None,
    }
    Some(Batch { sel: Some(idx), ..b.clone() })
}

/// Per-row sort key view used to merge sorted batches across partitions.
enum KeyView<'a> {
    I(&'a [i64]),
    F(&'a [f64]),
    B(&'a [bool]),
    S { dict: &'a [Arc<str>], ids: &'a [u32] },
}

impl KeyView<'_> {
    fn cmp_rows(&self, i: usize, other: &Self, j: usize) -> std::cmp::Ordering {
        match (self, other) {
            (KeyView::I(a), KeyView::I(b)) => a[i].cmp(&b[j]),
            (KeyView::F(a), KeyView::F(b)) => a[i].total_cmp(&b[j]),
            (KeyView::B(a), KeyView::B(b)) => a[i].cmp(&b[j]),
            (KeyView::S { dict: da, ids: ia }, KeyView::S { dict: db, ids: ib }) => {
                da[ia[i] as usize].cmp(&db[ib[j] as usize])
            }
            // Uniform key column types are checked before merging.
            _ => unreachable!("mixed key column types in merge"),
        }
    }
}

fn key_view<'a>(b: &'a Batch, key: &KeySpec) -> Option<KeyView<'a>> {
    match key_col(b, key)? {
        Column::Int64(xs) => Some(KeyView::I(xs)),
        Column::Float64(xs) => Some(KeyView::F(xs)),
        Column::Bool(xs) => Some(KeyView::B(xs)),
        Column::Str { dict, ids, .. } => Some(KeyView::S { dict, ids }),
        Column::Row(_) => None,
    }
}

/// K-way merge of per-partition sorted batches into output batches whose
/// row chunking matches the row path exactly (`ceil(total / n)` rows per
/// output partition, one empty partition when no rows survive). Ties break
/// toward the lowest partition index, which reproduces a stable global sort
/// of the concatenated partitions. Gathered string columns rebuild their
/// dictionaries by global interner id — no string re-hashing. `None` when
/// key columns are untyped or column types/shapes are mixed across
/// partitions (callers fall back to the row sort).
pub fn merge_sorted(parts: &[Batch], key: &KeySpec, n: usize) -> Option<Vec<Batch>> {
    let first = parts.first()?;
    let shape = first.shape;
    let width = first.cols.len();
    for p in parts {
        if p.shape != shape || p.cols.len() != width {
            return None;
        }
        for (c, col) in p.cols.iter().enumerate() {
            let same = matches!(
                (first.cols[c].as_ref(), col.as_ref()),
                (Column::Int64(_), Column::Int64(_))
                    | (Column::Float64(_), Column::Float64(_))
                    | (Column::Bool(_), Column::Bool(_))
                    | (Column::Str { .. }, Column::Str { .. })
                    | (Column::Row(_), Column::Row(_))
            );
            if !same {
                return None;
            }
        }
    }
    let views: Vec<KeyView<'_>> = parts.iter().map(|p| key_view(p, key)).collect::<Option<_>>()?;
    let sels: Vec<Vec<usize>> = parts.iter().map(|p| p.selected().collect()).collect();
    let total: usize = sels.iter().map(Vec::len).sum();

    // K-way merge over (already sorted) partitions; lowest partition index
    // wins ties, draining each equal-key run in partition order.
    let mut cursor = vec![0usize; parts.len()];
    let mut order: Vec<(u32, u32)> = Vec::with_capacity(total);
    for _ in 0..total {
        let mut best: Option<usize> = None;
        for (p, cur) in cursor.iter().enumerate() {
            if *cur >= sels[p].len() {
                continue;
            }
            match best {
                None => best = Some(p),
                Some(bp) => {
                    let o = views[p].cmp_rows(sels[p][*cur], &views[bp], sels[bp][cursor[bp]]);
                    if o == std::cmp::Ordering::Less {
                        best = Some(p);
                    }
                }
            }
        }
        let p = best?;
        order.push((p as u32, sels[p][cursor[p]] as u32));
        cursor[p] += 1;
    }

    if total == 0 {
        // Row path emits one empty partition when nothing survives.
        return Some(vec![Batch { sel: Some(Vec::new()), ..first.clone() }]);
    }
    // Global interner ids let gathered dictionary columns merge without
    // re-hashing string content; resolved once per column allocation and
    // cached on the column itself.
    let gids: Vec<Vec<Option<&[u32]>>> = parts
        .iter()
        .map(|p| {
            p.cols
                .iter()
                .map(|c| match c.as_ref() {
                    Column::Str { dict, gids, .. } => Some(dict_gids(dict, gids)),
                    _ => None,
                })
                .collect()
        })
        .collect();
    let chunk = total.div_ceil(n.max(1)).max(1);
    let mut out = Vec::with_capacity(total.div_ceil(chunk));
    for rows in order.chunks(chunk) {
        let cols: Vec<Arc<Column>> = (0..width)
            .map(|c| {
                Arc::new(match first.cols[c].as_ref() {
                    Column::Int64(_) => Column::Int64(
                        rows.iter()
                            .map(|&(p, i)| match parts[p as usize].cols[c].as_ref() {
                                Column::Int64(xs) => xs[i as usize],
                                _ => unreachable!(),
                            })
                            .collect(),
                    ),
                    Column::Float64(_) => Column::Float64(
                        rows.iter()
                            .map(|&(p, i)| match parts[p as usize].cols[c].as_ref() {
                                Column::Float64(xs) => xs[i as usize],
                                _ => unreachable!(),
                            })
                            .collect(),
                    ),
                    Column::Bool(_) => Column::Bool(
                        rows.iter()
                            .map(|&(p, i)| match parts[p as usize].cols[c].as_ref() {
                                Column::Bool(xs) => xs[i as usize],
                                _ => unreachable!(),
                            })
                            .collect(),
                    ),
                    Column::Str { .. } => {
                        let mut local: HashMap<u32, u32> = HashMap::new();
                        let mut dict: Vec<Arc<str>> = Vec::new();
                        let mut ids: Vec<u32> = Vec::with_capacity(rows.len());
                        for &(p, i) in rows {
                            let Column::Str { dict: sd, ids: si, .. } =
                                parts[p as usize].cols[c].as_ref()
                            else {
                                unreachable!()
                            };
                            let entry = si[i as usize] as usize;
                            let gid = gids[p as usize][c].expect("str gids")[entry];
                            let id = *local.entry(gid).or_insert_with(|| {
                                dict.push(Arc::clone(&sd[entry]));
                                dict.len() as u32 - 1
                            });
                            ids.push(id);
                        }
                        str_col(dict, ids)
                    }
                    Column::Row(_) => Column::Row(
                        rows.iter()
                            .map(|&(p, i)| match parts[p as usize].cols[c].as_ref() {
                                Column::Row(xs) => xs[i as usize].clone(),
                                _ => unreachable!(),
                            })
                            .collect(),
                    ),
                })
            })
            .collect();
        out.push(Batch { cols, shape, len: rows.len(), sel: None });
    }
    Some(out)
}

/// Hashable key of a typed column row for the batched join build/probe.
/// Variants mirror [`Value`]'s structural equality: `Int(1)` and
/// `Float(1.0)` never match, floats compare by bit pattern, and strings
/// compare by global interner id.
#[derive(PartialEq, Eq, Hash, Clone, Copy)]
enum JoinKey {
    I(i64),
    F(u64),
    B(bool),
    S(u32),
}

/// Multiply-rotate hasher for the join build/probe table. [`JoinKey`]s are
/// at most nine bytes of typed content, so SipHash's per-key setup cost
/// dominates; a Fx-style mix is plenty for a table that never sees
/// attacker-controlled keys (interner ids and typed payloads only).
#[derive(Default)]
struct JoinKeyHasher(u64);

impl JoinKeyHasher {
    #[inline]
    fn add(&mut self, w: u64) {
        self.0 = (self.0.rotate_left(5) ^ w).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
}

impl std::hash::Hasher for JoinKeyHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(b as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_i64(&mut self, n: i64) {
        self.add(n as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

type JoinKeyMap<V> = HashMap<JoinKey, V, std::hash::BuildHasherDefault<JoinKeyHasher>>;

/// Per-row join keys for a batch's key column; string entries resolve to
/// global interner ids once per distinct dictionary entry. `None` for
/// untyped key columns.
fn join_keys(b: &Batch, key: &KeySpec) -> Option<Vec<JoinKey>> {
    let col = key_col(b, key)?;
    let mut out = Vec::with_capacity(b.selected_len());
    match col {
        Column::Int64(xs) => {
            for i in b.selected() {
                out.push(JoinKey::I(xs[i]));
            }
        }
        Column::Float64(xs) => {
            for i in b.selected() {
                out.push(JoinKey::F(xs[i].to_bits()));
            }
        }
        Column::Bool(xs) => {
            for i in b.selected() {
                out.push(JoinKey::B(xs[i]));
            }
        }
        Column::Str { dict, ids, gids } => {
            let gids = dict_gids(dict, gids);
            for i in b.selected() {
                out.push(JoinKey::S(gids[ids[i] as usize]));
            }
        }
        Column::Row(_) => return None,
    }
    Some(out)
}

/// Batched hash join over one co-partitioned bucket: build a slot table
/// over the right contributions (dictionary keys resolve to interner ids —
/// no `Value` hashing), then probe the left contributions with streaming
/// selection order, emitting `(left, right)` pairs exactly as
/// [`crate::kernels::hash_join`] does: left-major, right matches in right
/// input order. `None` when any key column is untyped (callers fall back to
/// the row join; differing typed key families simply never match, exactly
/// like structural `Value` equality).
pub fn join_buckets(
    left: &[Batch],
    right: &[Batch],
    left_key: &KeySpec,
    right_key: &KeySpec,
) -> Option<Vec<Value>> {
    // Validate both key columns up front so no work is wasted on a bucket
    // that falls back anyway.
    let rkeys: Vec<Vec<JoinKey>> =
        right.iter().map(|rb| join_keys(rb, right_key)).collect::<Option<_>>()?;
    let lkeys: Vec<Vec<JoinKey>> =
        left.iter().map(|lb| join_keys(lb, left_key)).collect::<Option<_>>()?;
    // Materialize each build-side row once (not once per match).
    let mut table: JoinKeyMap<Vec<u32>> = JoinKeyMap::default();
    let mut rvals: Vec<Value> = Vec::new();
    for (rb, keys) in right.iter().zip(&rkeys) {
        for (pos, i) in rb.selected().enumerate() {
            table.entry(keys[pos]).or_default().push(rvals.len() as u32);
            rvals.push(rb.row(i));
        }
    }
    let mut out = Vec::new();
    for (lb, keys) in left.iter().zip(&lkeys) {
        for (pos, i) in lb.selected().enumerate() {
            if let Some(matches) = table.get(&keys[pos]) {
                let l = lb.row(i);
                for &ri in matches {
                    out.push(Value::pair(l.clone(), rvals[ri as usize].clone()));
                }
            }
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::ReduceByState;
    use crate::plan::LogicalOp;
    use crate::udf::{BroadcastCtx, FlatMapUdf, MapUdf, PredicateUdf};

    fn rows(n: i64) -> Vec<Value> {
        (0..n).map(|i| Value::tuple(vec![Value::Int(i), Value::Int(i * i)])).collect()
    }

    fn sarg_lt(field: usize, lit: i64) -> LogicalOp {
        let sp = PredicateUdf::from_sarg(
            format!("f{field}<{lit}"),
            Sarg { field, op: CmpOp::Lt, literal: Value::from(lit) },
        );
        LogicalOp::SargFilter { pred: sp.pred, sarg: sp.sarg }
    }

    #[test]
    fn roundtrip_preserves_values() {
        let data = vec![Value::from(1), Value::from(2), Value::from(3)];
        assert_eq!(Batch::from_values(&data).to_values(), data);
        let strs = vec![Value::from("a"), Value::from("b"), Value::from("a")];
        assert_eq!(Batch::from_values(&strs).to_values(), strs);
        let tups = rows(5);
        assert_eq!(Batch::from_values(&tups).to_values(), tups);
        let mixed = vec![Value::from(1), Value::from("x"), Value::Null];
        assert_eq!(Batch::from_values(&mixed).to_values(), mixed);
        let empty: Vec<Value> = vec![];
        assert!(Batch::from_values(&empty).to_values().is_empty());
    }

    #[test]
    fn vector_filter_project_matches_row_path() {
        let ops = vec![sarg_lt(0, 6), LogicalOp::Project { fields: vec![1, 0] }];
        let p = FusedPipeline::from_ops(&ops).unwrap();
        assert!(p.vectorizable());
        let data = rows(10);
        let vk = VectorKernel::compile(&p).unwrap();
        let batched = vk.run_values(&data).unwrap().to_values();
        let row = p.run(&data, &BroadcastCtx::new());
        assert_eq!(batched, row);
    }

    #[test]
    fn vector_field_add_matches_row_path() {
        let ops = vec![sarg_lt(1, 50), LogicalOp::Map(MapUdf::field_add_int("bump", 1, 7))];
        let p = FusedPipeline::from_ops(&ops).unwrap();
        let data = rows(12);
        let vk = VectorKernel::compile(&p).unwrap();
        let batched = vk.run_values(&data).unwrap().to_values();
        assert_eq!(batched, p.run(&data, &BroadcastCtx::new()));
    }

    #[test]
    fn tokenize_pair_matches_row_path() {
        let ops = vec![
            LogicalOp::FlatMap(FlatMapUdf::split_whitespace("split")),
            LogicalOp::Map(MapUdf::pair_with_int("pair", 1)),
        ];
        let p = FusedPipeline::from_ops(&ops).unwrap();
        let lines: Vec<Value> = ["the quick fox", "the lazy dog", "the quick dog", ""]
            .iter()
            .map(|&s| Value::from(s))
            .collect();
        let vk = VectorKernel::compile(&p).unwrap();
        let batched = vk.run_values(&lines).unwrap().to_values();
        assert_eq!(batched, p.run(&lines, &BroadcastCtx::new()));
    }

    #[test]
    fn batched_wordcount_matches_reduce_by_state() {
        let ops = vec![
            LogicalOp::FlatMap(FlatMapUdf::split_whitespace("split")),
            LogicalOp::Map(MapUdf::pair_with_int("pair", 1)),
        ];
        let p = FusedPipeline::from_ops(&ops).unwrap();
        let lines: Vec<Value> =
            ["a b a c", "b a", "c c c a"].iter().map(|&s| Value::from(s)).collect();
        let key = KeyUdf::field(0);
        let agg = ReduceUdf::pair_int_sum("sum");
        let vk = VectorKernel::compile(&p).unwrap();

        let mut state = ReduceByState::new(&key, &agg);
        p.run_each(&lines, &BroadcastCtx::new(), |v| state.feed_owned(v));

        let batched = run_reduce(&vk, &lines, &key, &agg, false).unwrap();
        assert_eq!(batched, state.finish());
    }

    #[test]
    fn batched_keyed_reduce_matches_finish_keyed() {
        let ops = vec![
            LogicalOp::FlatMap(FlatMapUdf::split_whitespace("split")),
            LogicalOp::Map(MapUdf::pair_with_int("pair", 1)),
        ];
        let p = FusedPipeline::from_ops(&ops).unwrap();
        let lines: Vec<Value> = ["x y x", "z y"].iter().map(|&s| Value::from(s)).collect();
        let key = KeyUdf::field(0);
        let agg = ReduceUdf::pair_int_sum("sum");
        let vk = VectorKernel::compile(&p).unwrap();

        let mut state = ReduceByState::new(&key, &agg);
        p.run_each(&lines, &BroadcastCtx::new(), |v| state.feed_owned(v));

        let batched = run_reduce(&vk, &lines, &key, &agg, true).unwrap();
        assert_eq!(batched, state.finish_keyed());
    }

    #[test]
    fn int_keyed_reduce_matches_row_path() {
        // (i % 4, i) pairs: int-keyed batched aggregation.
        let data: Vec<Value> =
            (0..20).map(|i| Value::pair(Value::Int(i % 4), Value::Int(i))).collect();
        let p = FusedPipeline::new(vec![]);
        let vk = VectorKernel::compile(&p).unwrap();
        let key = KeyUdf::field(0);
        let agg = ReduceUdf::pair_int_sum("sum");
        let mut state = ReduceByState::new(&key, &agg);
        for v in &data {
            state.feed(v);
        }
        let batched = run_reduce(&vk, &data, &key, &agg, false).unwrap();
        assert_eq!(batched, state.finish());
    }

    #[test]
    fn opaque_closures_refuse_to_compile() {
        let ops = vec![LogicalOp::Map(MapUdf::new("opaque", |v| v.clone()))];
        let p = FusedPipeline::from_ops(&ops).unwrap();
        assert!(VectorKernel::compile(&p).is_none());
        assert!(!p.vectorizable());
    }

    #[test]
    fn runtime_type_mismatch_falls_back() {
        // Sarg over a string column with an int literal: compile succeeds,
        // execution refuses (row path would compare via canonical rank).
        let ops = vec![sarg_lt(0, 5)];
        let p = FusedPipeline::from_ops(&ops).unwrap();
        let vk = VectorKernel::compile(&p).unwrap();
        let data = vec![Value::tuple(vec![Value::from("a"), Value::from(1)])];
        assert!(vk.run_values(&data).is_none());
        // Scalar input into a tuple-field sarg: also a fallback.
        assert!(vk.run_values(&[Value::from(3)]).is_none());
    }

    #[test]
    fn unrecognized_agg_falls_back() {
        let p = FusedPipeline::new(vec![]);
        let vk = VectorKernel::compile(&p).unwrap();
        let key = KeyUdf::new("custom", |v| v.clone());
        let agg = ReduceUdf::pair_int_sum("sum");
        assert!(!agg_vectorizable(&key, &agg));
        assert!(run_reduce(&vk, &[], &key, &agg, false).is_none());
    }

    #[test]
    fn selection_vector_survives_chained_filters() {
        let ops = vec![sarg_lt(0, 8), sarg_lt(1, 40)];
        let p = FusedPipeline::from_ops(&ops).unwrap();
        let data = rows(10);
        let vk = VectorKernel::compile(&p).unwrap();
        let b = vk.run_values(&data).unwrap();
        assert_eq!(b.to_values(), p.run(&data, &BroadcastCtx::new()));
        assert!(b.selected_len() < b.len());
    }
}
