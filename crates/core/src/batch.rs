//! Columnar batch execution: typed column slices and vectorized kernels for
//! fused pipelines (Flare-style tight loops instead of tuple-at-a-time
//! interpretation).
//!
//! The row interpreter ([`crate::fused`]) pulls one [`Value`] enum at a time
//! through boxed UDFs, paying dispatch, `Arc` refcount traffic and hash-map
//! churn per tuple. This module offers the batched alternative: a [`Batch`]
//! of aligned typed [`Column`]s with a *selection vector*, and a
//! [`VectorKernel`] compiled from a fused chain whose steps all carry spec
//! descriptors ([`crate::udf::MapSpec`] et al.). Predicates write selection
//! vectors instead of materializing survivors; tokenizing flat-maps build
//! dictionary-encoded string columns (backed by [`crate::intern`]); the
//! fused terminal `ReduceBy` aggregates through a dictionary-keyed fast path
//! ([`reduce_batch`]) that replaces one hash + one allocation per quantum
//! with one slot increment.
//!
//! **Fallback rule:** compilation ([`VectorKernel::compile`]) fails if any
//! step lacks a spec (opaque closure), and execution
//! ([`VectorKernel::run_values`]) fails if the runtime column types don't
//! match the spec (e.g. a sarg over a mixed column). In both cases engines
//! fall back to the row interpreter for the whole segment, so batching is
//! always semantics-preserving: both paths are derived from the same spec
//! and produce identical values in identical order.

use std::collections::HashMap;
use std::sync::Arc;

use crate::fused::{FusedPipeline, FusedStep};
use crate::intern::intern;
use crate::udf::{CmpOp, FlatMapSpec, KeySpec, KeyUdf, MapSpec, ReduceSpec, ReduceUdf, Sarg};
use crate::value::Value;

/// A typed column of quanta (one attribute across a batch of rows).
#[derive(Clone, Debug)]
pub enum Column {
    /// 64-bit integers.
    Int64(Vec<i64>),
    /// 64-bit floats.
    Float64(Vec<f64>),
    /// Booleans.
    Bool(Vec<bool>),
    /// Dictionary-encoded strings: `ids[i]` indexes `dict`. Dictionary
    /// entries are in first-occurrence order and share interned allocations
    /// where they come from the tokenizer.
    Str {
        /// Distinct strings, first-occurrence order.
        dict: Vec<Arc<str>>,
        /// Per-row dictionary index.
        ids: Vec<u32>,
    },
    /// Row fallback: arbitrary (mixed-type, nested, or null) values.
    Row(Vec<Value>),
}

impl Column {
    /// Number of rows in the column.
    pub fn len(&self) -> usize {
        match self {
            Column::Int64(v) => v.len(),
            Column::Float64(v) => v.len(),
            Column::Bool(v) => v.len(),
            Column::Str { ids, .. } => ids.len(),
            Column::Row(v) => v.len(),
        }
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materialize row `i` as a [`Value`].
    pub fn get(&self, i: usize) -> Value {
        match self {
            Column::Int64(v) => Value::Int(v[i]),
            Column::Float64(v) => Value::Float(v[i]),
            Column::Bool(v) => Value::Bool(v[i]),
            Column::Str { dict, ids } => Value::Str(Arc::clone(&dict[ids[i] as usize])),
            Column::Row(v) => v[i].clone(),
        }
    }
}

/// Columnarize one attribute: typed vector when every value shares a scalar
/// type, [`Column::Row`] otherwise (nulls, tuples, mixed types).
fn columnize<'a>(vals: impl Iterator<Item = &'a Value> + Clone, len: usize) -> Column {
    let mut it = vals.clone();
    match it.next() {
        Some(Value::Int(_)) => {
            let mut out = Vec::with_capacity(len);
            for v in vals.clone() {
                match v {
                    Value::Int(n) => out.push(*n),
                    _ => return Column::Row(vals.cloned().collect()),
                }
            }
            Column::Int64(out)
        }
        Some(Value::Float(_)) => {
            let mut out = Vec::with_capacity(len);
            for v in vals.clone() {
                match v {
                    Value::Float(x) => out.push(*x),
                    _ => return Column::Row(vals.cloned().collect()),
                }
            }
            Column::Float64(out)
        }
        Some(Value::Bool(_)) => {
            let mut out = Vec::with_capacity(len);
            for v in vals.clone() {
                match v {
                    Value::Bool(b) => out.push(*b),
                    _ => return Column::Row(vals.cloned().collect()),
                }
            }
            Column::Bool(out)
        }
        Some(Value::Str(_)) => {
            let mut dict: Vec<Arc<str>> = Vec::new();
            let mut map: HashMap<Arc<str>, u32> = HashMap::new();
            let mut ids = Vec::with_capacity(len);
            for v in vals.clone() {
                match v {
                    Value::Str(s) => {
                        let id = match map.get(s.as_ref()) {
                            Some(&id) => id,
                            None => {
                                let id = dict.len() as u32;
                                dict.push(Arc::clone(s));
                                map.insert(Arc::clone(s), id);
                                id
                            }
                        };
                        ids.push(id);
                    }
                    _ => return Column::Row(vals.cloned().collect()),
                }
            }
            Column::Str { dict, ids }
        }
        _ => Column::Row(vals.cloned().collect()),
    }
}

/// Whether a batch holds scalar quanta (one column) or tuple quanta (one
/// column per field).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Shape {
    /// Each row is the single column's value.
    Scalar,
    /// Each row is a tuple of the columns' values, in column order.
    Tuple,
}

/// A batch of aligned columns with an optional selection vector.
///
/// Columns are shared via `Arc`, so transformations that touch one column
/// (e.g. [`MapSpec::FieldIntAdd`]) reuse the others without copying, and
/// cloning a batch (channel fan-out, retries) is O(columns).
#[derive(Clone, Debug)]
pub struct Batch {
    cols: Vec<Arc<Column>>,
    shape: Shape,
    len: usize,
    /// Surviving row indices in ascending order; `None` means all rows.
    sel: Option<Vec<u32>>,
}

impl Batch {
    /// Columnarize a slice of row values. Tuples of uniform arity become one
    /// column per field; anything else becomes a single (possibly
    /// row-fallback) column.
    pub fn from_values(input: &[Value]) -> Batch {
        let arity = match input.first() {
            Some(Value::Tuple(t)) if !t.is_empty() => {
                let n = t.len();
                if input.iter().all(|v| matches!(v, Value::Tuple(t) if t.len() == n)) {
                    Some(n)
                } else {
                    None
                }
            }
            _ => None,
        };
        match arity {
            Some(n) => {
                let cols = (0..n)
                    .map(|i| {
                        Arc::new(columnize(input.iter().map(move |v| v.field(i)), input.len()))
                    })
                    .collect();
                Batch { cols, shape: Shape::Tuple, len: input.len(), sel: None }
            }
            None => Batch {
                cols: vec![Arc::new(columnize(input.iter(), input.len()))],
                shape: Shape::Scalar,
                len: input.len(),
                sel: None,
            },
        }
    }

    /// Total rows (before selection).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no rows survive the selection.
    pub fn is_empty(&self) -> bool {
        self.selected_len() == 0
    }

    /// Rows surviving the selection vector.
    pub fn selected_len(&self) -> usize {
        self.sel.as_ref().map(Vec::len).unwrap_or(self.len)
    }

    /// The batch's shape.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Materialize row `i` (a physical row index, ignoring selection).
    fn row(&self, i: usize) -> Value {
        match self.shape {
            Shape::Scalar => self.cols[0].get(i),
            Shape::Tuple => Value::tuple(self.cols.iter().map(|c| c.get(i)).collect::<Vec<_>>()),
        }
    }

    /// Materialize the surviving rows back into row values, in order.
    pub fn to_values(&self) -> Vec<Value> {
        match &self.sel {
            Some(sel) => sel.iter().map(|&i| self.row(i as usize)).collect(),
            None => (0..self.len).map(|i| self.row(i)).collect(),
        }
    }

    /// Iterate surviving physical row indices in order.
    fn selected(&self) -> impl Iterator<Item = usize> + '_ {
        let sel = self.sel.as_deref();
        (0..self.len).filter_map(move |i| match sel {
            Some(s) => s.get(i).map(|&x| x as usize),
            None => Some(i),
        })
    }
}

/// One vectorized step over column slices.
#[derive(Clone, Debug)]
enum VStep {
    /// Sargable predicate → selection vector.
    Filter(Sarg),
    /// Recognized arithmetic / pairing map.
    Map(MapSpec),
    /// Whitespace tokenizer → dictionary-encoded string column.
    Tokenize,
    /// Column projection.
    Project(Vec<usize>),
}

/// A fused chain compiled to vectorized steps. Produced by [`compile`]
/// (`None` when any step is an opaque closure); executed by [`run_values`]
/// (`None` when runtime column types don't fit — callers fall back to the
/// row interpreter).
///
/// [`compile`]: VectorKernel::compile
/// [`run_values`]: VectorKernel::run_values
#[derive(Clone, Debug)]
pub struct VectorKernel {
    steps: Vec<VStep>,
}

impl VectorKernel {
    /// Compile a fused pipeline into vector steps; `None` if any step lacks
    /// a spec descriptor.
    pub fn compile(p: &FusedPipeline) -> Option<VectorKernel> {
        let steps = p
            .steps()
            .iter()
            .map(|s| match s {
                FusedStep::Filter(p) => p.spec.clone().map(VStep::Filter),
                FusedStep::Map(m) => m.spec.clone().map(VStep::Map),
                FusedStep::FlatMap(f) => {
                    (f.spec == Some(FlatMapSpec::SplitWhitespace)).then_some(VStep::Tokenize)
                }
                FusedStep::Project(fields) => Some(VStep::Project(fields.clone())),
            })
            .collect::<Option<Vec<_>>>()?;
        Some(VectorKernel { steps })
    }

    /// Number of vectorized steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the kernel has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Columnarize `input` and run every step over column slices. `None` on
    /// any runtime type mismatch (caller falls back to the row path).
    pub fn run_values(&self, input: &[Value]) -> Option<Batch> {
        let mut b = Batch::from_values(input);
        for s in &self.steps {
            b = apply(s, b)?;
        }
        Some(b)
    }
}

/// Build the new selection vector for `keep` over the currently selected
/// physical rows.
fn filter_sel(b: &Batch, keep: impl Fn(usize) -> bool) -> Vec<u32> {
    let mut out = Vec::with_capacity(b.selected_len());
    match &b.sel {
        Some(sel) => {
            for &i in sel {
                if keep(i as usize) {
                    out.push(i);
                }
            }
        }
        None => {
            for i in 0..b.len {
                if keep(i) {
                    out.push(i as u32);
                }
            }
        }
    }
    out
}

#[inline]
fn ord_ok(op: CmpOp, o: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering::*;
    matches!(
        (op, o),
        (CmpOp::Lt, Less)
            | (CmpOp::Le, Less | Equal)
            | (CmpOp::Gt, Greater)
            | (CmpOp::Ge, Greater | Equal)
            | (CmpOp::Eq, Equal)
            | (CmpOp::Ne, Less | Greater)
    )
}

/// Apply one vector step; `None` on a runtime shape/type mismatch.
fn apply(step: &VStep, b: Batch) -> Option<Batch> {
    match step {
        VStep::Filter(sarg) => {
            if b.shape != Shape::Tuple || sarg.field >= b.cols.len() {
                return None;
            }
            let op = sarg.op;
            // Tight loop per (column type, literal type) pair, matching the
            // canonical `Value` order exactly (ints and floats cross-compare
            // numerically via `total_cmp`).
            let sel = match (b.cols[sarg.field].as_ref(), &sarg.literal) {
                (Column::Int64(xs), Value::Int(l)) => {
                    let l = *l;
                    filter_sel(&b, |i| ord_ok(op, xs[i].cmp(&l)))
                }
                (Column::Int64(xs), Value::Float(l)) => {
                    let l = *l;
                    filter_sel(&b, |i| ord_ok(op, (xs[i] as f64).total_cmp(&l)))
                }
                (Column::Float64(xs), Value::Float(l)) => {
                    let l = *l;
                    filter_sel(&b, |i| ord_ok(op, xs[i].total_cmp(&l)))
                }
                (Column::Float64(xs), Value::Int(l)) => {
                    let l = *l as f64;
                    filter_sel(&b, |i| ord_ok(op, xs[i].total_cmp(&l)))
                }
                (Column::Bool(xs), Value::Bool(l)) => {
                    let l = *l;
                    filter_sel(&b, |i| ord_ok(op, xs[i].cmp(&l)))
                }
                (Column::Str { dict, ids }, Value::Str(l)) => {
                    // Evaluate once per distinct string, then index.
                    let keep: Vec<bool> =
                        dict.iter().map(|s| ord_ok(op, s.as_ref().cmp(l.as_ref()))).collect();
                    filter_sel(&b, |i| keep[ids[i] as usize])
                }
                _ => return None,
            };
            Some(Batch { sel: Some(sel), ..b })
        }
        VStep::Map(MapSpec::PairIntLit(lit)) => {
            if b.shape != Shape::Scalar {
                return None;
            }
            let lit_col = Arc::new(Column::Int64(vec![*lit; b.len]));
            Some(Batch {
                cols: vec![Arc::clone(&b.cols[0]), lit_col],
                shape: Shape::Tuple,
                len: b.len,
                sel: b.sel,
            })
        }
        VStep::Map(MapSpec::FieldIntAdd { field, delta }) => {
            if b.shape != Shape::Tuple || *field >= b.cols.len() {
                return None;
            }
            let Column::Int64(xs) = b.cols[*field].as_ref() else { return None };
            let bumped =
                Arc::new(Column::Int64(xs.iter().map(|x| x.wrapping_add(*delta)).collect()));
            let cols = b
                .cols
                .iter()
                .enumerate()
                .map(|(i, c)| if i == *field { Arc::clone(&bumped) } else { Arc::clone(c) })
                .collect();
            Some(Batch { cols, shape: Shape::Tuple, len: b.len, sel: b.sel })
        }
        VStep::Tokenize => {
            if b.shape != Shape::Scalar {
                return None;
            }
            let Column::Str { dict, ids } = b.cols[0].as_ref() else { return None };
            // Tokenize each distinct line once, into word ids over an
            // interner-backed output dictionary.
            let mut out_dict: Vec<Arc<str>> = Vec::new();
            let mut map: HashMap<Arc<str>, u32> = HashMap::new();
            let mut line_tokens: Vec<Vec<u32>> = Vec::with_capacity(dict.len());
            for line in dict {
                let toks = line
                    .split_whitespace()
                    .map(|w| match map.get(w) {
                        Some(&id) => id,
                        None => {
                            let a = intern(w);
                            let id = out_dict.len() as u32;
                            out_dict.push(Arc::clone(&a));
                            map.insert(a, id);
                            id
                        }
                    })
                    .collect();
                line_tokens.push(toks);
            }
            let mut out_ids = Vec::new();
            for i in b.selected() {
                out_ids.extend_from_slice(&line_tokens[ids[i] as usize]);
            }
            let len = out_ids.len();
            Some(Batch {
                cols: vec![Arc::new(Column::Str { dict: out_dict, ids: out_ids })],
                shape: Shape::Scalar,
                len,
                sel: None,
            })
        }
        VStep::Project(fields) => {
            if b.shape != Shape::Tuple || fields.iter().any(|&i| i >= b.cols.len()) {
                return None;
            }
            let cols: Vec<_> = fields.iter().map(|&i| Arc::clone(&b.cols[i])).collect();
            Some(Batch { cols, shape: Shape::Tuple, len: b.len, sel: b.sel })
        }
    }
}

/// Whether a `ReduceBy`'s key/agg pair is recognized for batched
/// aggregation. Static property (spec presence), safe for cost models.
pub fn agg_vectorizable(key: &KeyUdf, agg: &ReduceUdf) -> bool {
    key.spec == Some(KeySpec::Field(0)) && agg.spec == Some(ReduceSpec::PairIntSum)
}

/// Batched hash aggregation over a `(key, int)` tuple batch: the fused
/// terminal `ReduceBy` fast path.
///
/// Emits exactly what the row path's [`crate::kernels::ReduceByState`]
/// would: one `(key, sum)` pair per distinct key in first-occurrence order
/// of the surviving rows — or, with `keyed`, `(key, (key, sum))` pairs as
/// [`finish_keyed`] produces for shuffle routing. Dictionary-encoded keys
/// aggregate with one slot increment per row (no `Value` hashing at all);
/// integer keys pay one `i64` hash per row. `None` when the batch is not a
/// two-column tuple with an integer value column (callers fall back to the
/// row accumulator).
///
/// [`finish_keyed`]: crate::kernels::ReduceByState::finish_keyed
pub fn reduce_batch(b: &Batch, keyed: bool) -> Option<Vec<Value>> {
    if b.shape != Shape::Tuple || b.cols.len() != 2 {
        return None;
    }
    let Column::Int64(vals) = b.cols[1].as_ref() else { return None };
    let pair = |k: Value, sum: i64| {
        if keyed {
            Value::pair(k.clone(), Value::pair(k, Value::Int(sum)))
        } else {
            Value::pair(k, Value::Int(sum))
        }
    };
    match b.cols[0].as_ref() {
        Column::Str { dict, ids } => {
            // Dictionary-keyed fast path: slot per distinct key, no hashing.
            let mut sums = vec![0i64; dict.len()];
            let mut seen = vec![false; dict.len()];
            let mut order: Vec<u32> = Vec::new();
            for i in b.selected() {
                let id = ids[i] as usize;
                if !seen[id] {
                    seen[id] = true;
                    order.push(id as u32);
                }
                sums[id] = sums[id].wrapping_add(vals[i]);
            }
            Some(
                order
                    .into_iter()
                    .map(|id| pair(Value::Str(Arc::clone(&dict[id as usize])), sums[id as usize]))
                    .collect(),
            )
        }
        Column::Int64(keys) => {
            let mut slot: HashMap<i64, usize> = HashMap::new();
            let mut order: Vec<i64> = Vec::new();
            let mut sums: Vec<i64> = Vec::new();
            for i in b.selected() {
                let k = keys[i];
                let s = *slot.entry(k).or_insert_with(|| {
                    order.push(k);
                    sums.push(0);
                    sums.len() - 1
                });
                sums[s] = sums[s].wrapping_add(vals[i]);
            }
            Some(order.into_iter().zip(sums).map(|(k, sum)| pair(Value::Int(k), sum)).collect())
        }
        _ => None,
    }
}

/// One-shot helper for engines: vectorize the chain, then aggregate the
/// terminal `ReduceBy` in one batched pass. `None` (→ row fallback) when the
/// key/agg pair is unrecognized, the chain doesn't vectorize at runtime, or
/// the reduced batch has the wrong shape.
pub fn run_reduce(
    vk: &VectorKernel,
    input: &[Value],
    key: &KeyUdf,
    agg: &ReduceUdf,
    keyed: bool,
) -> Option<Vec<Value>> {
    if !agg_vectorizable(key, agg) {
        return None;
    }
    let b = vk.run_values(input)?;
    reduce_batch(&b, keyed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::ReduceByState;
    use crate::plan::LogicalOp;
    use crate::udf::{BroadcastCtx, FlatMapUdf, MapUdf, PredicateUdf};

    fn rows(n: i64) -> Vec<Value> {
        (0..n).map(|i| Value::tuple(vec![Value::Int(i), Value::Int(i * i)])).collect()
    }

    fn sarg_lt(field: usize, lit: i64) -> LogicalOp {
        let sp = PredicateUdf::from_sarg(
            format!("f{field}<{lit}"),
            Sarg { field, op: CmpOp::Lt, literal: Value::from(lit) },
        );
        LogicalOp::SargFilter { pred: sp.pred, sarg: sp.sarg }
    }

    #[test]
    fn roundtrip_preserves_values() {
        let data = vec![Value::from(1), Value::from(2), Value::from(3)];
        assert_eq!(Batch::from_values(&data).to_values(), data);
        let strs = vec![Value::from("a"), Value::from("b"), Value::from("a")];
        assert_eq!(Batch::from_values(&strs).to_values(), strs);
        let tups = rows(5);
        assert_eq!(Batch::from_values(&tups).to_values(), tups);
        let mixed = vec![Value::from(1), Value::from("x"), Value::Null];
        assert_eq!(Batch::from_values(&mixed).to_values(), mixed);
        let empty: Vec<Value> = vec![];
        assert!(Batch::from_values(&empty).to_values().is_empty());
    }

    #[test]
    fn vector_filter_project_matches_row_path() {
        let ops = vec![sarg_lt(0, 6), LogicalOp::Project { fields: vec![1, 0] }];
        let p = FusedPipeline::from_ops(&ops).unwrap();
        assert!(p.vectorizable());
        let data = rows(10);
        let vk = VectorKernel::compile(&p).unwrap();
        let batched = vk.run_values(&data).unwrap().to_values();
        let row = p.run(&data, &BroadcastCtx::new());
        assert_eq!(batched, row);
    }

    #[test]
    fn vector_field_add_matches_row_path() {
        let ops = vec![sarg_lt(1, 50), LogicalOp::Map(MapUdf::field_add_int("bump", 1, 7))];
        let p = FusedPipeline::from_ops(&ops).unwrap();
        let data = rows(12);
        let vk = VectorKernel::compile(&p).unwrap();
        let batched = vk.run_values(&data).unwrap().to_values();
        assert_eq!(batched, p.run(&data, &BroadcastCtx::new()));
    }

    #[test]
    fn tokenize_pair_matches_row_path() {
        let ops = vec![
            LogicalOp::FlatMap(FlatMapUdf::split_whitespace("split")),
            LogicalOp::Map(MapUdf::pair_with_int("pair", 1)),
        ];
        let p = FusedPipeline::from_ops(&ops).unwrap();
        let lines: Vec<Value> = ["the quick fox", "the lazy dog", "the quick dog", ""]
            .iter()
            .map(|&s| Value::from(s))
            .collect();
        let vk = VectorKernel::compile(&p).unwrap();
        let batched = vk.run_values(&lines).unwrap().to_values();
        assert_eq!(batched, p.run(&lines, &BroadcastCtx::new()));
    }

    #[test]
    fn batched_wordcount_matches_reduce_by_state() {
        let ops = vec![
            LogicalOp::FlatMap(FlatMapUdf::split_whitespace("split")),
            LogicalOp::Map(MapUdf::pair_with_int("pair", 1)),
        ];
        let p = FusedPipeline::from_ops(&ops).unwrap();
        let lines: Vec<Value> =
            ["a b a c", "b a", "c c c a"].iter().map(|&s| Value::from(s)).collect();
        let key = KeyUdf::field(0);
        let agg = ReduceUdf::pair_int_sum("sum");
        let vk = VectorKernel::compile(&p).unwrap();

        let mut state = ReduceByState::new(&key, &agg);
        p.run_each(&lines, &BroadcastCtx::new(), |v| state.feed_owned(v));

        let batched = run_reduce(&vk, &lines, &key, &agg, false).unwrap();
        assert_eq!(batched, state.finish());
    }

    #[test]
    fn batched_keyed_reduce_matches_finish_keyed() {
        let ops = vec![
            LogicalOp::FlatMap(FlatMapUdf::split_whitespace("split")),
            LogicalOp::Map(MapUdf::pair_with_int("pair", 1)),
        ];
        let p = FusedPipeline::from_ops(&ops).unwrap();
        let lines: Vec<Value> = ["x y x", "z y"].iter().map(|&s| Value::from(s)).collect();
        let key = KeyUdf::field(0);
        let agg = ReduceUdf::pair_int_sum("sum");
        let vk = VectorKernel::compile(&p).unwrap();

        let mut state = ReduceByState::new(&key, &agg);
        p.run_each(&lines, &BroadcastCtx::new(), |v| state.feed_owned(v));

        let batched = run_reduce(&vk, &lines, &key, &agg, true).unwrap();
        assert_eq!(batched, state.finish_keyed());
    }

    #[test]
    fn int_keyed_reduce_matches_row_path() {
        // (i % 4, i) pairs: int-keyed batched aggregation.
        let data: Vec<Value> =
            (0..20).map(|i| Value::pair(Value::Int(i % 4), Value::Int(i))).collect();
        let p = FusedPipeline::new(vec![]);
        let vk = VectorKernel::compile(&p).unwrap();
        let key = KeyUdf::field(0);
        let agg = ReduceUdf::pair_int_sum("sum");
        let mut state = ReduceByState::new(&key, &agg);
        for v in &data {
            state.feed(v);
        }
        let batched = run_reduce(&vk, &data, &key, &agg, false).unwrap();
        assert_eq!(batched, state.finish());
    }

    #[test]
    fn opaque_closures_refuse_to_compile() {
        let ops = vec![LogicalOp::Map(MapUdf::new("opaque", |v| v.clone()))];
        let p = FusedPipeline::from_ops(&ops).unwrap();
        assert!(VectorKernel::compile(&p).is_none());
        assert!(!p.vectorizable());
    }

    #[test]
    fn runtime_type_mismatch_falls_back() {
        // Sarg over a string column with an int literal: compile succeeds,
        // execution refuses (row path would compare via canonical rank).
        let ops = vec![sarg_lt(0, 5)];
        let p = FusedPipeline::from_ops(&ops).unwrap();
        let vk = VectorKernel::compile(&p).unwrap();
        let data = vec![Value::tuple(vec![Value::from("a"), Value::from(1)])];
        assert!(vk.run_values(&data).is_none());
        // Scalar input into a tuple-field sarg: also a fallback.
        assert!(vk.run_values(&[Value::from(3)]).is_none());
    }

    #[test]
    fn unrecognized_agg_falls_back() {
        let p = FusedPipeline::new(vec![]);
        let vk = VectorKernel::compile(&p).unwrap();
        let key = KeyUdf::new("custom", |v| v.clone());
        let agg = ReduceUdf::pair_int_sum("sum");
        assert!(!agg_vectorizable(&key, &agg));
        assert!(run_reduce(&vk, &[], &key, &agg, false).is_none());
    }

    #[test]
    fn selection_vector_survives_chained_filters() {
        let ops = vec![sarg_lt(0, 8), sarg_lt(1, 40)];
        let p = FusedPipeline::from_ops(&ops).unwrap();
        let data = rows(10);
        let vk = VectorKernel::compile(&p).unwrap();
        let b = vk.run_values(&data).unwrap();
        assert_eq!(b.to_values(), p.run(&data, &BroadcastCtx::new()));
        assert!(b.selected_len() < b.len());
    }
}
