//! # rheem-core
//!
//! Rust reproduction of **RHEEM** (PVLDB 11(11), 2018): a general-purpose
//! cross-platform data processing system. Applications express platform-
//! agnostic [`plan::RheemPlan`]s over data quanta ([`value::Value`]); the
//! cost-based [`optimizer::Optimizer`] maps every operator to execution
//! operators of registered [`platform::Platform`]s — considering data
//! movement over the channel conversion graph ([`movement`]) and platform
//! start-up costs — and the [`executor::Executor`] orchestrates the chosen
//! plan across platforms, monitored ([`monitor`]) and progressively
//! re-optimized ([`progressive`]) on cardinality mismatches. The cost model
//! is learned from execution logs ([`learner`]).
//!
//! ```
//! use rheem_core::prelude::*;
//!
//! // Real applications register platforms (platform-javastreams,
//! // platform-spark, ...) with the context; the driver alone can at least
//! // relay collections end-to-end.
//! let mut b = PlanBuilder::new();
//! let sink = b
//!     .collection(vec![Value::from(1), Value::from(2), Value::from(3)])
//!     .collect();
//! let plan = b.build().unwrap();
//! let ctx = RheemContext::new();
//! let result = ctx.execute(&plan).unwrap();
//! assert_eq!(result.sink(sink).unwrap().len(), 3);
//! ```

#![warn(missing_docs)]

pub mod api;
pub mod batch;
pub mod builtin;
pub mod cache;
pub mod cardinality;
pub mod channel;
pub mod config;
pub mod cost;
pub mod dot;
pub mod error;
pub mod exec;
pub mod execplan;
pub mod executor;
pub mod fault;
pub mod fused;
pub mod intern;
pub mod kernels;
pub mod learner;
pub mod mapping;
pub mod metrics;
pub mod monitor;
pub mod movement;
pub mod obs;
pub mod optimizer;
pub mod plan;
pub mod platform;
pub mod pool;
pub mod progressive;
pub mod registry;
pub mod service;
pub mod trace;
pub mod udf;
pub mod value;

/// Convenient re-exports for application code.
pub mod prelude {
    pub use crate::api::{
        AnalyzeRow, ExplainAnalysis, JobMetrics, JobResult, JobScope, RheemContext,
    };
    pub use crate::cache::Namespace;
    pub use crate::error::{Result, RheemError};
    pub use crate::metrics::MetricsRegistry;
    pub use crate::obs::{
        Diagnosis, Event, EventKind, FlightRecorder, ObsServer, ObsSource, Watchdog, WatchdogConfig,
    };
    pub use crate::plan::{
        DataQuanta, IneqCond, LogicalOp, OperatorId, PlanBuilder, RheemPlan, SampleMethod,
        SampleSize,
    };
    pub use crate::platform::{ids, Platform, PlatformId};
    pub use crate::service::{
        simulate_fair_share, FairShare, JobHandle, JobService, ServiceConfig, SimJob, SimOutcome,
        StageGate, TenantSpec,
    };
    pub use crate::trace::{JobTrace, OpProfile, Span, SpanKind};
    pub use crate::udf::{
        BroadcastCtx, CmpOp, FlatMapUdf, KeyUdf, MapUdf, PredicateUdf, ReduceUdf, Sarg,
    };
    pub use crate::value::{Dataset, Value};
}
