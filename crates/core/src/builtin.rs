//! Built-in execution operators owned by the Rheem core itself.
//!
//! The executor (the "driver") natively handles control flow and result
//! collection: loop heads, collection sources/sinks, and plain text-file
//! I/O all run inside the driver, mirroring Fig. 7 where Stage 3 holds only
//! the RepeatLoop "because the executor must have the execution control".
//! These operators live on the pseudo-platform [`CONTROL`], which has no
//! startup cost and does not count as a "used platform".

use std::path::PathBuf;
use std::sync::Arc;

use crate::channel::{kinds, ChannelData, ChannelKind};
use crate::cost::Load;
use crate::error::{Result, RheemError};
use crate::exec::{ExecCtx, ExecutionOperator};
use crate::mapping::{Candidate, FnMapping};
use crate::plan::{LogicalOp, OpKind, OperatorNode, RheemPlan};
use crate::platform::PlatformId;
use crate::registry::Registry;
use crate::udf::BroadcastCtx;
use crate::value::Value;

/// The driver pseudo-platform.
pub const CONTROL: PlatformId = PlatformId("rheem.driver");

/// Loop head relay: the executor orchestrates iterations; the operator
/// itself just forwards the current loop state.
pub struct LoopRelay {
    label: &'static str,
}

impl ExecutionOperator for LoopRelay {
    fn name(&self) -> &str {
        self.label
    }
    fn platform(&self) -> PlatformId {
        CONTROL
    }
    fn accepted_inputs(&self, _slot: usize) -> Vec<ChannelKind> {
        vec![kinds::COLLECTION]
    }
    fn output_kind(&self) -> ChannelKind {
        kinds::COLLECTION
    }
    fn load(&self, _in_cards: &[f64], _avg_bytes: f64, _model: &crate::cost::CostModel) -> Load {
        Load::default()
    }
    fn execute(
        &self,
        _ctx: &mut ExecCtx<'_>,
        inputs: &[ChannelData],
        _bc: &BroadcastCtx,
    ) -> Result<ChannelData> {
        // The executor feeds the current loop state as input 0.
        Ok(inputs[0].clone())
    }
}

/// Driver-side in-memory collection source.
pub struct DriverCollectionSource {
    data: crate::value::Dataset,
}

impl ExecutionOperator for DriverCollectionSource {
    fn name(&self) -> &str {
        "DriverCollectionSource"
    }
    fn platform(&self) -> PlatformId {
        CONTROL
    }
    fn accepted_inputs(&self, _slot: usize) -> Vec<ChannelKind> {
        vec![]
    }
    fn output_kind(&self) -> ChannelKind {
        kinds::COLLECTION
    }
    fn load(&self, _in_cards: &[f64], _avg_bytes: f64, _model: &crate::cost::CostModel) -> Load {
        Load::default()
    }
    fn execute(
        &self,
        _ctx: &mut ExecCtx<'_>,
        _inputs: &[ChannelData],
        _bc: &BroadcastCtx,
    ) -> Result<ChannelData> {
        Ok(ChannelData::Collection(Arc::clone(&self.data)))
    }
}

/// Driver-side result sink: flattens the input into the job result.
pub struct DriverCollectionSink;

impl ExecutionOperator for DriverCollectionSink {
    fn name(&self) -> &str {
        "DriverCollectionSink"
    }
    fn platform(&self) -> PlatformId {
        CONTROL
    }
    fn accepted_inputs(&self, _slot: usize) -> Vec<ChannelKind> {
        vec![kinds::COLLECTION]
    }
    fn output_kind(&self) -> ChannelKind {
        kinds::NONE
    }
    fn load(&self, _in_cards: &[f64], _avg_bytes: f64, _model: &crate::cost::CostModel) -> Load {
        Load::default()
    }
    fn execute(
        &self,
        _ctx: &mut ExecCtx<'_>,
        inputs: &[ChannelData],
        _bc: &BroadcastCtx,
    ) -> Result<ChannelData> {
        // Keep the data: the executor extracts sink outputs into JobResult.
        Ok(inputs[0].clone())
    }
}

/// Driver-side single-threaded text file reader (platforms register faster,
/// parallel readers of their own).
pub struct DriverTextFileSource {
    path: PathBuf,
}

impl ExecutionOperator for DriverTextFileSource {
    fn name(&self) -> &str {
        "DriverTextFileSource"
    }
    fn platform(&self) -> PlatformId {
        CONTROL
    }
    fn accepted_inputs(&self, _slot: usize) -> Vec<ChannelKind> {
        vec![]
    }
    fn output_kind(&self) -> ChannelKind {
        kinds::COLLECTION
    }
    fn load(&self, in_cards: &[f64], avg_bytes: f64, _model: &crate::cost::CostModel) -> Load {
        // in_cards[0] carries the estimated line count for sources.
        let card = in_cards.first().copied().unwrap_or(0.0);
        Load { cpu_cycles: card * 200.0, disk_bytes: card * avg_bytes, tasks: 1, ..Load::default() }
    }
    fn execute(
        &self,
        ctx: &mut ExecCtx<'_>,
        _inputs: &[ChannelData],
        _bc: &BroadcastCtx,
    ) -> Result<ChannelData> {
        let path = self.path.clone();
        let (bytes, store) = rheem_storage::stat(&path).map_err(RheemError::Io)?;
        ctx.add_virtual_ms(rheem_storage::default_costs(store).read_ms(bytes));
        ctx.timed_seq(self, 0, || {
            let lines = rheem_storage::read_lines(&path).map_err(RheemError::Io)?;
            let out: Vec<Value> = lines.into_iter().map(Value::from).collect();
            let n = out.len() as u64;
            Ok((ChannelData::Collection(Arc::new(out)), n))
        })
    }
}

/// Driver-side text file writer.
pub struct DriverTextFileSink {
    path: PathBuf,
}

impl ExecutionOperator for DriverTextFileSink {
    fn name(&self) -> &str {
        "DriverTextFileSink"
    }
    fn platform(&self) -> PlatformId {
        CONTROL
    }
    fn accepted_inputs(&self, _slot: usize) -> Vec<ChannelKind> {
        vec![kinds::COLLECTION]
    }
    fn output_kind(&self) -> ChannelKind {
        kinds::NONE
    }
    fn load(&self, in_cards: &[f64], avg_bytes: f64, _model: &crate::cost::CostModel) -> Load {
        let card = in_cards.first().copied().unwrap_or(0.0);
        Load { cpu_cycles: card * 200.0, disk_bytes: card * avg_bytes, tasks: 1, ..Load::default() }
    }
    fn execute(
        &self,
        ctx: &mut ExecCtx<'_>,
        inputs: &[ChannelData],
        _bc: &BroadcastCtx,
    ) -> Result<ChannelData> {
        let data = inputs[0].flatten()?;
        let path = self.path.clone();
        let store = rheem_storage::resolve(&path).store;
        let out = ctx.timed_seq(self, data.len() as u64, || {
            let bytes = rheem_storage::write_lines(&path, data.iter().map(|v| v.to_string()))
                .map_err(RheemError::Io)?;
            Ok((ChannelData::None, bytes))
        })?;
        let bytes = rheem_storage::stat(&path).map(|(b, _)| b).unwrap_or(0);
        ctx.add_virtual_ms(rheem_storage::default_costs(store).write_ms(bytes));
        Ok(out)
    }
}

/// Register the driver's built-in mappings (control flow, collection
/// sources/sinks, fallback file I/O) with a registry. Called by
/// [`crate::api::RheemContext`] on construction.
pub fn register_builtins(registry: &mut Registry) {
    registry.add_mapping(Arc::new(FnMapping(
        |_plan: &RheemPlan, node: &OperatorNode| match &node.op {
            LogicalOp::RepeatLoop { .. } => {
                vec![Candidate::single(node.id, Arc::new(LoopRelay { label: "RepeatLoop" }) as _)]
            }
            LogicalOp::DoWhile { .. } => {
                vec![Candidate::single(node.id, Arc::new(LoopRelay { label: "DoWhile" }) as _)]
            }
            LogicalOp::CollectionSource { data } => vec![Candidate::single(
                node.id,
                Arc::new(DriverCollectionSource { data: Arc::clone(data) }) as _,
            )],
            LogicalOp::CollectionSink => {
                vec![Candidate::single(node.id, Arc::new(DriverCollectionSink) as _)]
            }
            LogicalOp::TextFileSource { path } => vec![Candidate::single(
                node.id,
                Arc::new(DriverTextFileSource { path: path.clone() }) as _,
            )],
            LogicalOp::TextFileSink { path } => vec![Candidate::single(
                node.id,
                Arc::new(DriverTextFileSink { path: path.clone() }) as _,
            )],
            _ => vec![],
        },
    )));
}

/// Whether an operator kind is always executed by the driver.
pub fn is_control(kind: OpKind) -> bool {
    kind.is_loop_head()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Profiles;

    #[test]
    fn builtin_mappings_cover_control_and_io() {
        let mut reg = Registry::new();
        register_builtins(&mut reg);
        let mut plan = RheemPlan::new();
        let s = plan.add(LogicalOp::CollectionSource { data: Arc::new(vec![Value::from(1)]) }, &[]);
        let sink = plan.add(LogicalOp::CollectionSink, &[s]);
        assert_eq!(reg.candidates_for(&plan, plan.node(s)).len(), 1);
        assert_eq!(reg.candidates_for(&plan, plan.node(sink)).len(), 1);
    }

    #[test]
    fn driver_source_and_sink_roundtrip() {
        let profiles = Profiles::bare();
        let mut ctx = ExecCtx::new(&profiles, 0);
        let src = DriverCollectionSource { data: Arc::new(vec![Value::from(5)]) };
        let out = src.execute(&mut ctx, &[], &BroadcastCtx::new()).unwrap();
        assert_eq!(out.cardinality(), Some(1));
        let sink = DriverCollectionSink;
        let kept = sink.execute(&mut ctx, &[out], &BroadcastCtx::new()).unwrap();
        assert_eq!(kept.cardinality(), Some(1));
    }

    #[test]
    fn text_file_roundtrip() {
        let dir = std::env::temp_dir().join("rheem_builtin_io");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("io.txt");
        let profiles = Profiles::bare();
        let mut ctx = ExecCtx::new(&profiles, 0);
        let sink = DriverTextFileSink { path: path.clone() };
        let data =
            ChannelData::Collection(Arc::new(vec![Value::from("hello"), Value::from("world")]));
        sink.execute(&mut ctx, &[data], &BroadcastCtx::new()).unwrap();
        let src = DriverTextFileSource { path };
        let out = src.execute(&mut ctx, &[], &BroadcastCtx::new()).unwrap();
        let d = out.flatten().unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].as_str(), Some("hello"));
    }
}
