//! Plan enumeration with the Join/Prune algebra and lossless pruning (§4.1).
//!
//! Partial plans grow along a topological order of the Rheem plan. After
//! each step, partials are grouped by their *boundary signature* — the
//! execution alternatives of all operators that can still influence future
//! costs (open producers awaiting data-movement settlement, pre-covered
//! downstream operators, and the set of started platforms) — and only the
//! cheapest partial per group survives. Because everything that affects the
//! cost of any completion is part of the signature, the pruning is lossless:
//! the optimal execution plan is never discarded.
//!
//! Data movement is costed exactly: once the last consumer of a producer has
//! chosen its alternative, the minimal conversion tree for that producer is
//! solved over the channel conversion graph (honouring channel reusability)
//! and charged, scaled by loop-iteration factors.

use std::collections::HashMap;

use super::{OptimizedPlan, Optimizer};
use crate::builtin::CONTROL;
use crate::cardinality::Estimates;
use crate::channel::ChannelKind;
use crate::cost::Interval;
use crate::error::{Result, RheemError};
use crate::mapping::Candidate;
use crate::movement::ConversionGraph;
use crate::plan::{OperatorId, RheemPlan};
use crate::platform::PlatformId;

const UNSET: u32 = u32::MAX;

/// Statistics from one enumeration run (pruning ablation, §4.1's "kn plans"
/// discussion).
#[derive(Clone, Copy, Debug, Default)]
pub struct EnumerationStats {
    /// Partial plans materialized over the whole run.
    pub partials_created: usize,
    /// Partials discarded by signature pruning.
    pub partials_pruned: usize,
    /// Candidates considered (size of the inflated plan).
    pub candidates: usize,
}

/// A consumer edge of some producer operator.
#[derive(Clone, Copy, Debug)]
struct ConsumerEdge {
    op: OperatorId,
    /// `Some(slot)` for a regular input, `None` for a broadcast edge.
    slot: Option<usize>,
}

/// The inflated plan: every alternative for every operator, annotated with
/// time estimates (Fig. 6).
struct Inflated {
    estimates: Estimates,
    topo: Vec<OperatorId>,
    pos: Vec<usize>,
    cands: Vec<Candidate>,
    /// candidate indices grouped by head (covers[0]).
    by_head: Vec<Vec<usize>>,
    /// scalar virtual-ms estimate per candidate (iteration-scaled).
    time_ms: Vec<f64>,
    /// interval estimate per candidate.
    time_iv: Vec<Interval>,
    /// distinct platforms (bitmask order), driver excluded.
    platforms: Vec<PlatformId>,
    /// per producer: consumer edges.
    consumers: Vec<Vec<ConsumerEdge>>,
    /// per topo step: producers whose movement becomes payable.
    pay_at: Vec<Vec<OperatorId>>,
}

#[derive(Clone)]
struct Partial {
    choice: Vec<u32>,
    cost: f64,
    mask: u32,
}

fn build_inflated(opt: &Optimizer<'_>, plan: &RheemPlan, estimates: Estimates) -> Result<Inflated> {
    let n = plan.len();
    let topo = plan.topological_order()?;
    let mut pos = vec![0usize; n];
    for (k, &id) in topo.iter().enumerate() {
        pos[id.index()] = k;
    }

    // --- inflation: gather candidates -----------------------------------
    let mut cands: Vec<Candidate> = Vec::new();
    let mut by_head = vec![Vec::new(); n];
    for node in plan.operators() {
        let mut alts = opt.registry.candidates_for(plan, node);
        if let Some(forced) = opt.forced_platform {
            // Keep the driver's control/sink/source ops available.
            alts.retain(|c| {
                let p = c.exec.platform();
                p == forced || p == CONTROL
            });
        }
        if !opt.blacklist.is_empty() {
            // Failover: blacklisted platforms are out for the rest of the
            // job; the driver survives (it is the failover mechanism).
            alts.retain(|c| {
                let p = c.exec.platform();
                p == CONTROL || !opt.blacklist.contains(&p)
            });
        }
        if alts.is_empty() {
            return Err(Optimizer::err_no_candidates(plan, node.id));
        }
        for c in alts {
            let head = c.covers[0];
            by_head[head.index()].push(cands.len());
            cands.push(c);
        }
    }

    // --- cache-aware inflation -------------------------------------------
    // For every subplan-fingerprint hit, add a zero-input CachedSource
    // candidate covering the hit operator's whole input closure. It rides
    // through costing and enumeration like any other source-headed chain
    // candidate, so reuse is *chosen*, never forced: the replay cost (cache
    // read + conversion out of the collection channel) competes against
    // recomputation. Skipped under a forced platform — a driver-side replay
    // would bypass the pin.
    if let Some(cache) = opt.cache.as_ref().filter(|_| opt.forced_platform.is_none()) {
        // Overridden fingerprints pin progressive-replan boundaries to
        // their original identities, so a re-planned remainder still hits
        // entries published before the rewrite.
        let fps = crate::cache::plan_fingerprints_with(plan, &opt.fp_overrides);
        for node in plan.operators() {
            let i = node.id.index();
            let Some(fp) = fps[i] else { continue };
            // An in-memory collection source replays for free already.
            if matches!(node.op, crate::plan::LogicalOp::CollectionSource { .. }) {
                continue;
            }
            // Namespace-scoped: the tenant's own entries first, the shared
            // namespace (public datasets) only when the scope opts in.
            let hit = cache.lookup_in(opt.cache_ns, fp).or_else(|| {
                (opt.cache_shared_read && !opt.cache_ns.is_shared())
                    .then(|| cache.lookup(fp))
                    .flatten()
            });
            let Some(hit) = hit else { continue };
            // Transitive input closure of the hit operator (fingerprintable
            // ops only, so no loop edges and no cycles).
            let mut covered = vec![false; n];
            let mut stack = vec![node.id];
            while let Some(o) = stack.pop() {
                if covered[o.index()] {
                    continue;
                }
                covered[o.index()] = true;
                let nd = plan.node(o);
                stack.extend(nd.inputs.iter().copied());
                stack.extend(nd.broadcasts.iter().map(|(_, b)| *b));
            }
            // The closure must be closed: an interior operator feeding a
            // consumer outside it would leave that consumer unwired when
            // the whole closure collapses into one execution operator.
            let closed = plan.operators().iter().filter(|m| !covered[m.id.index()]).all(|m| {
                m.inputs
                    .iter()
                    .chain(m.broadcasts.iter().map(|(_, b)| b))
                    .all(|inp| !covered[inp.index()] || *inp == node.id)
            });
            if !closed {
                continue;
            }
            // Dataflow order; input-closedness makes covers[0] a source.
            let covers: Vec<OperatorId> =
                topo.iter().copied().filter(|o| covered[o.index()]).collect();
            debug_assert!(plan.node(covers[0]).inputs.is_empty());
            debug_assert_eq!(*covers.last().unwrap(), node.id);
            let exec = std::sync::Arc::new(crate::cache::CachedSource::new(hit, fp));
            by_head[covers[0].index()].push(cands.len());
            cands.push(Candidate { covers, exec });
        }
    }

    // --- platform bitmask order ------------------------------------------
    let mut platforms: Vec<PlatformId> = Vec::new();
    for c in &cands {
        let p = c.exec.platform();
        if p != CONTROL && !platforms.contains(&p) {
            platforms.push(p);
        }
    }
    assert!(platforms.len() <= 32, "too many platforms for bitmask");

    // --- cost annotation --------------------------------------------------
    let mut time_ms = Vec::with_capacity(cands.len());
    let mut time_iv = Vec::with_capacity(cands.len());
    for c in &cands {
        let head = plan.node(c.covers[0]);
        let tail = c.output_op();
        let iter = estimates.iter_factor[tail.index()];
        let (lo_cards, hi_cards, conf, avg_bytes) = if head.inputs.is_empty() {
            // Source candidates: pass the estimated output cardinality of
            // every covered operator, in chain order — a composite
            // scan+filter then sees both the table size (covers[0]) and the
            // matched-row estimate (tail). See `ExecutionOperator::load`.
            let mut lo = Vec::new();
            let mut hi = Vec::new();
            let mut conf = 1.0f64;
            for &o in &c.covers {
                let e = estimates.out_card(o);
                lo.push(e.lo);
                hi.push(e.hi);
                conf = conf.min(e.conf);
            }
            (lo, hi, conf, estimates.avg_bytes[tail.index()])
        } else {
            let mut lo = Vec::new();
            let mut hi = Vec::new();
            let mut conf = 1.0f64;
            let mut bytes = 0.0;
            for &inp in &head.inputs {
                let c = estimates.out_card(inp);
                lo.push(c.lo);
                hi.push(c.hi);
                conf = conf.min(c.conf);
                bytes += estimates.avg_bytes[inp.index()];
            }
            let bytes = bytes / head.inputs.len() as f64;
            (lo, hi, conf, bytes)
        };
        let profile = opt.profiles.get(c.exec.platform());
        // A NaN load (pathological calibration, e.g. a NaN UDF cost hint)
        // must lose to every finite alternative instead of poisoning the
        // interval algebra or panicking the enumerator.
        let sane = |t: f64| if t.is_nan() { f64::INFINITY } else { t };
        let t_lo = sane(c.exec.load(&lo_cards, avg_bytes, opt.model).to_ms(profile));
        let t_hi = sane(c.exec.load(&hi_cards, avg_bytes, opt.model).to_ms(profile));
        let (mut t_lo, mut t_hi) = if t_lo <= t_hi { (t_lo, t_hi) } else { (t_hi, t_lo) };
        // Loop bodies re-dispatch their stages every iteration: charge the
        // platform's stage-submission overhead per iteration (this is what
        // makes low-overhead engines win loop bodies — the paper's SGD
        // insight, Fig. 3(b)). Chains approximate stages.
        if iter > 1.0 && c.exec.platform() != CONTROL {
            t_lo += profile.stage_overhead_ms;
            t_hi += profile.stage_overhead_ms;
        }
        let iv = Interval::new(t_lo * iter, t_hi * iter, conf);
        time_iv.push(iv);
        time_ms.push(iv.geo_mean().max(0.0));
    }

    // --- consumer edges & movement pay steps ------------------------------
    let mut consumers: Vec<Vec<ConsumerEdge>> = vec![Vec::new(); n];
    for node in plan.operators() {
        for (slot, &inp) in node.inputs.iter().enumerate() {
            consumers[inp.index()].push(ConsumerEdge { op: node.id, slot: Some(slot) });
        }
        for (_, inp) in &node.broadcasts {
            consumers[inp.index()].push(ConsumerEdge { op: node.id, slot: None });
        }
    }
    let mut pay_at: Vec<Vec<OperatorId>> = vec![Vec::new(); n];
    for node in plan.operators() {
        let i = node.id.index();
        if consumers[i].is_empty() {
            continue;
        }
        let step = consumers[i]
            .iter()
            .map(|e| pos[e.op.index()])
            .chain(std::iter::once(pos[i]))
            .max()
            .unwrap();
        pay_at[step].push(node.id);
    }

    Ok(Inflated {
        estimates,
        topo,
        pos,
        cands,
        by_head,
        time_ms,
        time_iv,
        platforms,
        consumers,
        pay_at,
    })
}

impl Inflated {
    fn platform_bit(&self, p: PlatformId) -> u32 {
        if p == CONTROL {
            return 0;
        }
        match self.platforms.iter().position(|&q| q == p) {
            Some(i) => 1 << i,
            None => 0,
        }
    }

    /// Settle the data-movement cost of producer `p` in a partial where all
    /// of `p`'s consumers have chosen alternatives. Returns `None` when no
    /// conversion tree exists (the partial is infeasible).
    fn movement_cost(
        &self,
        opt: &Optimizer<'_>,
        graph: &ConversionGraph,
        partial: &Partial,
        p: OperatorId,
    ) -> Option<f64> {
        let cp = partial.choice[p.index()];
        debug_assert_ne!(cp, UNSET);
        let cand = &self.cands[cp as usize];
        if cand.output_op() != p {
            // Chain-internal producer: its consumers are inside the same
            // execution operator; no movement.
            return Some(0.0);
        }
        let out_kind = cand.exec.output_kind();
        let producer_platform = cand.exec.platform();
        let mut consumer_kinds: Vec<Vec<ChannelKind>> = Vec::new();
        let mut stage_overhead = 0.0;
        let mut iter_mult = self.estimates.iter_factor[p.index()];
        for edge in &self.consumers[p.index()] {
            let cc = partial.choice[edge.op.index()];
            debug_assert_ne!(cc, UNSET, "consumer not yet assigned at pay step");
            if cc == cp {
                continue; // internal to the same candidate
            }
            let ccand = &self.cands[cc as usize];
            let kinds = match edge.slot {
                Some(slot) => {
                    debug_assert_eq!(
                        ccand.covers[0], edge.op,
                        "regular edges must enter a chain at its head"
                    );
                    ccand.exec.accepted_inputs(slot)
                }
                None => ccand.exec.broadcast_input_kinds(),
            };
            let consumer_platform = ccand.exec.platform();
            if consumer_platform != producer_platform
                && consumer_platform != CONTROL
                && producer_platform != CONTROL
            {
                // Crossing platforms fragments both sides' stages: the
                // consumer's platform submits a new stage, and the
                // producer's platform must be re-entered later (it pays
                // again when the flow returns — which it always does inside
                // loops, and usually does around joins).
                stage_overhead += opt.profiles.get(consumer_platform).stage_overhead_ms
                    + opt.profiles.get(producer_platform).stage_overhead_ms;
            }
            iter_mult = iter_mult.max(self.estimates.iter_factor[edge.op.index()]);
            consumer_kinds.push(kinds);
        }
        if consumer_kinds.is_empty() {
            return Some(0.0);
        }
        let card = self.estimates.out_card(p).geo_mean().max(0.0);
        let avg_bytes = self.estimates.avg_bytes[p.index()];
        let tree =
            graph.best_tree(out_kind, &consumer_kinds, card, avg_bytes, opt.profiles, opt.model)?;
        // Every external edge materializes an intermediate channel — a small
        // per-quantum handoff cost that makes operator fusion (chains)
        // strictly cheaper than equivalent sequences of single operators.
        let handoff_alpha = opt.model.get("core.handoff.alpha", 25.0);
        let producer_profile = opt.profiles.get(producer_platform);
        let handoff_ms =
            consumer_kinds.len() as f64 * card * handoff_alpha / producer_profile.cycles_per_ms;
        Some((tree.cost_ms + stage_overhead + handoff_ms) * iter_mult)
    }

    /// Boundary signature of a partial after topo step `k` (inclusive).
    fn signature(&self, partial: &Partial, k: usize) -> Vec<(u32, u32)> {
        let mut sig: Vec<(u32, u32)> = Vec::new();
        for (i, &c) in partial.choice.iter().enumerate() {
            if c == UNSET {
                continue;
            }
            let processed = self.pos[i] <= k;
            let open_producer = processed && {
                // movement not yet settled?
                let id = OperatorId(i as u32);
                !self.consumers[i].is_empty()
                    && self.consumers[i]
                        .iter()
                        .map(|e| self.pos[e.op.index()])
                        .chain(std::iter::once(self.pos[i]))
                        .max()
                        .unwrap()
                        > k
                    && self.cands[c as usize].output_op() == id
            };
            let pre_covered = !processed;
            if open_producer || pre_covered {
                sig.push((i as u32, c));
            }
        }
        sig.push((u32::MAX, partial.mask));
        sig
    }
}

pub(super) fn enumerate(
    opt: &Optimizer<'_>,
    plan: &RheemPlan,
    estimates: Estimates,
    graph: &ConversionGraph,
) -> Result<OptimizedPlan> {
    enumerate_with(opt, plan, estimates, graph, true)
}

pub(super) fn enumerate_with(
    opt: &Optimizer<'_>,
    plan: &RheemPlan,
    estimates: Estimates,
    graph: &ConversionGraph,
    prune: bool,
) -> Result<OptimizedPlan> {
    let inf = build_inflated(opt, plan, estimates)?;
    let n = plan.len();
    let mut stats = EnumerationStats { candidates: inf.cands.len(), ..Default::default() };

    let mut frontier: Vec<Partial> = vec![Partial { choice: vec![UNSET; n], cost: 0.0, mask: 0 }];

    for (k, &op) in inf.topo.iter().enumerate() {
        let mut next: Vec<Partial> = Vec::new();
        for partial in frontier.drain(..) {
            if partial.choice[op.index()] != UNSET {
                // Already covered by an earlier chain choice.
                next.push(partial);
                continue;
            }
            for &ci in &inf.by_head[op.index()] {
                let cand = &inf.cands[ci];
                // All covered ops must be free in this partial.
                if cand.covers.iter().any(|o| partial.choice[o.index()] != UNSET) {
                    continue;
                }
                let mut p2 = partial.clone();
                for o in &cand.covers {
                    p2.choice[o.index()] = ci as u32;
                }
                p2.cost += inf.time_ms[ci];
                let bit = inf.platform_bit(cand.exec.platform());
                if bit != 0 && p2.mask & bit == 0 {
                    p2.mask |= bit;
                    p2.cost += opt.profiles.get(cand.exec.platform()).startup_ms;
                }
                stats.partials_created += 1;
                next.push(p2);
            }
        }
        if next.is_empty() {
            return Err(RheemError::Optimizer(format!(
                "no feasible execution alternative for {} (conflicting chain choices?)",
                plan.node(op).label()
            )));
        }

        // Settle data movement that became payable at this step.
        let mut settled: Vec<Partial> = Vec::with_capacity(next.len());
        'partials: for mut partial in next {
            for &p in &inf.pay_at[k] {
                match inf.movement_cost(opt, graph, &partial, p) {
                    Some(ms) => partial.cost += ms,
                    None => continue 'partials, // unreachable channels: infeasible
                }
            }
            settled.push(partial);
        }
        if settled.is_empty() {
            return Err(RheemError::Optimizer(format!(
                "no conversion path exists for the outputs settled at {}",
                plan.node(op).label()
            )));
        }

        // Lossless pruning by boundary signature.
        if prune {
            let mut best: HashMap<Vec<(u32, u32)>, Partial> = HashMap::new();
            for partial in settled {
                let sig = inf.signature(&partial, k);
                match best.get_mut(&sig) {
                    // Keep the winner under a *total* order (total_cmp sorts
                    // NaN costs last instead of panicking) with the choice
                    // vector as tie-break, so equal-cost partials survive
                    // pruning identically regardless of arrival order.
                    Some(cur) => {
                        stats.partials_pruned += 1;
                        if partial
                            .cost
                            .total_cmp(&cur.cost)
                            .then_with(|| partial.choice.cmp(&cur.choice))
                            .is_lt()
                        {
                            *cur = partial;
                        }
                    }
                    None => {
                        best.insert(sig, partial);
                    }
                }
            }
            frontier = best.into_values().collect();
        } else {
            frontier = settled;
        }
    }

    // The frontier is rebuilt from a HashMap, so its order is unstable;
    // break cost ties on the choice vector (which identifies a partial
    // uniquely) to make the selected plan independent of iteration order,
    // and use total_cmp so a NaN-costed alternative loses instead of
    // panicking the comparator.
    let best = frontier
        .into_iter()
        .min_by(|a, b| a.cost.total_cmp(&b.cost).then_with(|| a.choice.cmp(&b.choice)))
        .ok_or_else(|| RheemError::Optimizer("enumeration produced no plan".into()))?;

    // Assemble the optimized plan.
    let choice: Vec<usize> = best.choice.iter().map(|&c| c as usize).collect();
    let mut platforms: Vec<PlatformId> = Vec::new();
    let mut est_interval = Interval::point(0.0);
    let mut counted: Vec<bool> = vec![false; inf.cands.len()];
    for &c in &choice {
        if !counted[c] {
            counted[c] = true;
            est_interval = est_interval.add(&inf.time_iv[c]);
            let p = inf.cands[c].exec.platform();
            if p != CONTROL && !platforms.contains(&p) {
                platforms.push(p);
            }
        }
    }

    Ok(OptimizedPlan {
        candidates: inf.cands,
        choice,
        estimates: inf.estimates,
        est_ms: best.cost,
        est_interval,
        platforms,
        stats,
    })
}
