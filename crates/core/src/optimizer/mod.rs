//! The cross-platform optimizer (§4.1).
//!
//! Four phases, mirroring the paper: **plan inflation** (apply all operator
//! mappings, keeping every alternative), **cardinality & cost annotation**
//! (interval estimates), **data movement planning** (minimal conversion
//! trees over the channel conversion graph), and **plan enumeration** (the
//! Join/Prune algebra with lossless boundary-signature pruning, including
//! data-movement and platform start-up costs).

mod enumerate;

pub use enumerate::EnumerationStats;

use crate::cardinality::{Estimates, Estimator};
use crate::cost::{CostModel, Interval};
use crate::error::{Result, RheemError};
use crate::mapping::Candidate;
use crate::movement::ConversionGraph;
use crate::plan::{OperatorId, RheemPlan};
use crate::platform::{PlatformId, Profiles};
use crate::registry::Registry;

/// The optimizer. Borrowers of registry/profiles/model so jobs can share a
/// context cheaply.
pub struct Optimizer<'a> {
    /// Mappings, channels, conversions.
    pub registry: &'a Registry,
    /// Virtual-cluster profiles.
    pub profiles: &'a Profiles,
    /// Tunable cost-model parameters.
    pub model: &'a CostModel,
    /// When set, restrict every mappable operator to this platform (used by
    /// the platform-independence experiments of §6.2 and by RheemLatin's
    /// `with platform` clause at plan granularity).
    pub forced_platform: Option<PlatformId>,
    /// Platforms excluded from enumeration (failover: a platform that
    /// exhausted its retry budget is blacklisted for the rest of the job;
    /// the driver's control operators are never excluded).
    pub blacklist: Vec<PlatformId>,
    /// Cross-job result cache. When set, inflation injects zero-upstream
    /// [`crate::cache::CachedSource`] candidates for subplan-fingerprint
    /// hits, letting enumeration choose reuse when it beats recomputation.
    pub cache: Option<std::sync::Arc<crate::cache::ResultCache>>,
    /// Cache namespace lookups are scoped to (multi-tenant isolation).
    pub cache_ns: crate::cache::Namespace,
    /// Fall back to the shared namespace on a miss in `cache_ns`.
    pub cache_shared_read: bool,
    /// Fingerprint overrides for cache lookups: pins rewritten operators
    /// (progressive re-planning boundaries) to the subplan fingerprints
    /// they carried in the original plan.
    pub fp_overrides: std::collections::HashMap<OperatorId, crate::cache::Fingerprint>,
}

/// The result of optimization: one execution alternative chosen per plan
/// operator (chains share a choice), plus the annotations needed by the
/// executor and the progressive optimizer.
pub struct OptimizedPlan {
    /// Candidate arena.
    pub candidates: Vec<Candidate>,
    /// Per operator: index into `candidates` of the covering choice.
    pub choice: Vec<usize>,
    /// Cardinality annotations used.
    pub estimates: Estimates,
    /// Scalar enumeration cost of the chosen plan (virtual ms).
    pub est_ms: f64,
    /// Interval estimate of total runtime.
    pub est_interval: Interval,
    /// Platforms the plan uses (excluding the driver).
    pub platforms: Vec<PlatformId>,
    /// Enumeration statistics (for the pruning ablation).
    pub stats: EnumerationStats,
}

impl OptimizedPlan {
    /// The candidate covering operator `id`.
    pub fn candidate_of(&self, id: OperatorId) -> &Candidate {
        &self.candidates[self.choice[id.index()]]
    }

    /// Platform chosen for operator `id`.
    pub fn platform_of(&self, id: OperatorId) -> PlatformId {
        self.candidate_of(id).exec.platform()
    }
}

impl<'a> Optimizer<'a> {
    /// New optimizer over a context's registry/profiles/model.
    pub fn new(registry: &'a Registry, profiles: &'a Profiles, model: &'a CostModel) -> Self {
        Self {
            registry,
            profiles,
            model,
            forced_platform: None,
            blacklist: Vec::new(),
            cache: None,
            cache_ns: crate::cache::Namespace::SHARED,
            cache_shared_read: true,
            fp_overrides: std::collections::HashMap::new(),
        }
    }

    /// Optimize a plan end-to-end: validate, estimate, inflate, enumerate.
    pub fn optimize(&self, plan: &RheemPlan, estimator: &Estimator) -> Result<OptimizedPlan> {
        plan.validate()?;
        let estimates = estimator.estimate(plan)?;
        self.optimize_with_estimates(plan, estimates)
    }

    /// Optimize with externally supplied estimates (the progressive
    /// optimizer re-enters here with measured cardinalities, §4.4).
    pub fn optimize_with_estimates(
        &self,
        plan: &RheemPlan,
        estimates: Estimates,
    ) -> Result<OptimizedPlan> {
        let graph = ConversionGraph::from_registry(self.registry);
        enumerate::enumerate(self, plan, estimates, &graph)
    }

    /// Enumerate without pruning (exhaustive baseline for the ablation
    /// bench); identical output plan, exponentially more partials.
    pub fn optimize_exhaustive(
        &self,
        plan: &RheemPlan,
        estimator: &Estimator,
    ) -> Result<OptimizedPlan> {
        plan.validate()?;
        let estimates = estimator.estimate(plan)?;
        let graph = ConversionGraph::from_registry(self.registry);
        enumerate::enumerate_with(self, plan, estimates, &graph, false)
    }

    pub(crate) fn err_no_candidates(plan: &RheemPlan, id: OperatorId) -> RheemError {
        RheemError::Optimizer(format!(
            "no execution operator available for {} on any registered platform",
            plan.node(id).label()
        ))
    }
}
