//! The user-facing entry point: [`RheemContext`].
//!
//! Mirrors the paper's Fig. 5 flow: applications submit a Rheem plan (1);
//! the cross-platform optimizer compiles it into an execution plan (2); the
//! executor dispatches stages to the platform drivers (3); the monitor
//! collects statistics (4); and the progressive optimizer re-optimizes on
//! cardinality mismatches (5).

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::builtin::register_builtins;
use crate::cache::ResultCache;
use crate::cardinality::Estimator;
use crate::cost::{CostModel, Interval};
use crate::error::{Result, RheemError};
use crate::execplan::{build_exec_plan, ExecPlan};
use crate::executor::{ExecConfig, ExplorationBuffer};
use crate::learner::{samples_from_trace, StageSample};
use crate::metrics::MetricsRegistry;
use crate::monitor::{check_cardinality, Health, Monitor};
use crate::optimizer::{OptimizedPlan, Optimizer};
use crate::plan::{OperatorId, RheemPlan};
use crate::platform::{Platform, PlatformId, Profiles};
use crate::progressive::run_progressive;
use crate::registry::Registry;
use crate::trace::JobTrace;
use crate::value::Dataset;

/// Job-level metrics reported with every result.
#[derive(Clone, Debug)]
pub struct JobMetrics {
    /// Virtual cluster time of the job (the figure the benchmarks report).
    pub virtual_ms: f64,
    /// Real local wall time.
    pub real_ms: f64,
    /// Progressive re-optimizations performed.
    pub replans: u32,
    /// Fault-tolerance retries absorbed (faults survived in place).
    pub retries: u32,
    /// Cross-platform failovers performed (retry budget exhausted on a
    /// platform; the remainder re-planned over the survivors, §7.1).
    pub failovers: u32,
    /// Platforms that executed at least one stage.
    pub platforms: Vec<PlatformId>,
    /// The optimizer's cost estimate for the chosen plan.
    pub est_ms: f64,
}

/// The output of one job.
pub struct JobResult {
    sinks: HashMap<OperatorId, Dataset>,
    /// Metrics of the run.
    pub metrics: JobMetrics,
    /// Exploration taps (exploratory mode only).
    pub exploration: ExplorationBuffer,
    /// Span tree + per-operator profiles (when [`ExecConfig::tracing`] is
    /// on, the default).
    pub trace: Option<JobTrace>,
}

impl JobResult {
    /// Output of the sink created by [`crate::plan::DataQuanta::collect`].
    pub fn sink(&self, id: OperatorId) -> Result<&Dataset> {
        self.sinks
            .get(&id)
            .ok_or_else(|| RheemError::Execution(format!("no output recorded for sink {id:?}")))
    }

    /// All sink outputs.
    pub fn sinks(&self) -> &HashMap<OperatorId, Dataset> {
        &self.sinks
    }
}

/// Per-job tenancy scope for [`RheemContext::execute_scoped`]: who the job
/// runs for, which cache namespace it reads/publishes, and which stage gate
/// (if any) bounds its concurrent stage work. The default scope reproduces
/// [`RheemContext::execute`]'s single-tenant behaviour except for the
/// private per-job monitor.
#[derive(Clone, Debug)]
pub struct JobScope {
    /// Tenant name (labels metrics, stamps the job trace span).
    pub tenant: Option<String>,
    /// Cache namespace lookups/publishes are scoped to.
    pub cache_ns: crate::cache::Namespace,
    /// Fall back to the shared namespace on a tenant-namespace miss.
    pub cache_shared_read: bool,
    /// Fair-share stage gate to execute under, if any.
    pub stage_gate: Option<crate::service::TenantGate>,
    /// Service job id stamped on flight-recorder events (lets the
    /// watchdog group stage commits per job).
    pub job: Option<u64>,
}

impl Default for JobScope {
    fn default() -> Self {
        Self {
            tenant: None,
            cache_ns: crate::cache::Namespace::SHARED,
            cache_shared_read: true,
            stage_gate: None,
            job: None,
        }
    }
}

/// The Rheem context: registered platforms, cost model, profiles, executor
/// configuration and monitor.
pub struct RheemContext {
    registry: Registry,
    profiles: Profiles,
    model: CostModel,
    config: ExecConfig,
    monitor: Monitor,
    metrics: MetricsRegistry,
    cache: Option<Arc<ResultCache>>,
    /// Always-on flight recorder ([`crate::obs`]); `None` only after an
    /// explicit [`RheemContext::set_recorder`] ablation.
    recorder: Option<Arc<crate::obs::FlightRecorder>>,
    /// Force every mappable operator onto one platform (platform-
    /// independence experiments; `None` = free choice).
    pub forced_platform: Option<PlatformId>,
}

impl Default for RheemContext {
    fn default() -> Self {
        Self::new()
    }
}

impl RheemContext {
    /// A context with no platforms registered (only driver built-ins).
    pub fn new() -> Self {
        let mut registry = Registry::new();
        register_builtins(&mut registry);
        let recorder = Some(Arc::new(crate::obs::FlightRecorder::default()));
        let cache = ResultCache::from_env();
        if let (Some(c), Some(r)) = (&cache, &recorder) {
            c.set_recorder(Some(Arc::clone(r)));
        }
        Self {
            registry,
            profiles: Profiles::paper_testbed(),
            model: CostModel::new(),
            config: ExecConfig::default(),
            monitor: Monitor::new(),
            metrics: MetricsRegistry::new(),
            cache,
            recorder,
            forced_platform: None,
        }
    }

    /// Register a platform (builder style).
    pub fn with_platform(mut self, platform: &dyn Platform) -> Self {
        self.register_platform(platform);
        self
    }

    /// Enable or disable operator fusion (builder style). With fusion off,
    /// the optimizer only considers 1-to-1 candidates: every operator runs
    /// standalone — the ablation baseline for the fused pipelines.
    pub fn with_fusion(mut self, on: bool) -> Self {
        self.registry.set_fusion(on);
        self
    }

    /// Enable or disable columnar batch execution (builder style; see
    /// [`crate::batch`]). Overrides the `RHEEM_BATCH` environment setting —
    /// tests use this to A/B the vectorized and row interpreters without
    /// env races. Plan choice is unaffected: the cost model's vectorization
    /// discount depends only on static chain vectorizability.
    pub fn with_batch(mut self, on: bool) -> Self {
        self.config.batch = on;
        self
    }

    /// Enable the cross-job result cache with a byte budget (builder
    /// style). Overrides the `RHEEM_CACHE` environment setting.
    pub fn with_cache(mut self, budget_bytes: u64) -> Self {
        self.set_cache(Some(Arc::new(ResultCache::new(budget_bytes))));
        self
    }

    /// Share an existing cache handle with this context (builder style) —
    /// how several contexts of one interactive session reuse each other's
    /// intermediate results.
    pub fn with_shared_cache(mut self, cache: Arc<ResultCache>) -> Self {
        self.set_cache(Some(cache));
        self
    }

    /// The cross-job result cache, when enabled.
    pub fn cache(&self) -> Option<&Arc<ResultCache>> {
        self.cache.as_ref()
    }

    /// Replace or disable the cross-job result cache. The context's flight
    /// recorder follows the cache handle.
    pub fn set_cache(&mut self, cache: Option<Arc<ResultCache>>) {
        if let Some(c) = &cache {
            c.set_recorder(self.recorder.clone());
        }
        self.cache = cache;
    }

    /// The context's flight recorder ([`crate::obs`]), unless ablated.
    pub fn recorder(&self) -> Option<&Arc<crate::obs::FlightRecorder>> {
        self.recorder.as_ref()
    }

    /// Replace or disable (`None`) the flight recorder — the ablation knob
    /// the observability bench uses to measure recorder overhead. The
    /// attached cache's recorder hook follows.
    pub fn set_recorder(&mut self, recorder: Option<Arc<crate::obs::FlightRecorder>>) {
        if let Some(c) = &self.cache {
            c.set_recorder(recorder.clone());
        }
        self.recorder = recorder;
    }

    /// Register a platform.
    pub fn register_platform(&mut self, platform: &dyn Platform) {
        self.registry.add_platform(platform.id());
        platform.register(&mut self.registry);
    }

    /// The extension registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Mutable registry access (plug custom operators/mappings, §5).
    pub fn registry_mut(&mut self) -> &mut Registry {
        &mut self.registry
    }

    /// Platform profiles.
    pub fn profiles(&self) -> &Profiles {
        &self.profiles
    }

    /// Mutable profiles (calibration).
    pub fn profiles_mut(&mut self) -> &mut Profiles {
        &mut self.profiles
    }

    /// The cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.model
    }

    /// Mutable cost model (apply learned parameters).
    pub fn cost_model_mut(&mut self) -> &mut CostModel {
        &mut self.model
    }

    /// Executor configuration.
    pub fn config(&self) -> &ExecConfig {
        &self.config
    }

    /// Mutable executor configuration.
    pub fn config_mut(&mut self) -> &mut ExecConfig {
        &mut self.config
    }

    /// The monitor (accumulates stage statistics across jobs; feed it to
    /// the cost learner).
    pub fn monitor(&self) -> &Monitor {
        &self.monitor
    }

    /// The metrics registry (counters + virtual-time histograms accumulated
    /// across jobs; snapshot as JSON or Prometheus text).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    fn estimator(&self) -> Estimator {
        let mut e = Estimator::new();
        for s in self.registry.source_estimators() {
            e.add_source_estimator(Arc::clone(s));
        }
        e
    }

    /// Optimize a plan without executing it (inspection / `explain`).
    pub fn optimize(&self, plan: &RheemPlan) -> Result<OptimizedPlan> {
        let mut optimizer = Optimizer::new(&self.registry, &self.profiles, &self.model);
        optimizer.forced_platform = self.forced_platform;
        optimizer.cache = self.cache.clone();
        optimizer.optimize(plan, &self.estimator())
    }

    /// Build the executable plan for inspection.
    pub fn compile(&self, plan: &RheemPlan) -> Result<(OptimizedPlan, ExecPlan)> {
        let opt = self.optimize(plan)?;
        let eplan = build_exec_plan(plan, &opt, &self.registry, &self.profiles, &self.model)?;
        Ok((opt, eplan))
    }

    /// Human-readable description of the chosen execution plan.
    pub fn explain(&self, plan: &RheemPlan) -> Result<String> {
        let (opt, eplan) = self.compile(plan)?;
        Ok(format!(
            "estimated cost: {:.1} ms (virtual)\nplatforms: {:?}\n{}",
            opt.est_ms,
            opt.platforms,
            eplan.describe()
        ))
    }

    /// Execute a plan end-to-end (Algorithm 1).
    pub fn execute(&self, plan: &RheemPlan) -> Result<JobResult> {
        self.execute_with(plan, &self.config)
    }

    /// Execute a plan under a multi-tenant scope (see
    /// [`crate::service::JobService`]): tenant-scoped cache namespace,
    /// optional stage gate, per-tenant metric labels, and — crucially for
    /// concurrent submissions — a *private* monitor per job, merged into
    /// the context's monitor at completion. Without the private monitor,
    /// two concurrent jobs would cross-contaminate retry/replan deltas and
    /// phase stamps (the bug `execute_with`'s before/after delta has when
    /// racing); with it, each job's [`JobMetrics`] reflects exactly its own
    /// execution, and the shared monitor still ends up with every record.
    pub fn execute_scoped(&self, plan: &RheemPlan, scope: &JobScope) -> Result<JobResult> {
        let mut config = self.config.clone();
        config.tenant = scope.tenant.clone();
        config.cache_ns = scope.cache_ns;
        config.cache_shared_read = scope.cache_shared_read;
        config.stage_gate = scope.stage_gate.clone();
        config.recorder = self.recorder.clone();
        config.job = scope.job;
        let job_monitor = Monitor::new();
        let outcome = match run_progressive(
            plan,
            &self.registry,
            &self.profiles,
            &self.model,
            || self.estimator(),
            &config,
            &job_monitor,
            self.forced_platform,
            self.cache.clone(),
        ) {
            Ok(o) => o,
            Err(e) => {
                self.monitor.merge(&job_monitor);
                return Err(e);
            }
        };
        let result = JobResult {
            sinks: outcome.sink_data,
            metrics: JobMetrics {
                virtual_ms: outcome.virtual_ms,
                real_ms: outcome.real_ms,
                replans: outcome.replans,
                retries: job_monitor.retries(),
                failovers: outcome.failovers,
                platforms: outcome.platforms,
                est_ms: outcome.est_ms,
            },
            exploration: outcome.exploration,
            trace: outcome.trace,
        };
        self.monitor.merge(&job_monitor);
        self.record_job_metrics(&result);
        // Cache counters publish the cache's own cumulative stats
        // monotonically instead of racing read-modify-write deltas.
        if let Some(c) = &self.cache {
            let s = c.stats();
            self.metrics.set_counter_max("rheem_cache_hits_total", s.hits);
            self.metrics.set_counter_max("rheem_cache_misses_total", s.misses);
            self.metrics.set_counter_max("rheem_cache_inserts_total", s.inserts);
            self.metrics.set_counter_max("rheem_cache_evictions_total", s.evictions);
            self.metrics.set_counter_max("rheem_cache_spills_total", s.spills);
            self.metrics.set_counter_max("rheem_cache_promotions_total", s.promotions);
            self.metrics.set_gauge("rheem_cache_spilled_bytes", s.spilled_bytes as f64);
        }
        if let Some(tenant) = &scope.tenant {
            let m = &result.metrics;
            self.metrics.inc(&format!("rheem_jobs_total{{tenant=\"{tenant}\"}}"), 1);
            self.metrics
                .inc(&format!("rheem_replans_total{{tenant=\"{tenant}\"}}"), m.replans as u64);
            self.metrics
                .inc(&format!("rheem_retries_total{{tenant=\"{tenant}\"}}"), m.retries as u64);
            self.metrics
                .inc(&format!("rheem_failovers_total{{tenant=\"{tenant}\"}}"), m.failovers as u64);
            if let Some(c) = &self.cache {
                let st = c.stats_of(scope.cache_ns);
                self.metrics.set_counter_max(
                    &format!("rheem_cache_hits_total{{tenant=\"{tenant}\"}}"),
                    st.hits,
                );
                self.metrics.set_counter_max(
                    &format!("rheem_cache_misses_total{{tenant=\"{tenant}\"}}"),
                    st.misses,
                );
                self.metrics.set_counter_max(
                    &format!("rheem_cache_inserts_total{{tenant=\"{tenant}\"}}"),
                    st.inserts,
                );
                self.metrics.set_counter_max(
                    &format!("rheem_cache_evictions_total{{tenant=\"{tenant}\"}}"),
                    st.evictions,
                );
                self.metrics.set_counter_max(
                    &format!("rheem_cache_spills_total{{tenant=\"{tenant}\"}}"),
                    st.spills,
                );
                self.metrics.set_counter_max(
                    &format!("rheem_cache_promotions_total{{tenant=\"{tenant}\"}}"),
                    st.promotions,
                );
                self.metrics.set_gauge(
                    &format!("rheem_cache_bytes{{tenant=\"{tenant}\"}}"),
                    st.bytes as f64,
                );
                self.metrics.set_gauge(
                    &format!("rheem_cache_spilled_bytes{{tenant=\"{tenant}\"}}"),
                    st.spilled_bytes as f64,
                );
                self.metrics.set_gauge(
                    &format!("rheem_cache_entries{{tenant=\"{tenant}\"}}"),
                    st.entries as f64,
                );
                if let Some(q) = c.quota_of(scope.cache_ns) {
                    self.metrics.set_gauge(
                        &format!("rheem_cache_quota_bytes{{tenant=\"{tenant}\"}}"),
                        q as f64,
                    );
                }
            }
        }
        Ok(result)
    }

    /// Execute a plan with an explicit executor configuration (used by
    /// [`RheemContext::explain_analyze`] to force tracing on).
    fn execute_with(&self, plan: &RheemPlan, config: &ExecConfig) -> Result<JobResult> {
        // The monitor accumulates across jobs; report this job's delta.
        let retries_before = self.monitor.retries();
        let cache_before = self.cache.as_ref().map(|c| c.stats());
        let mut config = config.clone();
        if config.recorder.is_none() {
            config.recorder = self.recorder.clone();
        }
        let outcome = run_progressive(
            plan,
            &self.registry,
            &self.profiles,
            &self.model,
            || self.estimator(),
            &config,
            &self.monitor,
            self.forced_platform,
            self.cache.clone(),
        )?;
        let result = JobResult {
            sinks: outcome.sink_data,
            metrics: JobMetrics {
                virtual_ms: outcome.virtual_ms,
                real_ms: outcome.real_ms,
                replans: outcome.replans,
                retries: self.monitor.retries() - retries_before,
                failovers: outcome.failovers,
                platforms: outcome.platforms,
                est_ms: outcome.est_ms,
            },
            exploration: outcome.exploration,
            trace: outcome.trace,
        };
        self.record_job_metrics(&result);
        if let (Some(c), Some(before)) = (&self.cache, cache_before) {
            let after = c.stats();
            self.metrics.inc("rheem_cache_hits_total", after.hits - before.hits);
            self.metrics.inc("rheem_cache_misses_total", after.misses - before.misses);
            self.metrics.inc("rheem_cache_inserts_total", after.inserts - before.inserts);
            self.metrics.inc("rheem_cache_evictions_total", after.evictions - before.evictions);
            self.metrics.inc("rheem_cache_spills_total", after.spills - before.spills);
            self.metrics.inc("rheem_cache_promotions_total", after.promotions - before.promotions);
        }
        Ok(result)
    }

    /// Feed the registry from a finished job: job-level counters plus
    /// per-stage and per-operator virtual-time histograms from the trace.
    fn record_job_metrics(&self, result: &JobResult) {
        let m = &result.metrics;
        self.metrics.inc("rheem_jobs_total", 1);
        self.metrics.inc("rheem_replans_total", m.replans as u64);
        self.metrics.inc("rheem_retries_total", m.retries as u64);
        self.metrics.inc("rheem_failovers_total", m.failovers as u64);
        self.metrics.observe("rheem_job_virtual_ms", m.virtual_ms);
        if let Some(trace) = &result.trace {
            for r in trace.runs.iter().filter(|r| !r.superseded) {
                self.metrics.inc("rheem_stage_runs_total", 1);
                self.metrics.observe("rheem_stage_virtual_ms", r.virtual_ms);
            }
            for p in trace.profiles_effective().filter(|p| !p.is_pseudo()) {
                self.metrics.inc("rheem_operator_runs_total", 1);
                self.metrics.inc("rheem_tuples_out_total", p.tuples_out);
                self.metrics.observe("rheem_operator_virtual_ms", p.virtual_ms);
            }
        }
    }

    /// EXPLAIN ANALYZE: execute the plan with tracing forced on and join the
    /// optimizer's per-operator cardinality intervals against the measured
    /// profiles. Estimate misses beyond the configured cardinality-health
    /// tau are flagged, and the same rows feed the cost learner via
    /// [`ExplainAnalysis::samples`].
    pub fn explain_analyze(&self, plan: &RheemPlan) -> Result<ExplainAnalysis> {
        let opt = self.optimize(plan)?;
        let mut config = self.config.clone();
        config.tracing = true;
        let result = self.execute_with(plan, &config)?;
        let trace = result.trace.clone().expect("tracing forced on");
        let tau = self.config.mismatch_tau;
        let n_ops = plan.operators().len() as u32;

        // One row per (phase, exec node, chain position), aggregated over
        // repeated runs (loop iterations). Conversion nodes (no logical
        // operator) get a single row keyed on position 0.
        let mut order: Vec<(u32, usize, usize)> = Vec::new();
        let mut agg: HashMap<(u32, usize, usize), AnalyzeRow> = HashMap::new();
        for p in trace.profiles_effective().filter(|p| !p.is_pseudo()) {
            let members: Vec<Option<u32>> = if p.logical.is_empty() {
                vec![None]
            } else {
                p.logical.iter().copied().map(Some).collect()
            };
            for (pos, &lid) in members.iter().enumerate() {
                let key = (p.phase, p.node, pos);
                let row = agg.entry(key).or_insert_with(|| {
                    order.push(key);
                    // Logical ids of rewritten (phase > 1) plans do not name
                    // operators of the submitted plan; annotate those rows
                    // by id only.
                    let in_original = lid.is_some() && p.phase == 1 && lid.unwrap() < n_ops;
                    let op = lid.map(OperatorId);
                    AnalyzeRow {
                        op,
                        label: match (op, in_original) {
                            (Some(o), true) => plan.node(o).label(),
                            (Some(o), false) => format!("op{}", o.0),
                            (None, _) => p.name.clone(),
                        },
                        exec_name: p.name.clone(),
                        platform: p.platform.clone(),
                        est: in_original.then(|| opt.estimates.out_card(op.unwrap())),
                        measured_tuples: 0,
                        tuples_in: 0,
                        virtual_ms: 0.0,
                        runs: 0,
                        retries: 0,
                        fused: p.logical.len(),
                        chain_tail: pos + 1 == members.len(),
                        miss: false,
                        vec_rows: 0,
                        vec_batches: 0,
                        vec_steps: 0,
                        row_steps: 0,
                        exch_batches: 0,
                        exch_rows: 0,
                        exch_row_rows: 0,
                        fallback: None,
                    }
                });
                row.runs += 1;
                row.retries += p.retries;
                row.virtual_ms += p.virtual_ms;
                row.measured_tuples = p.tuples_out;
                row.tuples_in = p.tuples_in;
                row.vec_rows += p.vec_stats.rows;
                row.vec_batches += p.vec_stats.batches;
                row.vec_steps += p.vec_stats.vec_steps;
                row.row_steps += p.vec_stats.row_steps;
                row.exch_batches += p.vec_stats.exch_batches;
                row.exch_rows += p.vec_stats.exch_rows;
                row.exch_row_rows += p.vec_stats.exch_row_rows;
                if row.fallback.is_none() {
                    row.fallback = p.vec_stats.fallback;
                }
            }
        }
        let mut rows: Vec<AnalyzeRow> =
            order.into_iter().map(|k| agg.remove(&k).unwrap()).collect();
        for row in &mut rows {
            if let (true, Some(est)) = (row.chain_tail, row.est) {
                row.miss =
                    check_cardinality(est, row.measured_tuples as f64, tau) == Health::Mismatch;
            }
        }
        let samples = samples_from_trace(&trace);
        Ok(ExplainAnalysis { rows, metrics: result.metrics.clone(), trace, samples, tau })
    }
}

/// One EXPLAIN ANALYZE row: a logical operator (or channel-conversion
/// operator) with its estimated cardinality interval and measured profile.
#[derive(Clone, Debug)]
pub struct AnalyzeRow {
    /// Logical operator id (`None` for channel-conversion rows).
    pub op: Option<OperatorId>,
    /// Logical operator label (or execution-operator name for conversions).
    pub label: String,
    /// Execution operator that ran it (fused chains cover several rows).
    pub exec_name: String,
    /// Platform id string.
    pub platform: String,
    /// The optimizer's output-cardinality interval (`None` for conversions
    /// and for operators introduced by a progressive plan rewrite).
    pub est: Option<Interval>,
    /// Measured output tuples of the covering execution operator (for fused
    /// chain members this is the chain's output; see `fused`).
    pub measured_tuples: u64,
    /// Measured input tuples of the covering execution operator.
    pub tuples_in: u64,
    /// Virtual ms of the covering execution operator, summed over runs.
    pub virtual_ms: f64,
    /// Number of runs aggregated into this row (loop iterations).
    pub runs: u32,
    /// Retries absorbed across those runs.
    pub retries: u32,
    /// Length of the fused chain this operator ran in (0 for conversions,
    /// 1 for standalone).
    pub fused: usize,
    /// Whether this row is the tail of its execution operator's chain (the
    /// only position whose measured output is the operator's own).
    pub chain_tail: bool,
    /// Estimate miss: the measured cardinality left `[lo/tau, hi*tau]`.
    pub miss: bool,
    /// Rows the covering operator fed through vectorized column kernels
    /// ([`crate::batch`]), summed over runs. 0 in row mode.
    pub vec_rows: u64,
    /// Column batches the covering operator processed, summed over runs.
    pub vec_batches: u64,
    /// Fused steps executed vectorized, summed over runs.
    pub vec_steps: u32,
    /// Fused steps that fell back to the row interpreter (batch mode only).
    pub row_steps: u32,
    /// Column batches shipped through an exchange without row
    /// materialization (columnar shuffle), summed over runs.
    pub exch_batches: u64,
    /// Rows that crossed an exchange in columnar form, summed over runs.
    pub exch_rows: u64,
    /// Rows that crossed an exchange via the row fallback path while batch
    /// mode was on, summed over runs. 0 in row mode.
    pub exch_row_rows: u64,
    /// First reason the covering operator fell back to rows, if any.
    pub fallback: Option<crate::exec::Fallback>,
}

/// The result of [`RheemContext::explain_analyze`].
pub struct ExplainAnalysis {
    /// Per-operator rows in execution order.
    pub rows: Vec<AnalyzeRow>,
    /// Job metrics of the analyzed execution.
    pub metrics: JobMetrics,
    /// Full job trace of the analyzed execution.
    pub trace: JobTrace,
    /// Learner-ready stage samples extracted from the trace (the same rows
    /// [`crate::learner::CostLearner`] trains on).
    pub samples: Vec<StageSample>,
    /// Cardinality-health tolerance used for the miss flags.
    pub tau: f64,
}

impl ExplainAnalysis {
    /// Rows flagged as estimate misses.
    pub fn misses(&self) -> impl Iterator<Item = &AnalyzeRow> {
        self.rows.iter().filter(|r| r.miss)
    }
}

impl fmt::Display for ExplainAnalysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "EXPLAIN ANALYZE (virtual time; tau={})", self.tau)?;
        writeln!(
            f,
            "job: {:.3} ms virtual | est {:.3} ms | replans {} | retries {} | failovers {}",
            self.metrics.virtual_ms,
            self.metrics.est_ms,
            self.metrics.replans,
            self.metrics.retries,
            self.metrics.failovers
        )?;
        let platforms: Vec<&str> = self.metrics.platforms.iter().map(|p| p.0).collect();
        writeln!(f, "platforms: {}", platforms.join(", "))?;
        writeln!(
            f,
            "{:<34} {:<13} {:>22} {:>10} {:>10} {:>12} {:>5}  flags",
            "operator",
            "platform",
            "est.card [lo..hi]@conf",
            "measured",
            "in",
            "virtual ms",
            "runs"
        )?;
        for r in &self.rows {
            let est = match r.est {
                Some(e) => format!("[{:.0}..{:.0}]@{:.2}", e.lo, e.hi, e.conf),
                None => "-".to_string(),
            };
            let mut flags = Vec::new();
            if r.miss {
                flags.push("MISS".to_string());
            }
            if r.fused > 1 {
                flags.push(format!("fused({}/{})", r.fused, r.exec_name));
            }
            if r.op.is_none() {
                flags.push("conversion".to_string());
            }
            if r.retries > 0 {
                flags.push(format!("retries={}", r.retries));
            }
            if r.vec_steps > 0 || r.row_steps > 0 {
                // Which chain segments actually vectorized: steps through
                // column kernels vs. row-interpreter fallbacks, plus batch
                // geometry (rows per batch).
                let rpb = r.vec_rows.checked_div(r.vec_batches).unwrap_or(0);
                flags.push(format!(
                    "vec({}v/{}r,{}x{})",
                    r.vec_steps, r.row_steps, r.vec_batches, rpb
                ));
            }
            if r.exch_batches > 0 || r.exch_row_rows > 0 {
                // Exchange-level batch stats: batches/rows that crossed the
                // shuffle in columnar form vs. rows that fell back.
                flags.push(format!(
                    "xch({}b/{}c/{}r)",
                    r.exch_batches, r.exch_rows, r.exch_row_rows
                ));
            }
            if let Some(why) = r.fallback {
                flags.push(format!("fallback={}", why.as_str()));
            }
            writeln!(
                f,
                "{:<34} {:<13} {:>22} {:>10} {:>10} {:>12.3} {:>5}  {}",
                truncate(&r.label, 34),
                r.platform,
                est,
                r.measured_tuples,
                r.tuples_in,
                r.virtual_ms,
                r.runs,
                flags.join(" ")
            )?;
        }
        let misses = self.misses().count();
        writeln!(f, "estimate misses: {misses} | learner samples: {}", self.samples.len())
    }
}

fn truncate(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        s.to_string()
    } else {
        let cut: String = s.chars().take(max.saturating_sub(1)).collect();
        format!("{cut}…")
    }
}
