//! The user-facing entry point: [`RheemContext`].
//!
//! Mirrors the paper's Fig. 5 flow: applications submit a Rheem plan (1);
//! the cross-platform optimizer compiles it into an execution plan (2); the
//! executor dispatches stages to the platform drivers (3); the monitor
//! collects statistics (4); and the progressive optimizer re-optimizes on
//! cardinality mismatches (5).

use std::collections::HashMap;
use std::sync::Arc;

use crate::builtin::register_builtins;
use crate::cardinality::Estimator;
use crate::cost::CostModel;
use crate::error::{Result, RheemError};
use crate::execplan::{build_exec_plan, ExecPlan};
use crate::executor::{ExecConfig, ExplorationBuffer};
use crate::monitor::Monitor;
use crate::optimizer::{OptimizedPlan, Optimizer};
use crate::plan::{OperatorId, RheemPlan};
use crate::platform::{Platform, PlatformId, Profiles};
use crate::progressive::run_progressive;
use crate::registry::Registry;
use crate::value::Dataset;

/// Job-level metrics reported with every result.
#[derive(Clone, Debug)]
pub struct JobMetrics {
    /// Virtual cluster time of the job (the figure the benchmarks report).
    pub virtual_ms: f64,
    /// Real local wall time.
    pub real_ms: f64,
    /// Progressive re-optimizations performed.
    pub replans: u32,
    /// Fault-tolerance retries absorbed (faults survived in place).
    pub retries: u32,
    /// Cross-platform failovers performed (retry budget exhausted on a
    /// platform; the remainder re-planned over the survivors, §7.1).
    pub failovers: u32,
    /// Platforms that executed at least one stage.
    pub platforms: Vec<PlatformId>,
    /// The optimizer's cost estimate for the chosen plan.
    pub est_ms: f64,
}

/// The output of one job.
pub struct JobResult {
    sinks: HashMap<OperatorId, Dataset>,
    /// Metrics of the run.
    pub metrics: JobMetrics,
    /// Exploration taps (exploratory mode only).
    pub exploration: ExplorationBuffer,
}

impl JobResult {
    /// Output of the sink created by [`crate::plan::DataQuanta::collect`].
    pub fn sink(&self, id: OperatorId) -> Result<&Dataset> {
        self.sinks
            .get(&id)
            .ok_or_else(|| RheemError::Execution(format!("no output recorded for sink {id:?}")))
    }

    /// All sink outputs.
    pub fn sinks(&self) -> &HashMap<OperatorId, Dataset> {
        &self.sinks
    }
}

/// The Rheem context: registered platforms, cost model, profiles, executor
/// configuration and monitor.
pub struct RheemContext {
    registry: Registry,
    profiles: Profiles,
    model: CostModel,
    config: ExecConfig,
    monitor: Monitor,
    /// Force every mappable operator onto one platform (platform-
    /// independence experiments; `None` = free choice).
    pub forced_platform: Option<PlatformId>,
}

impl Default for RheemContext {
    fn default() -> Self {
        Self::new()
    }
}

impl RheemContext {
    /// A context with no platforms registered (only driver built-ins).
    pub fn new() -> Self {
        let mut registry = Registry::new();
        register_builtins(&mut registry);
        Self {
            registry,
            profiles: Profiles::paper_testbed(),
            model: CostModel::new(),
            config: ExecConfig::default(),
            monitor: Monitor::new(),
            forced_platform: None,
        }
    }

    /// Register a platform (builder style).
    pub fn with_platform(mut self, platform: &dyn Platform) -> Self {
        self.register_platform(platform);
        self
    }

    /// Enable or disable operator fusion (builder style). With fusion off,
    /// the optimizer only considers 1-to-1 candidates: every operator runs
    /// standalone — the ablation baseline for the fused pipelines.
    pub fn with_fusion(mut self, on: bool) -> Self {
        self.registry.set_fusion(on);
        self
    }

    /// Register a platform.
    pub fn register_platform(&mut self, platform: &dyn Platform) {
        self.registry.add_platform(platform.id());
        platform.register(&mut self.registry);
    }

    /// The extension registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Mutable registry access (plug custom operators/mappings, §5).
    pub fn registry_mut(&mut self) -> &mut Registry {
        &mut self.registry
    }

    /// Platform profiles.
    pub fn profiles(&self) -> &Profiles {
        &self.profiles
    }

    /// Mutable profiles (calibration).
    pub fn profiles_mut(&mut self) -> &mut Profiles {
        &mut self.profiles
    }

    /// The cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.model
    }

    /// Mutable cost model (apply learned parameters).
    pub fn cost_model_mut(&mut self) -> &mut CostModel {
        &mut self.model
    }

    /// Executor configuration.
    pub fn config(&self) -> &ExecConfig {
        &self.config
    }

    /// Mutable executor configuration.
    pub fn config_mut(&mut self) -> &mut ExecConfig {
        &mut self.config
    }

    /// The monitor (accumulates stage statistics across jobs; feed it to
    /// the cost learner).
    pub fn monitor(&self) -> &Monitor {
        &self.monitor
    }

    fn estimator(&self) -> Estimator {
        let mut e = Estimator::new();
        for s in self.registry.source_estimators() {
            e.add_source_estimator(Arc::clone(s));
        }
        e
    }

    /// Optimize a plan without executing it (inspection / `explain`).
    pub fn optimize(&self, plan: &RheemPlan) -> Result<OptimizedPlan> {
        let mut optimizer = Optimizer::new(&self.registry, &self.profiles, &self.model);
        optimizer.forced_platform = self.forced_platform;
        optimizer.optimize(plan, &self.estimator())
    }

    /// Build the executable plan for inspection.
    pub fn compile(&self, plan: &RheemPlan) -> Result<(OptimizedPlan, ExecPlan)> {
        let opt = self.optimize(plan)?;
        let eplan = build_exec_plan(plan, &opt, &self.registry, &self.profiles, &self.model)?;
        Ok((opt, eplan))
    }

    /// Human-readable description of the chosen execution plan.
    pub fn explain(&self, plan: &RheemPlan) -> Result<String> {
        let (opt, eplan) = self.compile(plan)?;
        Ok(format!(
            "estimated cost: {:.1} ms (virtual)\nplatforms: {:?}\n{}",
            opt.est_ms,
            opt.platforms,
            eplan.describe()
        ))
    }

    /// Execute a plan end-to-end (Algorithm 1).
    pub fn execute(&self, plan: &RheemPlan) -> Result<JobResult> {
        // The monitor accumulates across jobs; report this job's delta.
        let retries_before = self.monitor.retries();
        let outcome = run_progressive(
            plan,
            &self.registry,
            &self.profiles,
            &self.model,
            || self.estimator(),
            &self.config,
            &self.monitor,
            self.forced_platform,
        )?;
        Ok(JobResult {
            sinks: outcome.sink_data,
            metrics: JobMetrics {
                virtual_ms: outcome.virtual_ms,
                real_ms: outcome.real_ms,
                replans: outcome.replans,
                retries: self.monitor.retries() - retries_before,
                failovers: outcome.failovers,
                platforms: outcome.platforms,
                est_ms: outcome.est_ms,
            },
            exploration: outcome.exploration,
        })
    }
}
