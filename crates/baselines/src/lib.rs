//! Single-platform and competitor baselines the paper compares against:
//! NADEEF and SparkSQL (Fig. 2(a)), MLlib and SystemML (Fig. 2(b)), the
//! "load everything into the DBMS" / "move everything to HDFS + Spark"
//! common practices (Fig. 2(d)), and **Musketeer** (Fig. 11) — a rule-based
//! cross-platform system that re-compiles and materializes to HDFS at every
//! stage and iteration.

#![warn(missing_docs)]

use std::sync::Arc;

use rheem_core::api::{JobMetrics, RheemContext};
use rheem_core::error::Result;
use rheem_core::platform::ids;
use rheem_core::value::{Dataset, Value};

pub use bigdansing::nadeef_baseline;

/// A Q5 baseline's outcome: `(result rows, job metrics, data-load ms)`.
pub type Q5Baseline = Result<(Vec<(String, f64)>, JobMetrics, f64)>;

/// Context forcing every mappable operator onto one platform.
pub fn forced_context(platform: rheem_core::platform::PlatformId) -> RheemContext {
    let mut ctx = RheemContext::new()
        .with_platform(&platform_javastreams::JavaStreamsPlatform::new())
        .with_platform(&platform_spark::SparkPlatform::new())
        .with_platform(&platform_flink::FlinkPlatform::new());
    ctx.register_platform(&platform_graph::GiraphPlatform::new());
    ctx.register_platform(&platform_graph::JGraphPlatform::new());
    ctx.register_platform(&platform_graph::GraphChiPlatform::new());
    ctx.forced_platform = Some(platform);
    ctx
}

// ---------------------------------------------------------------------------
// Fig. 2(a): data cleaning baselines
// ---------------------------------------------------------------------------

/// SparkSQL-like baseline for denial constraints: no inequality-join
/// algorithm, so the detection runs as a full cartesian filter on Spark
/// (everything forced onto Spark, no IEJoin registered).
pub fn sparksql_detect(rows: Vec<Value>) -> Result<(Dataset, JobMetrics)> {
    let ctx = forced_context(ids::SPARK);
    let task = bigdansing::CleaningTask::tax();
    let (plan, sink) = task.build_plan(Arc::new(rows))?;
    let result = ctx.execute(&plan)?;
    Ok((result.sink(sink)?.clone(), result.metrics.clone()))
}

/// NADEEF-like baseline: a single-node nested-loop rule engine. Returns the
/// violation count and its simulated virtual runtime (single core, plus the
/// rule-engine's per-candidate interpretation overhead the paper observed).
pub fn nadeef_detect(rows: &[Value]) -> (usize, f64) {
    let dc = bigdansing::DenialConstraint::tax();
    let start = std::time::Instant::now();
    let pairs = nadeef_baseline(rows, &dc);
    let real_ms = start.elapsed().as_secs_f64() * 1000.0;
    // NADEEF interprets rules per candidate pair (reflection-heavy); the
    // paper measured it ~1 order of magnitude slower than compiled code.
    let virtual_ms = real_ms * 8.0 + 500.0;
    (pairs.len(), virtual_ms)
}

// ---------------------------------------------------------------------------
// Fig. 2(b): machine-learning baselines
// ---------------------------------------------------------------------------

/// MLlib-like baseline: the whole SGD loop forced onto Spark — every
/// iteration pays distributed-stage overheads even for the tiny weight
/// update.
pub fn mllib_sgd(
    source: ml4all::PointSource,
    cfg: &ml4all::SgdConfig,
) -> Result<(Vec<f64>, JobMetrics)> {
    let ctx = forced_context(ids::SPARK);
    let (plan, sink) = ml4all::build_sgd_plan(source, cfg)?;
    let result = ctx.execute(&plan)?;
    Ok((ml4all::weights_of(result.sink(sink)?), result.metrics.clone()))
}

/// SystemML-like baseline: also all-on-Spark, but with a compilation pass
/// per job and a tighter driver-memory budget — on large synthetic data it
/// dies with OOM exactly as in Fig. 2(b).
pub fn systemml_sgd(
    source: ml4all::PointSource,
    cfg: &ml4all::SgdConfig,
) -> Result<(Vec<f64>, JobMetrics)> {
    let mut ctx = forced_context(ids::SPARK);
    {
        let p = ctx.profiles_mut().get_mut(ids::SPARK);
        p.stage_overhead_ms += 150.0; // plan compilation per stage
        p.mem_mb = 1_024.0; // constrained driver/executor memory
    }
    // SystemML materializes the dataset as dense double matrix blocks in
    // its buffer pool (plus copies during conversion): ~4× the raw size.
    let bytes = match &source {
        ml4all::PointSource::InMemory(points) => rheem_core::exec::dataset_bytes(points) * 4.0,
        ml4all::PointSource::Csv(path) => {
            rheem_storage::stat(path).map(|(b, _)| b as f64).unwrap_or(0.0) * 6.0
        }
    };
    if bytes > 1_024.0 * 1024.0 * 1024.0 {
        return Err(rheem_core::error::RheemError::Execution(
            "systemml: out of memory materializing the dataset".into(),
        ));
    }
    let (plan, sink) = ml4all::build_sgd_plan(source, cfg)?;
    let result = ctx.execute(&plan)?;
    let mut metrics = result.metrics.clone();
    metrics.virtual_ms += 3_000.0; // DML compilation
    Ok((ml4all::weights_of(result.sink(sink)?), metrics))
}

// ---------------------------------------------------------------------------
// Fig. 2(d): polystore common practices
// ---------------------------------------------------------------------------

/// Common practice 1: migrate every table *into* Postgres, then run Q5
/// entirely inside the DBMS. Returns `(rows, metrics, load_ms)` — the load
/// alone is what the paper found ≈3× slower than Rheem's whole task.
pub fn q5_all_in_postgres(
    data: &rheem_datagen::tpch::TpchData,
    _region: &str,
    _year: i64,
) -> Q5Baseline {
    use platform_postgres::{PgDatabase, PostgresPlatform};
    let db = Arc::new(PgDatabase::new());
    // Load *everything* into the store, paying the bulk-load cost.
    let mut load_ms = 0.0;
    let profiles = rheem_core::platform::Profiles::paper_testbed();
    let profile = profiles.get(ids::POSTGRES);
    for (name, cols, rows) in [
        ("customer", vec!["custkey", "name", "nationkey"], &data.customer),
        ("supplier", vec!["suppkey", "name", "nationkey"], &data.supplier),
        ("region", vec!["regionkey", "name"], &data.region),
        ("nation", vec!["nationkey", "name", "regionkey"], &data.nation),
        ("orders", vec!["orderkey", "custkey", "orderyear"], &data.orders),
        ("lineitem", vec!["orderkey", "suppkey", "extendedprice", "discount"], &data.lineitem),
    ] {
        let bytes = rheem_core::exec::dataset_bytes(rows);
        load_ms += profile.net_ms(bytes)
            + profile.disk_ms(bytes * 5.0)
            + rows.len() as f64 * 1_200.0 / profile.cycles_per_ms;
        db.load_table(name, cols.into_iter().map(String::from).collect::<Vec<_>>(), rows.clone());
    }

    // Q5 inside the DB: all six tables are relational now.
    let mut ctx = RheemContext::new();
    ctx.register_platform(&PostgresPlatform::new(Arc::clone(&db)));
    ctx.forced_platform = Some(ids::POSTGRES);
    let placement = dataciv::Placement {
        lineitem: write_tbl("pg_baseline/lineitem.tbl", &data.lineitem)?,
        orders: write_tbl("pg_baseline/orders.tbl", &data.orders)?,
        nation: {
            let p = std::env::temp_dir().join("pg_baseline_nation.tbl");
            rheem_storage::write_lines(
                &p,
                data.nation.iter().map(rheem_datagen::tpch::row_to_line),
            )?;
            p
        },
        db: Arc::clone(&db),
    };
    // Build an in-DB variant: replace the file reads with table scans by
    // constructing the plan against tables only.
    let (plan, sink) = q5_tables_only_plan(&placement)?;
    let result = ctx.execute(&plan)?;
    let rows = extract_q5(result.sink(sink)?);
    Ok((rows, result.metrics.clone(), load_ms))
}

fn write_tbl(rel: &str, rows: &[Value]) -> Result<std::path::PathBuf> {
    let p = std::path::PathBuf::from(format!("hdfs://{rel}"));
    rheem_storage::write_lines(&p, rows.iter().map(rheem_datagen::tpch::row_to_line))?;
    Ok(p)
}

/// Q5 plan reading *all* tables from the relational store (for the
/// load-into-Postgres baseline; assumes nation/orders/lineitem were loaded).
fn q5_tables_only_plan(
    p: &dataciv::Placement,
) -> Result<(rheem_core::plan::RheemPlan, rheem_core::plan::OperatorId)> {
    // Reuse the polystore plan builder against an all-tables placement by
    // swapping file sources for table sources via a tiny local builder.
    use rheem_core::plan::PlanBuilder;
    use rheem_core::udf::{CmpOp, KeyUdf, MapUdf, PredicateUdf, ReduceUdf, Sarg};

    let mut b = PlanBuilder::new();
    let region_lit = Value::from("ASIA");
    let regionkeys = b
        .read_table("region")
        .filter_sarg(
            PredicateUdf::new("region_name", {
                let lit = region_lit.clone();
                move |r| r.field(1) == &lit
            }),
            Sarg { field: 1, op: CmpOp::Eq, literal: region_lit },
        )
        .project(vec![0usize]);
    let nation = b.read_table("nation");
    let region_nations = nation.join(&regionkeys, KeyUdf::field(2), KeyUdf::field(0)).map(
        MapUdf::new("nat_flat", |pair| {
            let n = pair.field(0);
            Value::pair(n.field(0).clone(), n.field(1).clone())
        }),
    );
    let customers = b
        .read_table("customer")
        .project(vec![0usize, 2])
        .join(&region_nations, KeyUdf::field(1), KeyUdf::field(0))
        .map(MapUdf::new("cust_flat", |pair| {
            let c = pair.field(0);
            Value::pair(c.field(0).clone(), c.field(1).clone())
        }));
    let suppliers = b
        .read_table("supplier")
        .project(vec![0usize, 2])
        .join(&region_nations, KeyUdf::field(1), KeyUdf::field(0))
        .map(MapUdf::new("supp_flat", |pair| {
            let s = pair.field(0);
            Value::pair(s.field(0).clone(), s.field(1).clone())
        }));
    let year_orders = b
        .read_table("orders")
        .filter_sarg(
            PredicateUdf::new("order_year", |o| o.field(2).as_int() == Some(1995)),
            Sarg { field: 2, op: CmpOp::Eq, literal: Value::from(1995) },
        )
        .join(&customers, KeyUdf::field(1), KeyUdf::field(0))
        .map(MapUdf::new("ord_flat", |pair| {
            let o = pair.field(0);
            let c = pair.field(1);
            Value::pair(o.field(0).clone(), c.field(1).clone())
        }));
    let sink = b
        .read_table("lineitem")
        .join(&year_orders, KeyUdf::field(0), KeyUdf::field(0))
        .map(MapUdf::new("li_ord", |pair| {
            let l = pair.field(0);
            let o = pair.field(1);
            Value::tuple(vec![
                l.field(1).clone(),
                o.field(1).clone(),
                Value::from(
                    l.field(2).as_f64().unwrap_or(0.0) * (1.0 - l.field(3).as_f64().unwrap_or(0.0)),
                ),
            ])
        }))
        .join(&suppliers, KeyUdf::field(0), KeyUdf::field(0))
        .filter(PredicateUdf::new("same_nation", |pair| {
            pair.field(0).field(1) == pair.field(1).field(1)
        }))
        .map(MapUdf::new("nat_rev", |pair| {
            let lo = pair.field(0);
            Value::pair(lo.field(1).clone(), lo.field(2).clone())
        }))
        .reduce_by_key(
            KeyUdf::field(0),
            ReduceUdf::new("sum_rev", |a, b| {
                Value::pair(
                    a.field(0).clone(),
                    Value::from(
                        a.field(1).as_f64().unwrap_or(0.0) + b.field(1).as_f64().unwrap_or(0.0),
                    ),
                )
            }),
        )
        .join(&region_nations, KeyUdf::field(0), KeyUdf::field(0))
        .map(MapUdf::new("name_rev", |pair| {
            Value::pair(pair.field(1).field(1).clone(), pair.field(0).field(1).clone())
        }))
        .sort_by(KeyUdf::new("neg_rev", |v| Value::from(-v.field(1).as_f64().unwrap_or(0.0))))
        .collect();
    let _ = p;
    b.build().map(|plan| (plan, sink))
}

/// Common practice 2: move everything to HDFS and run Q5 on Spark. Returns
/// `(rows, metrics, migrate_ms)` where `migrate_ms` is the export+upload of
/// the Postgres-resident tables.
pub fn q5_all_on_spark(
    data: &rheem_datagen::tpch::TpchData,
    region: &str,
    year: i64,
) -> Q5Baseline {
    // Export the DB tables to HDFS (cursor export + HDFS write).
    let profiles = rheem_core::platform::Profiles::paper_testbed();
    let pg = profiles.get(ids::POSTGRES);
    let mut migrate_ms = 0.0;
    for rows in [&data.customer, &data.supplier, &data.region] {
        let bytes = rheem_core::exec::dataset_bytes(rows);
        migrate_ms += pg.net_ms(bytes)
            + rows.len() as f64 * 350.0 / pg.cycles_per_ms
            + rheem_storage::default_costs(rheem_storage::StoreKind::Hdfs).write_ms(bytes as u64);
    }
    // All tables as HDFS files; run the file-only plan forced on Spark.
    let scratch = "spark_baseline";
    let placement = dataciv::Placement {
        lineitem: write_tbl(&format!("{scratch}/lineitem.tbl"), &data.lineitem)?,
        orders: write_tbl(&format!("{scratch}/orders.tbl"), &data.orders)?,
        nation: {
            let p = std::env::temp_dir().join("spark_baseline_nation.tbl");
            rheem_storage::write_lines(
                &p,
                data.nation.iter().map(rheem_datagen::tpch::row_to_line),
            )?;
            p
        },
        db: {
            // Spark-only world: the "db" tables also live on HDFS; load
            // them into a throwaway store only to satisfy the placement
            // structure, but the plan below reads files.
            let db = Arc::new(platform_postgres::PgDatabase::new());
            db.load_table("customer", vec!["c".to_string()], data.customer.clone());
            db
        },
    };
    let customer_f = write_tbl(&format!("{scratch}/customer.tbl"), &data.customer)?;
    let supplier_f = write_tbl(&format!("{scratch}/supplier.tbl"), &data.supplier)?;
    let region_f = write_tbl(&format!("{scratch}/region.tbl"), &data.region)?;
    let (plan, sink) =
        q5_files_only_plan(&placement, &customer_f, &supplier_f, &region_f, region, year)?;
    let ctx = forced_context(ids::SPARK);
    let result = ctx.execute(&plan)?;
    Ok((extract_q5(result.sink(sink)?), result.metrics.clone(), migrate_ms))
}

fn q5_files_only_plan(
    p: &dataciv::Placement,
    customer_f: &std::path::Path,
    supplier_f: &std::path::Path,
    region_f: &std::path::Path,
    region: &str,
    year: i64,
) -> Result<(rheem_core::plan::RheemPlan, rheem_core::plan::OperatorId)> {
    use rheem_core::plan::PlanBuilder;
    use rheem_core::udf::{KeyUdf, MapUdf, PredicateUdf, ReduceUdf};
    let parse =
        || MapUdf::new("parse_tbl", |l| rheem_datagen::tpch::line_to_row(l.as_str().unwrap_or("")));
    let mut b = PlanBuilder::new();
    let region_name = region.to_string();
    let regionkeys = b
        .read_text_file(region_f)
        .map(parse())
        .filter(PredicateUdf::new("region_name", move |r| {
            r.field(1).as_str() == Some(region_name.as_str())
        }))
        .project(vec![0usize]);
    let region_nations = b
        .read_text_file(p.nation.clone())
        .map(parse())
        .join(&regionkeys, KeyUdf::field(2), KeyUdf::field(0))
        .map(MapUdf::new("nat_flat", |pair| {
            let n = pair.field(0);
            Value::pair(n.field(0).clone(), n.field(1).clone())
        }));
    let customers = b
        .read_text_file(customer_f)
        .map(parse())
        .project(vec![0usize, 2])
        .join(&region_nations, KeyUdf::field(1), KeyUdf::field(0))
        .map(MapUdf::new("cust_flat", |pair| {
            let c = pair.field(0);
            Value::pair(c.field(0).clone(), c.field(1).clone())
        }));
    let suppliers = b
        .read_text_file(supplier_f)
        .map(parse())
        .project(vec![0usize, 2])
        .join(&region_nations, KeyUdf::field(1), KeyUdf::field(0))
        .map(MapUdf::new("supp_flat", |pair| {
            let s = pair.field(0);
            Value::pair(s.field(0).clone(), s.field(1).clone())
        }));
    let year_orders = b
        .read_text_file(p.orders.clone())
        .map(parse())
        .filter(PredicateUdf::new("order_year", move |o| o.field(2).as_int() == Some(year)))
        .join(&customers, KeyUdf::field(1), KeyUdf::field(0))
        .map(MapUdf::new("ord_flat", |pair| {
            let o = pair.field(0);
            let c = pair.field(1);
            Value::pair(o.field(0).clone(), c.field(1).clone())
        }));
    let sink = b
        .read_text_file(p.lineitem.clone())
        .map(parse())
        .join(&year_orders, KeyUdf::field(0), KeyUdf::field(0))
        .map(MapUdf::new("li_ord", |pair| {
            let l = pair.field(0);
            let o = pair.field(1);
            Value::tuple(vec![
                l.field(1).clone(),
                o.field(1).clone(),
                Value::from(
                    l.field(2).as_f64().unwrap_or(0.0) * (1.0 - l.field(3).as_f64().unwrap_or(0.0)),
                ),
            ])
        }))
        .join(&suppliers, KeyUdf::field(0), KeyUdf::field(0))
        .filter(PredicateUdf::new("same_nation", |pair| {
            pair.field(0).field(1) == pair.field(1).field(1)
        }))
        .map(MapUdf::new("nat_rev", |pair| {
            let lo = pair.field(0);
            Value::pair(lo.field(1).clone(), lo.field(2).clone())
        }))
        .reduce_by_key(
            KeyUdf::field(0),
            ReduceUdf::new("sum_rev", |a, b| {
                Value::pair(
                    a.field(0).clone(),
                    Value::from(
                        a.field(1).as_f64().unwrap_or(0.0) + b.field(1).as_f64().unwrap_or(0.0),
                    ),
                )
            }),
        )
        .join(&region_nations, KeyUdf::field(0), KeyUdf::field(0))
        .map(MapUdf::new("name_rev", |pair| {
            Value::pair(pair.field(1).field(1).clone(), pair.field(0).field(1).clone())
        }))
        .sort_by(KeyUdf::new("neg_rev", |v| Value::from(-v.field(1).as_f64().unwrap_or(0.0))))
        .collect();
    b.build().map(|plan| (plan, sink))
}

fn extract_q5(rows: &Dataset) -> Vec<(String, f64)> {
    rows.iter()
        .map(|v| {
            (v.field(0).as_str().unwrap_or("?").to_string(), v.field(1).as_f64().unwrap_or(0.0))
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Fig. 11: Musketeer
// ---------------------------------------------------------------------------

/// Musketeer-like execution of CrocoPR: a rule-based mapper that (i) picks
/// platforms by fixed rules, (ii) **re-compiles and packages generated code
/// for every stage**, and (iii) **materializes every intermediate to HDFS**
/// — including one job *per PageRank iteration* (the paper: "Musketeer …
/// checks dependencies, compiles and packages the code, and writes the
/// output to HDFS at each iteration (or stage), which comes with a high
/// overhead").
pub struct MusketeerReport {
    /// Total virtual runtime, ms.
    pub virtual_ms: f64,
    /// Stages (jobs) executed.
    pub jobs: u32,
    /// Final top-ranked pages.
    pub top: Vec<Value>,
}

/// Per-job code-generation + packaging overhead (virtual ms). Calibrated so
/// one-iteration CrocoPR lands in the paper's ≈2–10× band over Rheem.
pub const MUSKETEER_COMPILE_MS: f64 = 18_000.0;

/// Run CrocoPR the Musketeer way over edge files.
pub fn musketeer_crocopr(
    file_a: &std::path::Path,
    file_b: &std::path::Path,
    iterations: u32,
) -> Result<MusketeerReport> {
    use rheem_core::plan::{SampleMethod, SampleSize};
    use rheem_core::udf::{FlatMapUdf, KeyUdf, MapUdf, PredicateUdf};

    let hdfs = rheem_storage::default_costs(rheem_storage::StoreKind::Hdfs);
    let mut virtual_ms = 0.0;
    let mut jobs = 0u32;
    let ctx = forced_context(ids::SPARK);

    let mut run_stage = |plan: rheem_core::plan::RheemPlan,
                         sink: rheem_core::plan::OperatorId|
     -> Result<Dataset> {
        jobs += 1;
        let result = ctx.execute(&plan)?;
        let data = result.sink(sink)?.clone();
        // compile + package + write the stage output to HDFS
        let bytes = rheem_core::exec::dataset_bytes(&data);
        virtual_ms += MUSKETEER_COMPILE_MS
            + result.metrics.virtual_ms
            + hdfs.write_ms(bytes as u64)
            + hdfs.read_ms(bytes as u64); // next stage reads it back
        Ok(data)
    };

    // Stage 1: prepare community A.
    let parse = || {
        FlatMapUdf::new("parse_edge", |line| {
            rheem_datagen::graph::line_to_edge(line.as_str().unwrap_or("")).into_iter().collect()
        })
    };
    let clean_plan = |file: &std::path::Path| {
        let mut b = rheem_core::plan::PlanBuilder::new();
        let sink = b
            .read_text_file(file)
            .flat_map(parse())
            .filter(PredicateUdf::new("nl", |e| e.field(0) != e.field(1)))
            .distinct()
            .collect();
        (b.build().unwrap(), sink)
    };
    let (pa, sa) = clean_plan(file_a);
    let a = run_stage(pa, sa)?;
    let (pb, sb) = clean_plan(file_b);
    let bset = run_stage(pb, sb)?;

    // Stage 3: intersect.
    let mut b = rheem_core::plan::PlanBuilder::new();
    let qa = b.dataset(a);
    let qb = b.dataset(bset);
    let sink = qa
        .join(&qb, KeyUdf::identity(), KeyUdf::identity())
        .map(MapUdf::new("l", |p| p.field(0).clone()))
        .collect();
    let mut edges = run_stage(b.build().unwrap(), sink)?;

    // Stages 4…: one PageRank iteration per job (Musketeer's weakness).
    let mut ranks: Dataset = Arc::new(Vec::new());
    for _ in 0..iterations {
        let mut b = rheem_core::plan::PlanBuilder::new();
        let e = b.dataset(Arc::clone(&edges));
        let sink = e.page_rank(1, 0.85).collect();
        ranks = run_stage(b.build().unwrap(), sink)?;
        // edges unchanged; Musketeer still rereads/rewrites state per job.
        edges = Arc::clone(&edges);
    }

    // Final stage: top-100 report.
    let mut b = rheem_core::plan::PlanBuilder::new();
    let r = b.dataset(ranks);
    let sink = r
        .sort_by(KeyUdf::new("neg_rank", |v| Value::from(-v.field(1).as_f64().unwrap_or(0.0))))
        .sample(SampleMethod::First, SampleSize::Count(100))
        .collect();
    let top = run_stage(b.build().unwrap(), sink)?;

    Ok(MusketeerReport { virtual_ms, jobs, top: top.to_vec() })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparksql_detect_is_correct_but_forced_on_spark() {
        let rows = rheem_datagen::generate_tax(200, 0.1, 3);
        let expected = rheem_datagen::tax::count_violations_bruteforce(&rows);
        let (fixes, metrics) = sparksql_detect(rows).unwrap();
        assert_eq!(fixes.len(), expected);
        assert_eq!(metrics.platforms, vec![ids::SPARK]);
    }

    #[test]
    fn nadeef_is_slower_than_it_looks() {
        let rows = rheem_datagen::generate_tax(200, 0.1, 4);
        let (count, vms) = nadeef_detect(&rows);
        assert_eq!(count, rheem_datagen::tax::count_violations_bruteforce(&rows));
        assert!(vms > 500.0);
    }

    #[test]
    fn mllib_learns_but_pays_spark_everywhere() {
        let points = Arc::new(rheem_datagen::generate_points(1500, 4, 0.05, 5).points);
        let cfg = ml4all::SgdConfig { iterations: 15, batch: 32, ..Default::default() };
        let (w, metrics) =
            mllib_sgd(ml4all::PointSource::InMemory(Arc::clone(&points)), &cfg).unwrap();
        assert_eq!(metrics.platforms, vec![ids::SPARK]);
        let l0 = ml4all::hinge_loss(&points, &[0.0; 4]);
        assert!(ml4all::hinge_loss(&points, &w) < l0);
        // 15 iterations of spark stages: heavy virtual cost (the mixed
        // execution of the same config lands far below; see the fig2b
        // bench for the side-by-side numbers)
        assert!(metrics.virtual_ms > 2_500.0, "{}", metrics.virtual_ms);
    }

    #[test]
    fn systemml_oom_on_big_synthetic() {
        // ~1.6 GB of points exceeds the constrained buffer pool.
        let n = 2_000_000usize;
        let mut big = Vec::with_capacity(n);
        for i in 0..n {
            big.push(Value::tuple(vec![
                Value::from(1.0),
                Value::from(i as f64),
                Value::from(i as f64),
                Value::from(i as f64),
                Value::from(i as f64),
                Value::from(i as f64),
                Value::from(i as f64),
                Value::from(i as f64),
            ]));
        }
        let cfg = ml4all::SgdConfig { iterations: 2, ..Default::default() };
        let err = systemml_sgd(ml4all::PointSource::InMemory(Arc::new(big)), &cfg);
        assert!(err.is_err());
    }

    #[test]
    fn musketeer_overhead_grows_with_iterations() {
        let dir = std::env::temp_dir().join("rheem_musketeer_test");
        std::fs::create_dir_all(&dir).unwrap();
        let (fa, fb) = (dir.join("a.edges"), dir.join("b.edges"));
        let ea = rheem_datagen::generate_graph(200, 3, 1);
        let eb: Vec<(i64, i64)> = ea.iter().step_by(2).copied().collect();
        rheem_datagen::graph::write_graph(&fa, &ea).unwrap();
        rheem_datagen::graph::write_graph(&fb, &eb).unwrap();
        let r1 = musketeer_crocopr(&fa, &fb, 1).unwrap();
        let r5 = musketeer_crocopr(&fa, &fb, 5).unwrap();
        assert!(r5.jobs > r1.jobs);
        assert!(r5.virtual_ms > r1.virtual_ms + 3.0 * MUSKETEER_COMPILE_MS);
        assert!(!r5.top.is_empty());
    }
}
