//! Storage substrate for rheem-rs: the local filesystem plus an **HDFS
//! simulacrum**.
//!
//! The paper stores its datasets on HDFS and moves data between stores and
//! engines; the movement cost is a first-class concern of the optimizer.
//! Here, `hdfs://…` URIs resolve into a sandbox directory on the local
//! disk, and every open/read/write carries a *cost descriptor* (per-open
//! latency, bandwidth) that engines convert into virtual cluster time. Data
//! and results are always real — only the clock is modeled.

#![warn(missing_docs)]

use std::fs;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use std::sync::RwLock;

/// Which store a path belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StoreKind {
    /// The plain local filesystem.
    Local,
    /// The HDFS simulacrum (distributed file system of the testbed).
    Hdfs,
}

/// Per-store access-cost model (virtual milliseconds).
#[derive(Clone, Copy, Debug)]
pub struct StoreCosts {
    /// Fixed cost per file open (namenode round trip for HDFS).
    pub open_ms: f64,
    /// Sequential read bandwidth, MB/s (aggregate).
    pub read_mb_per_sec: f64,
    /// Sequential write bandwidth, MB/s (aggregate; HDFS replication makes
    /// writes slower than reads).
    pub write_mb_per_sec: f64,
}

impl StoreCosts {
    /// Virtual ms to read `bytes` including the open cost.
    pub fn read_ms(&self, bytes: u64) -> f64 {
        self.open_ms + bytes as f64 / (self.read_mb_per_sec * 1024.0 * 1024.0) * 1000.0
    }

    /// Virtual ms to write `bytes` including the open cost.
    pub fn write_ms(&self, bytes: u64) -> f64 {
        self.open_ms + bytes as f64 / (self.write_mb_per_sec * 1024.0 * 1024.0) * 1000.0
    }
}

/// Defaults mirroring the paper's testbed (SATA disks, 1 GbE, 10 nodes):
/// HDFS reads stream from many disks in parallel but pay a namenode round
/// trip; the local FS is a single SATA disk.
pub fn default_costs(kind: StoreKind) -> StoreCosts {
    match kind {
        StoreKind::Local => {
            StoreCosts { open_ms: 0.05, read_mb_per_sec: 120.0, write_mb_per_sec: 100.0 }
        }
        StoreKind::Hdfs => {
            StoreCosts { open_ms: 2.0, read_mb_per_sec: 800.0, write_mb_per_sec: 300.0 }
        }
    }
}

/// Access costs of the cache **spill tier**: cold results demoted from the
/// in-memory result cache onto local disk (see `rheem_core::cache::spill`).
/// Spill files are written/read whole through one spindle and pay a small
/// open cost plus serialization overhead, so the tier is priced below the
/// streaming local-FS rate — slow enough that the optimizer prefers memory
/// hits and recomputation of trivial subplans, cheap enough that replaying a
/// spilled heavyweight result still beats recomputing it.
pub fn spill_costs() -> StoreCosts {
    StoreCosts { open_ms: 0.2, read_mb_per_sec: 80.0, write_mb_per_sec: 60.0 }
}

static HDFS_ROOT: OnceLock<RwLock<PathBuf>> = OnceLock::new();

fn hdfs_root_lock() -> &'static RwLock<PathBuf> {
    HDFS_ROOT.get_or_init(|| RwLock::new(std::env::temp_dir().join("rheem_hdfs")))
}

/// Set the sandbox directory backing `hdfs://` URIs.
pub fn set_hdfs_root(path: impl Into<PathBuf>) {
    *hdfs_root_lock().write().unwrap() = path.into();
}

/// The sandbox directory backing `hdfs://` URIs.
pub fn hdfs_root() -> PathBuf {
    hdfs_root_lock().read().unwrap().clone()
}

/// A resolved file: where it really lives and which store it models.
#[derive(Clone, Debug)]
pub struct Resolved {
    /// Real path on the local machine.
    pub real: PathBuf,
    /// Which store the URI addressed.
    pub store: StoreKind,
}

/// Resolve a path or URI. `hdfs://x/y` maps into the HDFS sandbox;
/// everything else is local.
pub fn resolve(path: &Path) -> Resolved {
    let s = path.to_string_lossy();
    if let Some(rest) = s.strip_prefix("hdfs://") {
        // The URI authority (`namenode:8020` in `hdfs://namenode:8020/x/y`)
        // names the cluster, not a directory: strip it before joining so
        // every authority spelling resolves to the same sandbox file. Only
        // `host:port` (or the empty authority of `hdfs:///x/y`) is treated
        // as an authority — a bare first component stays a path segment,
        // preserving the sandbox-wide `hdfs://dir/file` shorthand.
        let (authority, file_path) = match rest.find('/') {
            Some(i) => (&rest[..i], &rest[i + 1..]),
            None => (rest, ""),
        };
        let joined = if authority.is_empty() || authority.contains(':') {
            hdfs_root().join(file_path)
        } else {
            hdfs_root().join(rest)
        };
        Resolved { real: joined, store: StoreKind::Hdfs }
    } else if let Some(rest) = s.strip_prefix("file://") {
        Resolved { real: PathBuf::from(rest), store: StoreKind::Local }
    } else {
        Resolved { real: path.to_path_buf(), store: StoreKind::Local }
    }
}

/// Size and store of a file (for cardinality estimation and cost models).
pub fn stat(path: &Path) -> io::Result<(u64, StoreKind)> {
    let r = resolve(path);
    Ok((fs::metadata(&r.real)?.len(), r.store))
}

/// Identity metadata of a file: length, modification time and store. The
/// (path, len, mtime) triple is the invalidation key for results derived
/// from the file (see `rheem_core::cache`): any rewrite bumps the mtime, so
/// stale cached derivations can never be served.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FileMeta {
    /// File length in bytes.
    pub len: u64,
    /// Modification time in nanoseconds since the Unix epoch (0 when the
    /// filesystem reports none).
    pub mtime_ns: u128,
    /// Which store the path addressed.
    pub store: StoreKind,
}

/// Length + mtime + store of a file (cache invalidation).
pub fn stat_meta(path: &Path) -> io::Result<FileMeta> {
    let r = resolve(path);
    let md = fs::metadata(&r.real)?;
    let mtime_ns = md
        .modified()
        .ok()
        .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
        .map(|d| d.as_nanos())
        .unwrap_or(0);
    Ok(FileMeta { len: md.len(), mtime_ns, store: r.store })
}

/// Read a whole text file as lines.
pub fn read_lines(path: &Path) -> io::Result<Vec<String>> {
    let r = resolve(path);
    let f = fs::File::open(&r.real)?;
    BufReader::new(f).lines().collect()
}

/// Read the first `max_bytes` of a file (cardinality sampling probes).
/// Reads in a loop: a single `read` may legally return fewer bytes than
/// available (pipes, network filesystems, signal interruption), which would
/// destabilize sampling probes built on the head.
pub fn read_head(path: &Path, max_bytes: usize) -> io::Result<Vec<u8>> {
    let r = resolve(path);
    let f = fs::File::open(&r.real)?;
    let mut buf = Vec::with_capacity(max_bytes.min(1 << 20));
    f.take(max_bytes as u64).read_to_end(&mut buf)?;
    Ok(buf)
}

/// Write lines to a text file, creating parent directories.
pub fn write_lines<S: AsRef<str>>(
    path: &Path,
    lines: impl IntoIterator<Item = S>,
) -> io::Result<u64> {
    let r = resolve(path);
    if let Some(parent) = r.real.parent() {
        fs::create_dir_all(parent)?;
    }
    let mut w = BufWriter::new(fs::File::create(&r.real)?);
    let mut bytes = 0u64;
    for line in lines {
        let line = line.as_ref();
        w.write_all(line.as_bytes())?;
        w.write_all(b"\n")?;
        bytes += line.len() as u64 + 1;
    }
    w.flush()?;
    Ok(bytes)
}

/// Split a text file into `n` byte-range partitions aligned to line breaks,
/// the way HDFS splits drive task parallelism. Returns the lines per
/// partition.
pub fn read_partitioned(path: &Path, n: usize) -> io::Result<Vec<Vec<String>>> {
    let lines = read_lines(path)?;
    Ok(partition_lines(lines, n))
}

/// Deal a line vector into `n` contiguous chunks of near-equal size.
pub fn partition_lines(lines: Vec<String>, n: usize) -> Vec<Vec<String>> {
    let n = n.max(1);
    let total = lines.len();
    let base = total / n;
    let extra = total % n;
    let mut out = Vec::with_capacity(n);
    let mut iter = lines.into_iter();
    for i in 0..n {
        let take = base + usize::from(i < extra);
        out.push(iter.by_ref().take(take).collect());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sandbox() -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rheem_storage_test_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn local_roundtrip_and_stat() {
        let dir = sandbox();
        let p = dir.join("t.txt");
        let bytes = write_lines(&p, ["a", "bb", "ccc"]).unwrap();
        assert_eq!(bytes, 2 + 3 + 4);
        let lines = read_lines(&p).unwrap();
        assert_eq!(lines, vec!["a", "bb", "ccc"]);
        let (sz, kind) = stat(&p).unwrap();
        assert_eq!(sz, bytes);
        assert_eq!(kind, StoreKind::Local);
    }

    #[test]
    fn hdfs_uri_resolves_into_sandbox() {
        let dir = sandbox();
        set_hdfs_root(&dir);
        let uri = PathBuf::from("hdfs://deep/nested/data.txt");
        write_lines(&uri, ["x"]).unwrap();
        let r = resolve(&uri);
        assert_eq!(r.store, StoreKind::Hdfs);
        assert!(r.real.starts_with(&dir));
        assert_eq!(read_lines(&uri).unwrap(), vec!["x"]);
        let (_, kind) = stat(&uri).unwrap();
        assert_eq!(kind, StoreKind::Hdfs);
    }

    #[test]
    fn hdfs_authority_is_not_a_directory() {
        let dir = sandbox();
        set_hdfs_root(&dir);
        // All authority spellings of the same HDFS path hit the same file
        // (`hdfs:///a/b.txt` is the empty-authority spelling).
        let plain = resolve(Path::new("hdfs:///a/b.txt"));
        let with_auth = resolve(Path::new("hdfs://namenode:8020/a/b.txt"));
        assert_eq!(with_auth.real, plain.real);
        assert!(!with_auth.real.to_string_lossy().contains("namenode:8020"));
        assert_eq!(with_auth.store, StoreKind::Hdfs);
        // Round-trip through one spelling, read through the other.
        write_lines(Path::new("hdfs://namenode:8020/a/b.txt"), ["auth"]).unwrap();
        assert_eq!(read_lines(Path::new("hdfs:///a/b.txt")).unwrap(), vec!["auth"]);
        // Degenerate: no path after the authority resolves to the root.
        assert_eq!(resolve(Path::new("hdfs://host:9000")).real, dir);
        // A bare first component without a port stays a path segment
        // (sandbox shorthand used across the repo, e.g. `hdfs://bench/x`).
        assert_eq!(resolve(Path::new("hdfs://bench/x.txt")).real, dir.join("bench/x.txt"));
    }

    #[test]
    fn stat_meta_tracks_mtime() {
        let dir = sandbox();
        let p = dir.join("meta.txt");
        write_lines(&p, ["v1"]).unwrap();
        let m1 = stat_meta(&p).unwrap();
        assert_eq!(m1.len, 3);
        assert_eq!(m1.store, StoreKind::Local);
        assert!(m1.mtime_ns > 0);
        // Rewrite with same length after a pause: len equal, mtime bumped.
        std::thread::sleep(std::time::Duration::from_millis(20));
        write_lines(&p, ["v2"]).unwrap();
        let m2 = stat_meta(&p).unwrap();
        assert_eq!(m2.len, m1.len);
        assert!(m2.mtime_ns > m1.mtime_ns);
    }

    #[test]
    fn read_head_fills_up_to_limit() {
        let dir = sandbox();
        let p = dir.join("head_full.txt");
        write_lines(&p, vec!["abcdefghij"; 10]).unwrap(); // 110 bytes
        assert_eq!(read_head(&p, 64).unwrap().len(), 64);
        // Asking beyond EOF returns the whole file, not a short buffer.
        assert_eq!(read_head(&p, 4096).unwrap().len(), 110);
    }

    #[test]
    fn file_uri_strips_scheme() {
        let r = resolve(Path::new("file:///tmp/x"));
        assert_eq!(r.store, StoreKind::Local);
        assert_eq!(r.real, PathBuf::from("/tmp/x"));
    }

    #[test]
    fn head_probe_truncates() {
        let dir = sandbox();
        let p = dir.join("head.txt");
        write_lines(&p, vec!["0123456789"; 100]).unwrap();
        let head = read_head(&p, 64).unwrap();
        assert_eq!(head.len(), 64);
    }

    #[test]
    fn partitioning_balances_lines() {
        let lines: Vec<String> = (0..10).map(|i| i.to_string()).collect();
        let parts = partition_lines(lines, 3);
        assert_eq!(parts.len(), 3);
        let sizes: Vec<usize> = parts.iter().map(Vec::len).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
        // order preserved
        assert_eq!(parts[0][0], "0");
        // degenerate cases
        assert_eq!(partition_lines(vec![], 4).len(), 4);
        assert_eq!(partition_lines(vec!["a".into()], 0).len(), 1);
    }

    #[test]
    fn store_costs_scale() {
        let hdfs = default_costs(StoreKind::Hdfs);
        let local = default_costs(StoreKind::Local);
        assert!(hdfs.open_ms > local.open_ms);
        assert!(hdfs.read_ms(100 << 20) < local.read_ms(100 << 20)); // parallel disks win at volume
        assert!(hdfs.write_ms(1 << 20) > hdfs.read_ms(1 << 20) - hdfs.open_ms); // replication
    }
}
