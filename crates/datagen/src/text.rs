//! Zipf-worded text corpus (the Wikipedia-abstracts stand-in for WordCount).

use crate::Rng;

/// Generate `lines` lines of ~`words_per_line` words drawn from a Zipf
/// distribution over `vocab` distinct words — the skewed word-frequency
/// shape WordCount's ReduceBy sees on real text.
pub fn generate_text(lines: usize, words_per_line: usize, vocab: usize, seed: u64) -> Vec<String> {
    let mut rng = Rng::new(seed);
    let vocab = vocab.max(1);
    // Precompute Zipf CDF (s = 1.07, like English).
    let s = 1.07;
    let weights: Vec<f64> = (1..=vocab).map(|r| 1.0 / (r as f64).powf(s)).collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(vocab);
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }
    let pick = |rng: &mut Rng| -> usize {
        let u = rng.unit();
        match cdf.binary_search_by(|c| c.partial_cmp(&u).unwrap()) {
            Ok(i) | Err(i) => i.min(vocab - 1),
        }
    };
    // Each rank's word is derived once and parked in the shared string
    // interner, so the tokenizing flat-map downstream dedups against the
    // very same pool instead of re-allocating every occurrence.
    let mut words: Vec<Option<std::sync::Arc<str>>> = vec![None; vocab];
    (0..lines)
        .map(|_| {
            let n = words_per_line.max(1) + (rng.below(5) as usize);
            let mut line = String::with_capacity(n * 7);
            for i in 0..n {
                if i > 0 {
                    line.push(' ');
                }
                let r = pick(&mut rng);
                let w = words[r].get_or_insert_with(|| rheem_core::intern::intern(&word_for(r)));
                line.push_str(w);
            }
            line
        })
        .collect()
}

/// Deterministic pseudo-word for a vocabulary rank.
pub fn word_for(rank: usize) -> String {
    const SYLLABLES: [&str; 16] = [
        "ka", "ro", "mi", "ta", "ve", "lu", "so", "ne", "pa", "di", "gu", "fa", "zo", "be", "ch",
        "xi",
    ];
    let mut r = rank + 1;
    let mut w = String::new();
    while r > 0 {
        w.push_str(SYLLABLES[r % 16]);
        r /= 16;
    }
    w
}

/// Write a corpus of roughly `target_kb` kilobytes to `path` (local or
/// `hdfs://`). Returns the number of lines written.
pub fn write_corpus(path: &std::path::Path, target_kb: usize, seed: u64) -> std::io::Result<usize> {
    // ~60 bytes/line with 10 words/line.
    let lines = (target_kb * 1024 / 60).max(1);
    let corpus = generate_text(lines, 10, 50_000, seed);
    rheem_storage::write_lines(path, corpus.iter())?;
    Ok(corpus.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn corpus_is_skewed_and_deterministic() {
        let a = generate_text(500, 10, 1000, 1);
        let b = generate_text(500, 10, 1000, 1);
        assert_eq!(a, b);
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for line in &a {
            for w in line.split_whitespace() {
                *counts.entry(w).or_default() += 1;
            }
        }
        let total: usize = counts.values().sum();
        let max = *counts.values().max().unwrap();
        // Zipf: the top word should dominate well beyond uniform share.
        assert!(max as f64 / total as f64 > 5.0 / 1000.0, "{max}/{total}");
        assert!(counts.len() > 50);
    }

    #[test]
    fn words_are_distinct_per_rank() {
        let w: Vec<String> = (0..100).map(word_for).collect();
        let set: std::collections::HashSet<_> = w.iter().collect();
        assert_eq!(set.len(), 100);
    }

    #[test]
    fn write_corpus_hits_target_size() {
        let dir = std::env::temp_dir().join("rheem_datagen_text");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corpus.txt");
        let lines = write_corpus(&path, 32, 9).unwrap();
        assert!(lines > 100);
        let (bytes, _) = rheem_storage::stat(&path).unwrap();
        assert!(bytes > 16 * 1024 && bytes < 96 * 1024, "{bytes}");
    }
}
