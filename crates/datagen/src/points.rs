//! Labelled dense points (HIGGS / rcv1 / synthetic-SVM stand-ins for SGD).

use rheem_core::value::Value;

use crate::Rng;

/// A generated classification dataset: linearly separable with noise, so
/// SGD converges and the loss trajectory is meaningful.
pub struct PointSet {
    /// Quanta of shape `(label, f0, f1, …)` — label ∈ {-1, +1}.
    pub points: Vec<Value>,
    /// The true separating weights (for tests).
    pub true_weights: Vec<f64>,
}

/// Generate `n` points of `dims` features.
pub fn generate_points(n: usize, dims: usize, noise: f64, seed: u64) -> PointSet {
    let mut rng = Rng::new(seed);
    let true_weights: Vec<f64> = (0..dims).map(|_| rng.gaussian()).collect();
    let mut points = Vec::with_capacity(n);
    for _ in 0..n {
        let features: Vec<f64> = (0..dims).map(|_| rng.gaussian()).collect();
        let margin: f64 = features.iter().zip(&true_weights).map(|(x, w)| x * w).sum();
        let label = if margin + noise * rng.gaussian() >= 0.0 { 1.0 } else { -1.0 };
        let mut tuple = Vec::with_capacity(dims + 1);
        tuple.push(Value::from(label));
        tuple.extend(features.iter().map(|&f| Value::from(f)));
        points.push(Value::tuple(tuple));
    }
    PointSet { points, true_weights }
}

/// Encode a point quantum as a CSV line (`label,f0,f1,…`).
pub fn point_to_csv(p: &Value) -> String {
    let fields = p.fields().unwrap_or(&[]);
    let mut s = String::with_capacity(fields.len() * 8);
    for (i, f) in fields.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("{}", f.as_f64().unwrap_or(0.0)));
    }
    s
}

/// Parse a CSV line back into a point quantum.
pub fn csv_to_point(line: &str) -> Value {
    Value::Tuple(
        line.split(',')
            .map(|t| Value::from(t.trim().parse::<f64>().unwrap_or(0.0)))
            .collect::<Vec<_>>()
            .into(),
    )
}

/// Write a point set as a CSV file (local or `hdfs://`).
pub fn write_points(path: &std::path::Path, set: &PointSet) -> std::io::Result<u64> {
    rheem_storage::write_lines(path, set.points.iter().map(point_to_csv))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_have_shape_and_are_separable() {
        let set = generate_points(2000, 4, 0.0, 3);
        assert_eq!(set.points.len(), 2000);
        assert_eq!(set.points[0].fields().unwrap().len(), 5);
        // noiseless: the true weights classify everything correctly
        for p in &set.points {
            let f = p.fields().unwrap();
            let label = f[0].as_f64().unwrap();
            let margin: f64 =
                f[1..].iter().zip(&set.true_weights).map(|(x, w)| x.as_f64().unwrap() * w).sum();
            assert!(label * margin >= 0.0);
        }
        // labels are reasonably balanced
        let pos = set.points.iter().filter(|p| p.field(0).as_f64() == Some(1.0)).count();
        assert!(pos > 500 && pos < 1500, "{pos}");
    }

    #[test]
    fn csv_roundtrip() {
        let set = generate_points(5, 3, 0.1, 11);
        for p in &set.points {
            let line = point_to_csv(p);
            let back = csv_to_point(&line);
            let a = p.fields().unwrap();
            let b = back.fields().unwrap();
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b.iter()) {
                assert!((x.as_f64().unwrap() - y.as_f64().unwrap()).abs() < 1e-9);
            }
        }
    }
}
