//! Scaled TPC-H tables for Q5 and the Fig. 10(a) join subquery.
//!
//! Row counts follow TPC-H proportions, shrunk by `ROWS_DIVISOR` so a scale
//! factor maps to laptop-sized data while preserving the relative table
//! sizes that drive the polystore trade-offs of Fig. 2(d).

use rheem_core::value::Value;

use crate::Rng;

/// Shrink factor from true TPC-H row counts (SF1 = 6M lineitems) to the
/// reproduction's scale (SF1 = 60k lineitems).
pub const ROWS_DIVISOR: usize = 100;

/// Region names (TPC-H standard).
pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// A generated TPC-H database.
pub struct TpchData {
    /// `(regionkey, name)`
    pub region: Vec<Value>,
    /// `(nationkey, name, regionkey)`
    pub nation: Vec<Value>,
    /// `(suppkey, name, nationkey)`
    pub supplier: Vec<Value>,
    /// `(custkey, name, nationkey)`
    pub customer: Vec<Value>,
    /// `(orderkey, custkey, orderyear)`
    pub orders: Vec<Value>,
    /// `(orderkey, suppkey, extendedprice, discount)`
    pub lineitem: Vec<Value>,
}

/// Generate all six tables at scale factor `sf`.
pub fn generate(sf: f64, seed: u64) -> TpchData {
    let mut rng = Rng::new(seed);
    let n_supplier = ((10_000.0 * sf) as usize / ROWS_DIVISOR).max(10);
    let n_customer = ((150_000.0 * sf) as usize / ROWS_DIVISOR).max(20);
    let n_orders = ((1_500_000.0 * sf) as usize / ROWS_DIVISOR).max(50);
    let n_lineitem = ((6_000_000.0 * sf) as usize / ROWS_DIVISOR).max(150);
    let nations = 25usize;

    let region: Vec<Value> = REGIONS
        .iter()
        .enumerate()
        .map(|(i, name)| Value::tuple(vec![Value::from(i), Value::from(*name)]))
        .collect();
    let nation: Vec<Value> = (0..nations)
        .map(|i| {
            Value::tuple(vec![
                Value::from(i),
                Value::from(format!("NATION{i:02}")),
                Value::from(i % 5),
            ])
        })
        .collect();
    let supplier: Vec<Value> = (0..n_supplier)
        .map(|i| {
            Value::tuple(vec![
                Value::from(i),
                Value::from(format!("Supplier#{i:06}")),
                Value::from(rng.below(nations as u64) as i64),
            ])
        })
        .collect();
    let customer: Vec<Value> = (0..n_customer)
        .map(|i| {
            Value::tuple(vec![
                Value::from(i),
                Value::from(format!("Customer#{i:06}")),
                Value::from(rng.below(nations as u64) as i64),
            ])
        })
        .collect();
    let orders: Vec<Value> = (0..n_orders)
        .map(|i| {
            Value::tuple(vec![
                Value::from(i),
                Value::from(rng.below(n_customer as u64) as i64),
                Value::from(1992 + rng.below(7) as i64),
            ])
        })
        .collect();
    let lineitem: Vec<Value> = (0..n_lineitem)
        .map(|_| {
            Value::tuple(vec![
                Value::from(rng.below(n_orders as u64) as i64),
                Value::from(rng.below(n_supplier as u64) as i64),
                Value::from((rng.below(90_000) + 1_000) as f64 / 100.0 * 100.0),
                Value::from(rng.below(11) as f64 / 100.0),
            ])
        })
        .collect();
    TpchData { region, nation, supplier, customer, orders, lineitem }
}

/// Serialize any TPC-H row to a `|`-separated line (TPC-H's tbl format).
pub fn row_to_line(v: &Value) -> String {
    let fields = v.fields().unwrap_or(&[]);
    fields.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("|")
}

/// Parse a `|`-separated line back into a tuple, with each field parsed as
/// int, then float, then string.
pub fn line_to_row(line: &str) -> Value {
    Value::Tuple(
        line.split('|')
            .map(|t| {
                if let Ok(i) = t.parse::<i64>() {
                    Value::from(i)
                } else if let Ok(f) = t.parse::<f64>() {
                    Value::from(f)
                } else {
                    Value::from(t)
                }
            })
            .collect::<Vec<_>>()
            .into(),
    )
}

/// Reference Q5 implementation (single-threaded oracle for tests):
/// revenue per nation for customers & suppliers of the same nation within
/// `region_name`, orders from `year`.
pub fn q5_reference(data: &TpchData, region_name: &str, year: i64) -> Vec<(String, f64)> {
    use std::collections::HashMap;
    let regionkey = data
        .region
        .iter()
        .find(|r| r.field(1).as_str() == Some(region_name))
        .and_then(|r| r.field(0).as_int())
        .unwrap_or(-1);
    let nations: HashMap<i64, String> = data
        .nation
        .iter()
        .filter(|n| n.field(2).as_int() == Some(regionkey))
        .map(|n| (n.field(0).as_int().unwrap(), n.field(1).as_str().unwrap().to_string()))
        .collect();
    let cust_nation: HashMap<i64, i64> = data
        .customer
        .iter()
        .filter(|c| nations.contains_key(&c.field(2).as_int().unwrap()))
        .map(|c| (c.field(0).as_int().unwrap(), c.field(2).as_int().unwrap()))
        .collect();
    let supp_nation: HashMap<i64, i64> = data
        .supplier
        .iter()
        .filter(|s| nations.contains_key(&s.field(2).as_int().unwrap()))
        .map(|s| (s.field(0).as_int().unwrap(), s.field(2).as_int().unwrap()))
        .collect();
    let order_cust: HashMap<i64, i64> = data
        .orders
        .iter()
        .filter(|o| o.field(2).as_int() == Some(year))
        .map(|o| (o.field(0).as_int().unwrap(), o.field(1).as_int().unwrap()))
        .collect();
    let mut revenue: HashMap<i64, f64> = HashMap::new();
    for l in &data.lineitem {
        let ok = l.field(0).as_int().unwrap();
        let sk = l.field(1).as_int().unwrap();
        let (Some(&ck), Some(&sn)) = (order_cust.get(&ok), supp_nation.get(&sk)) else {
            continue;
        };
        let Some(&cn) = cust_nation.get(&ck) else { continue };
        if cn != sn {
            continue; // Q5: customer and supplier from the same nation
        }
        let price = l.field(2).as_f64().unwrap();
        let disc = l.field(3).as_f64().unwrap();
        *revenue.entry(cn).or_default() += price * (1.0 - disc);
    }
    let mut out: Vec<(String, f64)> =
        revenue.into_iter().map(|(n, r)| (nations[&n].clone(), r)).collect();
    out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportions_follow_tpch() {
        let d = generate(1.0, 42);
        assert_eq!(d.region.len(), 5);
        assert_eq!(d.nation.len(), 25);
        assert_eq!(d.lineitem.len(), 60_000);
        assert_eq!(d.orders.len(), 15_000);
        assert_eq!(d.customer.len(), 1_500);
        assert_eq!(d.supplier.len(), 100);
        // sf scales linearly
        let d01 = generate(0.1, 42);
        assert_eq!(d01.lineitem.len(), 6_000);
    }

    #[test]
    fn q5_reference_produces_asia_revenue() {
        let d = generate(0.1, 7);
        let rows = q5_reference(&d, "ASIA", 1995);
        assert!(!rows.is_empty());
        // sorted descending
        assert!(rows.windows(2).all(|w| w[0].1 >= w[1].1));
        // ASIA holds 5 of the 25 nations
        assert!(rows.len() <= 5);
        assert!(rows.iter().all(|(n, r)| n.starts_with("NATION") && *r > 0.0));
    }

    #[test]
    fn line_roundtrip() {
        let d = generate(0.05, 3);
        let line = row_to_line(&d.lineitem[0]);
        let back = line_to_row(&line);
        assert_eq!(back.field(0).as_int(), d.lineitem[0].field(0).as_int());
        assert!(
            (back.field(2).as_f64().unwrap() - d.lineitem[0].field(2).as_f64().unwrap()).abs()
                < 1e-9
        );
    }

    #[test]
    fn foreign_keys_are_valid() {
        let d = generate(0.05, 9);
        let n_orders = d.orders.len() as i64;
        let n_supp = d.supplier.len() as i64;
        for l in &d.lineitem {
            assert!(l.field(0).as_int().unwrap() < n_orders);
            assert!(l.field(1).as_int().unwrap() < n_supp);
        }
        let n_cust = d.customer.len() as i64;
        for o in &d.orders {
            assert!(o.field(1).as_int().unwrap() < n_cust);
        }
    }
}
