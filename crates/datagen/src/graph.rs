//! Power-law directed graph (DBpedia-pagelinks stand-in for CrocoPR).

use rheem_core::value::Value;

use crate::Rng;

/// Generate a directed graph with `vertices` vertices and roughly
/// `vertices * avg_degree` edges via preferential attachment (Barabási–
/// Albert flavour): in-degree follows a power law like real link graphs.
pub fn generate_graph(vertices: usize, avg_degree: usize, seed: u64) -> Vec<(i64, i64)> {
    let mut rng = Rng::new(seed);
    let vertices = vertices.max(2);
    let mut edges: Vec<(i64, i64)> = Vec::with_capacity(vertices * avg_degree);
    // Attachment pool: vertices appear proportionally to their in-degree.
    let mut pool: Vec<i64> = vec![0, 1];
    edges.push((0, 1));
    for v in 1..vertices as i64 {
        for _ in 0..avg_degree.max(1) {
            // 80% preferential, 20% uniform (keeps the graph connected-ish).
            let dst = if rng.unit() < 0.8 && !pool.is_empty() {
                pool[rng.below(pool.len() as u64) as usize]
            } else {
                rng.below(vertices as u64) as i64
            };
            if dst != v {
                edges.push((v, dst));
                pool.push(dst);
            }
        }
        pool.push(v);
    }
    edges
}

/// Edge list as quanta of `(src, dst)` pairs.
pub fn edges_to_values(edges: &[(i64, i64)]) -> Vec<Value> {
    edges.iter().map(|&(s, d)| Value::pair(Value::from(s), Value::from(d))).collect()
}

/// Parse a `src<TAB>dst` line.
pub fn line_to_edge(line: &str) -> Option<Value> {
    let mut it = line.split_whitespace();
    let s = it.next()?.parse::<i64>().ok()?;
    let d = it.next()?.parse::<i64>().ok()?;
    Some(Value::pair(Value::from(s), Value::from(d)))
}

/// Write an edge list file (`src<TAB>dst` per line).
pub fn write_graph(path: &std::path::Path, edges: &[(i64, i64)]) -> std::io::Result<u64> {
    rheem_storage::write_lines(path, edges.iter().map(|(s, d)| format!("{s}\t{d}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn graph_has_powerlaw_indegree() {
        let edges = generate_graph(2000, 5, 5);
        assert!(edges.len() > 5000);
        let mut indeg: HashMap<i64, usize> = HashMap::new();
        for &(_, d) in &edges {
            *indeg.entry(d).or_default() += 1;
        }
        let max = *indeg.values().max().unwrap();
        let mean = edges.len() as f64 / indeg.len() as f64;
        // a hub should exist well above the mean
        assert!(max as f64 > mean * 8.0, "max {max}, mean {mean}");
        // no self loops
        assert!(edges.iter().all(|&(s, d)| s != d));
    }

    #[test]
    fn edge_serialization_roundtrip() {
        let edges = generate_graph(50, 3, 1);
        let vals = edges_to_values(&edges);
        assert_eq!(vals.len(), edges.len());
        let line = format!("{}\t{}", edges[0].0, edges[0].1);
        let v = line_to_edge(&line).unwrap();
        assert_eq!(v.field(0).as_int(), Some(edges[0].0));
        assert!(line_to_edge("garbage").is_none());
    }
}
