//! Tax records with planted denial-constraint violations (the Tax dataset
//! of \[31\], driving BigDansing's error detection in Fig. 2(a)).
//!
//! The constraint: `∀t1,t2 ¬(t1.salary > t2.salary ∧ t1.tax < t2.tax)` —
//! someone earning more must not pay less tax.

use rheem_core::value::Value;

use crate::Rng;

/// Tuple layout of a tax record.
pub mod fields {
    /// Record id.
    pub const ID: usize = 0;
    /// Zip code.
    pub const ZIP: usize = 1;
    /// Salary.
    pub const SALARY: usize = 2;
    /// Tax paid.
    pub const TAX: usize = 3;
}

/// Generate `n` tax records; a `violation_rate` fraction get a tax value
/// inconsistent with the progressive schedule, planting detectable errors.
pub fn generate_tax(n: usize, violation_rate: f64, seed: u64) -> Vec<Value> {
    let mut rng = Rng::new(seed);
    (0..n)
        .map(|i| {
            let salary = 20_000 + rng.below(180_000) as i64;
            // Progressive schedule: tax strictly increases with salary.
            let mut tax = salary / 5 + salary * salary / 40_000_000;
            if rng.unit() < violation_rate {
                // Plant a violation: dramatically underpaid tax.
                tax = (tax / 10).max(1);
            }
            Value::tuple(vec![
                Value::from(i),
                Value::from(10_000 + rng.below(90_000) as i64),
                Value::from(salary),
                Value::from(tax),
            ])
        })
        .collect()
}

/// Count true violating pairs by brute force (test oracle; O(n²)).
pub fn count_violations_bruteforce(rows: &[Value]) -> usize {
    let mut count = 0;
    for t1 in rows {
        for t2 in rows {
            if t1.field(fields::SALARY) > t2.field(fields::SALARY)
                && t1.field(fields::TAX) < t2.field(fields::TAX)
            {
                count += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_data_has_few_violations() {
        let rows = generate_tax(300, 0.0, 1);
        // the schedule is monotone: salary> implies tax>=
        assert_eq!(count_violations_bruteforce(&rows), 0);
    }

    #[test]
    fn planted_violations_are_detectable() {
        let rows = generate_tax(300, 0.1, 2);
        assert!(count_violations_bruteforce(&rows) > 100);
    }

    #[test]
    fn record_shape() {
        let rows = generate_tax(10, 0.5, 3);
        assert_eq!(rows.len(), 10);
        for r in rows {
            assert_eq!(r.fields().unwrap().len(), 4);
            assert!(r.field(fields::SALARY).as_int().unwrap() >= 20_000);
            assert!(r.field(fields::TAX).as_int().unwrap() > 0);
        }
    }
}
