//! Synthetic dataset generators standing in for the paper's workloads
//! (Table 1 and §2): a Zipf-worded text corpus (Wikipedia abstracts), dense
//! labelled points (HIGGS / rcv1 / synthetic SVM), a power-law link graph
//! (DBpedia pagelinks), tax records with planted denial-constraint
//! violations (the Tax dataset of \[31\]), and scaled TPC-H tables for Q5.
//!
//! All generators are deterministic given a seed.

#![warn(missing_docs)]

pub mod graph;
pub mod points;
pub mod tax;
pub mod text;
pub mod tpch;

pub use graph::generate_graph;
pub use points::generate_points;
pub use tax::generate_tax;
pub use text::generate_text;

/// Deterministic generator RNG shared by the modules (SplitMix64).
pub struct Rng(u64);

impl Rng {
    /// Seeded RNG.
    pub fn new(seed: u64) -> Self {
        Self(seed)
    }

    /// Next pseudo-random u64.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Approximately normal via sum of uniforms.
    pub fn gaussian(&mut self) -> f64 {
        (0..12).map(|_| self.unit()).sum::<f64>() - 6.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_uniformish() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut r = Rng::new(42);
        let mean: f64 = (0..10_000).map(|_| r.unit()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "{mean}");
        let g: f64 = (0..10_000).map(|_| r.gaussian()).sum::<f64>() / 10_000.0;
        assert!(g.abs() < 0.1, "{g}");
    }
}
