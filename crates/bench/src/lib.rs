//! Benchmark harness: shared task builders, contexts and reporting for the
//! `fig*` binaries that regenerate every table and figure of the paper's
//! evaluation (see DESIGN.md's per-experiment index and EXPERIMENTS.md for
//! the recorded numbers).
//!
//! Reported runtimes are **virtual cluster milliseconds** (see
//! `rheem_core::platform` for the virtual-time substitution rationale);
//! the shapes — who wins, by what factor, where crossovers fall — are the
//! reproduction targets, not absolute numbers.

#![warn(missing_docs)]

use std::fmt::Write as _;
use std::path::PathBuf;

use rheem_core::api::RheemContext;
use rheem_core::error::Result;
use rheem_core::plan::{OperatorId, PlanBuilder, RheemPlan};
use rheem_core::platform::{ids, PlatformId};
use rheem_core::udf::{FlatMapUdf, KeyUdf, MapUdf, ReduceUdf};

/// A context with JavaStreams + Spark + Flink (the general-purpose trio).
pub fn default_context() -> RheemContext {
    RheemContext::new()
        .with_platform(&platform_javastreams::JavaStreamsPlatform::new())
        .with_platform(&platform_spark::SparkPlatform::new())
        .with_platform(&platform_flink::FlinkPlatform::new())
}

/// The default context plus the graph platforms.
pub fn graph_context() -> RheemContext {
    let mut ctx = default_context();
    ctx.register_platform(&platform_graph::GiraphPlatform::new());
    ctx.register_platform(&platform_graph::JGraphPlatform::new());
    ctx.register_platform(&platform_graph::GraphChiPlatform::new());
    ctx
}

/// Result collector: prints aligned rows and accumulates a TSV file under
/// `results/`.
pub struct Report {
    name: String,
    tsv: String,
}

impl Report {
    /// Start a report for one figure.
    pub fn new(name: &str) -> Self {
        println!("== {name} ==");
        Self { name: name.to_string(), tsv: String::from("series\tx\tvirtual_ms\tnote\n") }
    }

    /// Record one measurement.
    pub fn row(&mut self, series: &str, x: impl std::fmt::Display, virtual_ms: f64, note: &str) {
        println!("{series:<28} x={x:<10} {:>12.1} ms  {note}", virtual_ms);
        let _ = writeln!(self.tsv, "{series}\t{x}\t{virtual_ms:.3}\t{note}");
    }

    /// Record a failure (the paper's red ✗ / "killed" marks).
    pub fn failed(&mut self, series: &str, x: impl std::fmt::Display, why: &str) {
        println!("{series:<28} x={x:<10} {:>12}  ✗ {why}", "-");
        let _ = writeln!(self.tsv, "{series}\t{x}\tNaN\t✗ {why}");
    }

    /// Flush the TSV under `results/<name>.tsv`.
    pub fn save(&self) {
        let dir = PathBuf::from("results");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join(format!("{}.tsv", self.name));
        if std::fs::write(&path, &self.tsv).is_ok() {
            println!("-- saved {}", path.display());
        }
    }
}

/// Minimal wall-clock micro-benchmark support (replaces the external
/// criterion dependency): warm up once, run a fixed iteration count, report
/// mean and min wall-clock ms.
pub mod harness {
    use std::time::Instant;

    /// One measured series.
    #[derive(Clone, Debug)]
    pub struct Measurement {
        /// Series label.
        pub name: String,
        /// Mean wall-clock per iteration.
        pub mean_ms: f64,
        /// Fastest iteration.
        pub min_ms: f64,
        /// Iterations measured (after one warm-up run).
        pub iters: u32,
    }

    /// Time `f` over `iters` runs after one warm-up; prints an aligned row
    /// and returns the measurement.
    pub fn bench<T>(name: &str, iters: u32, mut f: impl FnMut() -> T) -> Measurement {
        let _ = f(); // warm-up
        let mut total = 0.0;
        let mut min = f64::INFINITY;
        for _ in 0..iters.max(1) {
            let t = Instant::now();
            std::hint::black_box(f());
            let ms = t.elapsed().as_secs_f64() * 1000.0;
            total += ms;
            min = min.min(ms);
        }
        let m = Measurement {
            name: name.to_string(),
            mean_ms: total / iters.max(1) as f64,
            min_ms: min,
            iters: iters.max(1),
        };
        println!(
            "{:<40} {:>10.2} ms/iter  (min {:>8.2} ms, {} iters)",
            m.name, m.mean_ms, m.min_ms, m.iters
        );
        m
    }
}

/// Scale knob shared by the harness binaries: `RHEEM_BENCH_SCALE` (default
/// 1.0) multiplies dataset sizes, letting CI run tiny sweeps and a real
/// machine run the full ones.
pub fn scale() -> f64 {
    std::env::var("RHEEM_BENCH_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(1.0)
}

// ---------------------------------------------------------------------------
// Task builders
// ---------------------------------------------------------------------------

/// Build the WordCount plan over a text file (Table 1's text-mining task).
///
/// Built from the spec'd UDF constructors, so the whole tokenize → pair →
/// sum-by-key chain compiles to vector kernels under `RHEEM_BATCH=on`
/// (identical row-mode semantics; see `rheem_core::batch`).
pub fn wordcount_plan(path: impl Into<PathBuf>) -> Result<(RheemPlan, OperatorId)> {
    let mut b = PlanBuilder::new();
    let sink = b
        .read_text_file(path.into())
        .flat_map(FlatMapUdf::split_whitespace("split"))
        .map(MapUdf::pair_with_int("pair", 1))
        .reduce_by_key(KeyUdf::field(0), ReduceUdf::pair_int_sum("sum"))
        .collect();
    b.build().map(|p| (p, sink))
}

/// Write a WordCount corpus of `kb` kilobytes to HDFS; returns its URI.
pub fn corpus_file(tag: &str, kb: usize, seed: u64) -> PathBuf {
    let path = PathBuf::from(format!("hdfs://bench/{tag}_{kb}kb.txt"));
    if rheem_storage::stat(&path).is_err() {
        rheem_datagen::text::write_corpus(&path, kb, seed).expect("corpus written");
    }
    path
}

/// Write a CrocoPR community pair of roughly `edges` edges; returns the two
/// edge-file URIs.
pub fn community_files(tag: &str, edges: usize, seed: u64) -> (PathBuf, PathBuf) {
    let fa = PathBuf::from(format!("hdfs://bench/{tag}_{edges}_a.edges"));
    let fb = PathBuf::from(format!("hdfs://bench/{tag}_{edges}_b.edges"));
    if rheem_storage::stat(&fa).is_err() {
        let vertices = (edges / 4).max(16);
        let ea = rheem_datagen::generate_graph(vertices, 4, seed);
        let eb: Vec<(i64, i64)> = ea
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 3 != 0)
            .map(|(_, e)| *e)
            .chain((0..edges as i64 / 10).map(|i| (i, i + 1)))
            .collect();
        rheem_datagen::graph::write_graph(&fa, &ea).expect("graph a");
        rheem_datagen::graph::write_graph(&fb, &eb).expect("graph b");
    }
    (fa, fb)
}

/// Run a plan on a context, returning the job's virtual ms.
pub fn run_virtual(ctx: &RheemContext, plan: &RheemPlan) -> Result<f64> {
    Ok(ctx.execute(plan)?.metrics.virtual_ms)
}

/// Run a plan forced onto one platform; `Err` maps to the paper's ✗ marks
/// (platform can't run it / out of memory).
pub fn run_forced(
    base: impl Fn() -> RheemContext,
    platform: PlatformId,
    plan: &RheemPlan,
) -> Result<f64> {
    let mut ctx = base();
    ctx.forced_platform = Some(platform);
    run_virtual(&ctx, plan)
}

/// Pretty platform label used in reports.
pub fn label(p: PlatformId) -> &'static str {
    match p {
        x if x == ids::JAVA_STREAMS => "JavaStreams",
        x if x == ids::SPARK => "Spark",
        x if x == ids::FLINK => "Flink",
        x if x == ids::POSTGRES => "Postgres",
        x if x == ids::GIRAPH => "Giraph",
        x if x == ids::JGRAPH => "JGraph",
        x if x == ids::GRAPHCHI => "GraphChi",
        _ => "?",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wordcount_task_runs_on_default_context() {
        let path = corpus_file("libtest", 64, 3);
        let (plan, sink) = wordcount_plan(&path).unwrap();
        let ctx = default_context();
        let result = ctx.execute(&plan).unwrap();
        assert!(!result.sink(sink).unwrap().is_empty());
        assert!(result.metrics.virtual_ms > 0.0);
    }

    #[test]
    fn community_files_are_cached() {
        let (fa, _) = community_files("libtest", 2000, 5);
        let (fa2, _) = community_files("libtest", 2000, 5);
        assert_eq!(fa, fa2);
        assert!(rheem_storage::stat(&fa).unwrap().0 > 0);
    }

    #[test]
    fn report_collects_rows() {
        let mut r = Report::new("selftest");
        r.row("a", 1, 10.0, "");
        r.failed("b", 2, "killed");
        assert!(r.tsv.contains("a\t1"));
        assert!(r.tsv.contains("✗"));
    }
}
