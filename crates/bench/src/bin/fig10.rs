//! Regenerates **Figure 10**: (a) the TPC-H Q5 join subquery (SUPPLIER ⋈
//! CUSTOMER on `nationkey`, data in Postgres) — Rheem vs all-in-Postgres;
//! (b) the progressive optimizer on/off under a wrong selectivity hint;
//! (c) the data-exploration (sniffer) overhead.
//!
//! Usage: `fig10 [a|b|c|all]`.

use std::sync::Arc;

use platform_postgres::{PgDatabase, PostgresPlatform};
use rheem_bench::*;
use rheem_core::udf::{CmpOp, KeyUdf, MapUdf, PredicateUdf, ReduceUdf, Sarg};
use rheem_core::value::Value;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let s = scale();
    match which.as_str() {
        "a" => fig10a(s),
        "b" => fig10b(s),
        "c" => fig10c(s),
        _ => {
            fig10a(s);
            fig10b(s);
            fig10c(s);
        }
    }
}

fn polystore_ctx(db: &Arc<PgDatabase>) -> rheem_core::api::RheemContext {
    let mut ctx = default_context();
    ctx.register_platform(&PostgresPlatform::new(Arc::clone(db)));
    ctx
}

/// (a) Join task: Rheem (free: projection in the DB, join on a parallel
/// engine) vs Postgres-only (the "obvious" platform for the query).
fn fig10a(s: f64) {
    let mut report = Report::new("fig10a_join");
    for sf in [1.0, 10.0] {
        let data = rheem_datagen::tpch::generate(sf * s, 11);
        let p = dataciv::place(&data, &format!("fig10a_sf{sf}")).expect("placement");
        let (plan, _) = dataciv::build_join_task(&p.db).expect("plan");
        let tag = format!("sf{sf}");

        let ctx = polystore_ctx(&p.db);
        match ctx.execute(&plan) {
            Ok(r) => report.row(
                "Rheem",
                &tag,
                r.metrics.virtual_ms,
                &format!("via {:?}", r.metrics.platforms),
            ),
            Err(e) => report.failed("Rheem", &tag, &e.to_string()),
        }

        let mut pg_only = polystore_ctx(&p.db);
        pg_only.forced_platform = Some(rheem_core::platform::ids::POSTGRES);
        match pg_only.execute(&plan) {
            Ok(r) => report.row("Postgres", &tag, r.metrics.virtual_ms, ""),
            Err(e) => report.failed("Postgres", &tag, &e.to_string()),
        }
    }
    report.save();
}

/// The Fig. 10(b) task: the join extended with a selection whose
/// selectivity hint is wildly wrong (the user claims 0.0001, the predicate
/// keeps almost everything).
fn misestimated_plan(n: usize) -> (rheem_core::plan::RheemPlan, rheem_core::plan::OperatorId) {
    let mut b = rheem_core::plan::PlanBuilder::new();
    let suppliers = b.collection(
        (0..n as i64)
            .map(|i| Value::tuple(vec![Value::from(i), Value::from(i % 25)]))
            .collect::<Vec<_>>(),
    );
    let customers = b.collection(
        (0..(n as i64) * 4)
            .map(|i| Value::tuple(vec![Value::from(i), Value::from(i % 25)]))
            .collect::<Vec<_>>(),
    );
    // "low-selective predicate on the names" — the hint says high-selective.
    let filtered = suppliers
        .filter_sarg(
            PredicateUdf::new("name_like", |v| v.field(0).as_int().unwrap_or(0) >= 2),
            Sarg { field: 0, op: CmpOp::Ge, literal: Value::from(2) },
        )
        .with_selectivity(0.0001); // wrong: the truth is ≈1.0
    let sink = filtered
        .join(&customers, KeyUdf::field(1), KeyUdf::field(1))
        .map(MapUdf::new("nk", |p| Value::pair(p.field(0).field(1).clone(), Value::from(1))))
        .reduce_by_key(
            KeyUdf::field(0),
            ReduceUdf::new("cnt", |a, b| {
                Value::pair(
                    a.field(0).clone(),
                    Value::from(
                        a.field(1).as_int().unwrap_or(0) + b.field(1).as_int().unwrap_or(0),
                    ),
                )
            }),
        )
        .collect();
    (b.build().expect("plan"), sink)
}

/// (b) Progressive optimization on/off.
fn fig10b(s: f64) {
    let mut report = Report::new("fig10b_progressive");
    // keep the join output bounded: n rows × 4n rows over 25 keys
    let n = (6_000.0 * s) as usize;
    let (plan, _) = misestimated_plan(n.max(100));
    for progressive in [false, true] {
        let mut ctx = default_context();
        ctx.config_mut().progressive = progressive;
        match ctx.execute(&plan) {
            Ok(r) => report.row(
                if progressive { "PO on" } else { "PO off" },
                n,
                r.metrics.virtual_ms,
                &format!("replans={} via {:?}", r.metrics.replans, r.metrics.platforms),
            ),
            Err(e) => {
                report.failed(if progressive { "PO on" } else { "PO off" }, n, &e.to_string())
            }
        }
    }
    report.save();
}

/// (c) Exploratory mode: the modified WordCount (words shorter/longer than
/// 10 chars) with sniffers on vs off.
fn fig10c(s: f64) {
    let mut report = Report::new("fig10c_exploration");
    let kb = (4_000.0 * s) as usize;
    let path = corpus_file("fig10c", kb.max(8), 3);
    let mut b = rheem_core::plan::PlanBuilder::new();
    b.read_text_file(&path)
        .flat_map(rheem_core::udf::FlatMapUdf::new("split", |v| {
            v.as_str().unwrap_or("").split_whitespace().map(Value::from).collect()
        }))
        .map(MapUdf::new("len_class", |w| {
            Value::pair(
                Value::from(w.as_str().map(|s| s.len() >= 10).unwrap_or(false)),
                Value::from(1),
            )
        }))
        .reduce_by_key(
            KeyUdf::field(0),
            ReduceUdf::new("cnt", |a, b| {
                Value::pair(
                    a.field(0).clone(),
                    Value::from(
                        a.field(1).as_int().unwrap_or(0) + b.field(1).as_int().unwrap_or(0),
                    ),
                )
            }),
        )
        .collect();
    let plan = b.build().expect("plan");
    let mut base_ms = 0.0;
    for exploration in [false, true] {
        let mut ctx = default_context();
        ctx.config_mut().exploration = exploration;
        match ctx.execute(&plan) {
            Ok(r) => {
                let label = if exploration { "DE on" } else { "DE off" };
                let note = if exploration && base_ms > 0.0 {
                    format!(
                        "taps={} overhead {:+.0}%",
                        r.exploration.taps.len(),
                        (r.metrics.virtual_ms / base_ms - 1.0) * 100.0
                    )
                } else {
                    base_ms = r.metrics.virtual_ms;
                    String::new()
                };
                report.row(label, kb, r.metrics.virtual_ms, &note);
            }
            Err(e) => report.failed("DE", kb, &e.to_string()),
        }
    }
    report.save();
}
