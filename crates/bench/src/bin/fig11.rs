//! Regenerates **Figure 11** — Rheem vs Musketeer on CrocoPR, varying the
//! dataset size (at 10 iterations) and the iteration count (at 10% of the
//! dataset). Musketeer re-compiles generated code and materializes to HDFS
//! per stage/iteration, so its runtime grows with iterations while Rheem's
//! stays nearly flat.

use rheem_bench::*;

fn main() {
    let s = scale();
    let base_edges = (400_000.0 * s) as usize;
    let mut report = Report::new("fig11_musketeer");

    // --- left panel: dataset size sweep at 10 iterations -----------------
    for pct in [1.0, 50.0, 100.0] {
        let edges = ((base_edges as f64) * pct / 100.0).max(64.0) as usize;
        let (fa, fb) = community_files("fig11", edges, 77);
        let (plan, _) =
            xdb::build_crocopr_plan(xdb::CrocoSource::Files(fa.clone(), fb.clone()), 10)
                .expect("plan");
        let ctx = graph_context();
        match ctx.execute(&plan) {
            Ok(r) => report.row(
                "Rheem (size)",
                format!("{pct}%"),
                r.metrics.virtual_ms,
                &format!("via {:?}", r.metrics.platforms),
            ),
            Err(e) => report.failed("Rheem (size)", format!("{pct}%"), &e.to_string()),
        }
        match rheem_baselines::musketeer_crocopr(&fa, &fb, 10) {
            Ok(m) => report.row(
                "Musketeer (size)",
                format!("{pct}%"),
                m.virtual_ms,
                &format!("{} jobs", m.jobs),
            ),
            Err(e) => report.failed("Musketeer (size)", format!("{pct}%"), &e.to_string()),
        }
    }

    // --- right panel: iteration sweep at 10% ------------------------------
    let edges = base_edges / 10;
    let (fa, fb) = community_files("fig11", edges.max(64), 77);
    for iters in [1u32, 10, 50, 100] {
        let (plan, _) =
            xdb::build_crocopr_plan(xdb::CrocoSource::Files(fa.clone(), fb.clone()), iters)
                .expect("plan");
        let ctx = graph_context();
        match ctx.execute(&plan) {
            Ok(r) => report.row(
                "Rheem (iters)",
                iters,
                r.metrics.virtual_ms,
                &format!("via {:?}", r.metrics.platforms),
            ),
            Err(e) => report.failed("Rheem (iters)", iters, &e.to_string()),
        }
        match rheem_baselines::musketeer_crocopr(&fa, &fb, iters) {
            Ok(m) => {
                report.row("Musketeer (iters)", iters, m.virtual_ms, &format!("{} jobs", m.jobs))
            }
            Err(e) => report.failed("Musketeer (iters)", iters, &e.to_string()),
        }
    }
    report.save();
}
