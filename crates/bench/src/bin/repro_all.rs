//! Run every figure harness in sequence (the full reproduction sweep) and
//! leave the TSVs under `results/`. Respects `RHEEM_BENCH_SCALE`.
//!
//! Expected wall time at scale 1.0: some tens of minutes on one core (each
//! data point executes the task for real on every platform).

use std::process::Command;

fn main() {
    let bins = ["fig2a", "fig2b", "fig2c", "fig2d", "fig9", "fig10", "fig11"];
    let exe_dir =
        std::env::current_exe().expect("current exe").parent().expect("bin dir").to_path_buf();
    for bin in bins {
        println!("\n########## {bin} ##########");
        let status = Command::new(exe_dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        if !status.success() {
            eprintln!("{bin} exited with {status}");
        }
    }
    println!("\nAll figure harnesses finished; see results/*.tsv");
}
