//! Cross-job result-cache benchmark: the repeated-exploration scenario of
//! §6 (an analyst re-evaluates the same queries while exploring a dataset,
//! Fig. 10(c)'s sniffer setting) with the cache cold, warm, and disabled.
//!
//! Measures, per workload,
//!
//! * **off** — virtual time with the cache disabled (the PR-4 baseline),
//! * **cold** — first run against an empty cache (publication overhead is
//!   zero virtual time: commits publish already-materialized channels), and
//! * **warm** — rerun against the populated cache, where enumeration picks
//!   `CachedSource` replays over recomputation.
//!
//! Results must be byte-identical across all three. Writes `BENCH_PR5.json`
//! at the repo root and exits non-zero if the warm rerun of the wordcount
//! exploration is not at least 2x cheaper in virtual time than the cold
//! run — `scripts/check.sh` runs this as a gate.
//!
//! Run with `cargo run --release --bin cache_bench`.

use std::fmt::Write as _;
use std::sync::Arc;

use rheem_bench::*;
use rheem_core::cache::ResultCache;
use rheem_core::plan::{OperatorId, RheemPlan};
use rheem_core::value::Value;

const WARM_ITERS: u32 = 3;

struct Row {
    task: &'static str,
    off_ms: f64,
    cold_ms: f64,
    warm_ms: f64,
    hits: u64,
    inserts: u64,
}

fn sorted_sink(
    ctx: &rheem_core::api::RheemContext,
    plan: &RheemPlan,
    sink: OperatorId,
) -> (Vec<Value>, f64) {
    let r = ctx.execute(plan).expect("bench job");
    let mut out = r.sink(sink).expect("sink").to_vec();
    out.sort();
    (out, r.metrics.virtual_ms)
}

/// Cold-vs-warm on one plan: off-reference, cold run on a fresh cache, then
/// `WARM_ITERS` reruns (min virtual time). Asserts byte-identical results.
fn bench_rerun(task: &'static str, plan: &RheemPlan, sink: OperatorId) -> Row {
    let mut off_ctx = default_context();
    off_ctx.set_cache(None);
    let (reference, off_ms) = sorted_sink(&off_ctx, plan, sink);

    let cache = Arc::new(ResultCache::new(256 << 20));
    let ctx = default_context().with_shared_cache(Arc::clone(&cache));
    let (cold, cold_ms) = sorted_sink(&ctx, plan, sink);
    assert_eq!(cold, reference, "{task}: cold cached run diverged from the uncached run");

    let mut warm_ms = f64::INFINITY;
    for _ in 0..WARM_ITERS {
        let (warm, v) = sorted_sink(&ctx, plan, sink);
        assert_eq!(warm, reference, "{task}: warm cached run diverged from the uncached run");
        warm_ms = warm_ms.min(v);
    }
    let stats = cache.stats();
    println!(
        "{task}: off {off_ms:.1} ms, cold {cold_ms:.1} ms, warm {warm_ms:.1} ms \
         (min of {WARM_ITERS}; {} hits, {} inserts) — warm speedup {:.1}x",
        stats.hits,
        stats.inserts,
        cold_ms / warm_ms.max(1e-9)
    );
    Row { task, off_ms, cold_ms, warm_ms, hits: stats.hits, inserts: stats.inserts }
}

fn main() {
    let s = scale();
    let mut rows = Vec::new();

    // Fig. 10(c)-style repeated exploration: WordCount over the corpus the
    // analyst keeps re-querying.
    {
        let kb = ((2048.0 * s) as usize).max(64);
        let path = corpus_file("cache_bench", kb, 23);
        let (plan, sink) = wordcount_plan(&path).expect("wordcount plan");
        rows.push(bench_rerun("wordcount_rerun", &plan, sink));
    }

    // A narrower projection query over the same corpus — a second entry in
    // the exploration session, with its own reuse opportunity.
    {
        let kb = ((2048.0 * s) as usize).max(64);
        let path = corpus_file("cache_bench", kb, 23);
        let mut b = rheem_core::plan::PlanBuilder::new();
        let sink = b
            .read_text_file(path)
            .flat_map(rheem_core::udf::FlatMapUdf::new("split", |v| {
                v.as_str().unwrap_or("").split_whitespace().map(Value::from).collect()
            }))
            .filter(rheem_core::udf::PredicateUdf::new("long", |v| {
                v.as_str().map(|s| s.len() > 6).unwrap_or(false)
            }))
            .distinct()
            .count()
            .collect();
        let plan = b.build().expect("projection plan");
        rows.push(bench_rerun("long_words_count", &plan, sink));
    }

    // Gates: every warm rerun must actually reuse (hits > 0) and never cost
    // more than its cold run; the headline wordcount exploration must be at
    // least 2x cheaper warm than cold.
    for r in &rows {
        assert!(r.hits > 0, "{}: warm reruns never hit the cache", r.task);
        assert!(r.inserts > 0, "{}: cold run published nothing", r.task);
        assert!(
            r.warm_ms <= r.cold_ms + 1e-9,
            "{}: warm rerun ({:.1} ms) costs more than cold ({:.1} ms)",
            r.task,
            r.warm_ms,
            r.cold_ms
        );
    }
    let wc = rows.iter().find(|r| r.task == "wordcount_rerun").expect("wordcount benched");
    let speedup = wc.cold_ms / wc.warm_ms.max(1e-9);
    assert!(
        speedup >= 2.0,
        "wordcount warm rerun speedup {speedup:.2}x below the 2x gate \
         (cold {:.1} ms, warm {:.1} ms)",
        wc.cold_ms,
        wc.warm_ms
    );

    let mut report = Report::new("cache_bench");
    for r in &rows {
        report.row("off", r.task, r.off_ms, "");
        report.row("cold", r.task, r.cold_ms, "");
        report.row("warm", r.task, r.warm_ms, &format!("{} hits", r.hits));
    }
    report.save();

    let mut json = String::from("{\n  \"bench\": \"cache_bench\",\n");
    let _ = writeln!(json, "  \"warm_iters\": {WARM_ITERS},");
    json.push_str("  \"tasks\": {\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    \"{}\": {{ \"off_virtual_ms\": {:.3}, \"cold_virtual_ms\": {:.3}, \
             \"warm_virtual_ms\": {:.3}, \"warm_speedup\": {:.3}, \"hits\": {}, \
             \"inserts\": {} }}{}",
            r.task,
            r.off_ms,
            r.cold_ms,
            r.warm_ms,
            r.cold_ms / r.warm_ms.max(1e-9),
            r.hits,
            r.inserts,
            comma
        );
    }
    json.push_str("  }\n}\n");
    std::fs::write("BENCH_PR5.json", &json).expect("write BENCH_PR5.json");
    println!("-- wrote BENCH_PR5.json ({} tasks)", rows.len());
}
