//! Cross-job result-cache benchmark: the repeated-exploration scenario of
//! §6 (an analyst re-evaluates the same queries while exploring a dataset,
//! Fig. 10(c)'s sniffer setting) with the cache cold, warm, and disabled.
//!
//! Measures, per workload,
//!
//! * **off** — virtual time with the cache disabled (the PR-4 baseline),
//! * **cold** — first run against an empty cache (publication overhead is
//!   zero virtual time: commits publish already-materialized channels), and
//! * **warm** — rerun against the populated cache, where enumeration picks
//!   `CachedSource` replays over recomputation.
//!
//! Results must be byte-identical across all three. Writes `BENCH_PR5.json`
//! at the repo root and exits non-zero if the warm rerun of the wordcount
//! exploration is not at least 2x cheaper in virtual time than the cold
//! run — `scripts/check.sh` runs this as a gate.
//!
//! PR 10 adds two workloads, reported to `BENCH_PR10.json` and gated the
//! same way:
//!
//! * **structural sharing** — a *different* query that only shares the
//!   tokenize prefix with the wordcount must replay that prefix from the
//!   interior cut-point fingerprint and run at least 2x cheaper than
//!   uncached, and
//! * **spill replay** — with a memory budget below the working set and a
//!   disk tier configured, publications spill instead of evicting; warm
//!   reruns replay from disk (promoting back to memory), stay at least 2x
//!   cheaper than cold, and resident bytes never exceed the memory budget.
//!
//! Run with `cargo run --release --bin cache_bench`.

use std::fmt::Write as _;
use std::sync::Arc;

use rheem_bench::*;
use rheem_core::cache::ResultCache;
use rheem_core::plan::{OperatorId, RheemPlan};
use rheem_core::value::Value;

const WARM_ITERS: u32 = 3;

struct Row {
    task: &'static str,
    off_ms: f64,
    cold_ms: f64,
    warm_ms: f64,
    hits: u64,
    inserts: u64,
}

fn sorted_sink(
    ctx: &rheem_core::api::RheemContext,
    plan: &RheemPlan,
    sink: OperatorId,
) -> (Vec<Value>, f64) {
    let r = ctx.execute(plan).expect("bench job");
    let mut out = r.sink(sink).expect("sink").to_vec();
    out.sort();
    (out, r.metrics.virtual_ms)
}

/// Cold-vs-warm on one plan: off-reference, cold run on a fresh cache, then
/// `WARM_ITERS` reruns (min virtual time). Asserts byte-identical results.
fn bench_rerun(task: &'static str, plan: &RheemPlan, sink: OperatorId) -> Row {
    let mut off_ctx = default_context();
    off_ctx.set_cache(None);
    let (reference, off_ms) = sorted_sink(&off_ctx, plan, sink);

    let cache = Arc::new(ResultCache::new(256 << 20));
    let ctx = default_context().with_shared_cache(Arc::clone(&cache));
    let (cold, cold_ms) = sorted_sink(&ctx, plan, sink);
    assert_eq!(cold, reference, "{task}: cold cached run diverged from the uncached run");

    let mut warm_ms = f64::INFINITY;
    for _ in 0..WARM_ITERS {
        let (warm, v) = sorted_sink(&ctx, plan, sink);
        assert_eq!(warm, reference, "{task}: warm cached run diverged from the uncached run");
        warm_ms = warm_ms.min(v);
    }
    let stats = cache.stats();
    println!(
        "{task}: off {off_ms:.1} ms, cold {cold_ms:.1} ms, warm {warm_ms:.1} ms \
         (min of {WARM_ITERS}; {} hits, {} inserts) — warm speedup {:.1}x",
        stats.hits,
        stats.inserts,
        cold_ms / warm_ms.max(1e-9)
    );
    Row { task, off_ms, cold_ms, warm_ms, hits: stats.hits, inserts: stats.inserts }
}

/// The expensive normalization step both exploration queries share: an
/// opaque per-word "stemming" UDF whose cost hint dominates the pipeline.
fn stem_udf() -> rheem_core::udf::MapUdf {
    rheem_core::udf::MapUdf::new("stem", |v| {
        Value::from(v.as_str().unwrap_or("").trim_matches(|c: char| !c.is_alphanumeric()))
    })
    .cost(64.0)
}

/// First query of the session: tokenize -> stem -> count words.
fn stemmed_wordcount_plan(path: &std::path::Path) -> (RheemPlan, OperatorId) {
    let mut b = rheem_core::plan::PlanBuilder::new();
    let sink = b
        .read_text_file(path)
        .flat_map(rheem_core::udf::FlatMapUdf::split_whitespace("split"))
        .map(stem_udf())
        .map(rheem_core::udf::MapUdf::pair_with_int("pair", 1))
        .reduce_by_key(
            rheem_core::udf::KeyUdf::field(0),
            rheem_core::udf::ReduceUdf::pair_int_sum("sum"),
        )
        .collect();
    (b.build().expect("stemmed wordcount plan"), sink)
}

/// Second query of the session: shares only the tokenize -> stem prefix, so
/// reuse must come from the interior cut-point fingerprint published inside
/// the first query's fused chain.
fn long_stems_plan(path: &std::path::Path) -> (RheemPlan, OperatorId) {
    let mut b = rheem_core::plan::PlanBuilder::new();
    let sink = b
        .read_text_file(path)
        .flat_map(rheem_core::udf::FlatMapUdf::split_whitespace("split"))
        .map(stem_udf())
        .filter(rheem_core::udf::PredicateUdf::new("long", |v| {
            v.as_str().map(|s| s.len() > 6).unwrap_or(false)
        }))
        .count()
        .collect();
    (b.build().expect("long-stems plan"), sink)
}

/// Structural-sharing leg: run the stemmed wordcount against a fresh cache,
/// then a structurally different query over the same corpus whose only
/// overlap is the tokenize -> stem prefix. Returns (uncached ms, shared ms,
/// prefix hits).
fn bench_structural_sharing(path: &std::path::Path) -> (f64, f64, u64) {
    let (wc_plan, wc_sink) = stemmed_wordcount_plan(path);
    let (lw_plan, lw_sink) = long_stems_plan(path);

    let mut off_ctx = default_context();
    off_ctx.set_cache(None);
    let (reference, off_ms) = sorted_sink(&off_ctx, &lw_plan, lw_sink);

    let cache = Arc::new(ResultCache::new(256 << 20));
    let ctx = default_context().with_shared_cache(Arc::clone(&cache));
    sorted_sink(&ctx, &wc_plan, wc_sink);
    let before = cache.stats();

    let (shared, shared_ms) = sorted_sink(&ctx, &lw_plan, lw_sink);
    assert_eq!(shared, reference, "structural sharing changed the answer");
    let hits = cache.stats().hits - before.hits;
    println!(
        "structural_sharing: uncached {off_ms:.1} ms, shared-prefix {shared_ms:.1} ms \
         ({hits} hits) — speedup {:.1}x",
        off_ms / shared_ms.max(1e-9)
    );
    (off_ms, shared_ms, hits)
}

/// Spill-replay leg: a two-tier cache whose memory budget holds less than
/// the session's working set. Cold runs over distinct corpora spill earlier
/// publications to disk; warm reruns replay them (promoting back) and must
/// stay >= 2x cheaper. Returns (cold ms, warm ms, final stats, mem budget).
fn bench_spill_replay(kb: usize) -> (f64, f64, rheem_core::cache::CacheStats, u64) {
    // Probe: publish one job into an unbounded cache to size the budget.
    let probe_path = corpus_file("cache_spill_0", kb, 101);
    let probe_cache = Arc::new(ResultCache::new(1 << 30));
    let probe_ctx = default_context().with_shared_cache(Arc::clone(&probe_cache));
    let (probe_plan, probe_sink) = wordcount_plan(&probe_path).expect("probe plan");
    sorted_sink(&probe_ctx, &probe_plan, probe_sink);
    let per_job = probe_cache.stats().bytes.max(1);

    // Memory holds ~1.5 jobs of the 4-job session; disk holds the rest.
    let budget = per_job + per_job / 2;
    let cache = Arc::new(ResultCache::with_disk(budget, 64 << 20));
    let ctx = default_context().with_shared_cache(Arc::clone(&cache));

    let jobs: Vec<(RheemPlan, OperatorId)> = (0..4)
        .map(|i| {
            let path = corpus_file(&format!("cache_spill_{i}"), kb, 101 + i as u64);
            wordcount_plan(&path).expect("spill job plan")
        })
        .collect();

    let mut cold_ms = 0.0;
    let mut references = Vec::new();
    for (plan, sink) in &jobs {
        let (out, v) = sorted_sink(&ctx, plan, *sink);
        references.push(out);
        cold_ms += v;
    }
    let after_cold = cache.stats();
    assert!(after_cold.spills > 0, "memory pressure never spilled: {after_cold:?}");
    assert!(
        after_cold.bytes <= budget,
        "resident bytes {} exceed the memory budget {budget}",
        after_cold.bytes
    );

    let mut warm_ms = 0.0;
    for ((plan, sink), reference) in jobs.iter().zip(&references) {
        let (out, v) = sorted_sink(&ctx, plan, *sink);
        assert_eq!(&out, reference, "spill replay changed the answer");
        warm_ms += v;
    }
    let stats = cache.stats();
    assert!(stats.promotions > 0, "warm reruns never promoted from disk: {stats:?}");
    assert!(
        stats.bytes <= budget,
        "resident bytes {} exceed the memory budget {budget} after warm reruns",
        stats.bytes
    );
    println!(
        "spill_replay: cold {cold_ms:.1} ms, warm {warm_ms:.1} ms \
         ({} spills, {} promotions, resident {} / budget {budget} bytes) — speedup {:.1}x",
        stats.spills,
        stats.promotions,
        stats.bytes,
        cold_ms / warm_ms.max(1e-9)
    );
    (cold_ms, warm_ms, stats, budget)
}

fn main() {
    let s = scale();
    let mut rows = Vec::new();

    // Fig. 10(c)-style repeated exploration: WordCount over the corpus the
    // analyst keeps re-querying.
    {
        let kb = ((2048.0 * s) as usize).max(64);
        let path = corpus_file("cache_bench", kb, 23);
        let (plan, sink) = wordcount_plan(&path).expect("wordcount plan");
        rows.push(bench_rerun("wordcount_rerun", &plan, sink));
    }

    // A narrower projection query over the same corpus — a second entry in
    // the exploration session, with its own reuse opportunity.
    {
        let kb = ((2048.0 * s) as usize).max(64);
        let path = corpus_file("cache_bench", kb, 23);
        let mut b = rheem_core::plan::PlanBuilder::new();
        let sink = b
            .read_text_file(path)
            .flat_map(rheem_core::udf::FlatMapUdf::new("split", |v| {
                v.as_str().unwrap_or("").split_whitespace().map(Value::from).collect()
            }))
            .filter(rheem_core::udf::PredicateUdf::new("long", |v| {
                v.as_str().map(|s| s.len() > 6).unwrap_or(false)
            }))
            .distinct()
            .count()
            .collect();
        let plan = b.build().expect("projection plan");
        rows.push(bench_rerun("long_words_count", &plan, sink));
    }

    // Gates: every warm rerun must actually reuse (hits > 0) and never cost
    // more than its cold run; the headline wordcount exploration must be at
    // least 2x cheaper warm than cold.
    for r in &rows {
        assert!(r.hits > 0, "{}: warm reruns never hit the cache", r.task);
        assert!(r.inserts > 0, "{}: cold run published nothing", r.task);
        assert!(
            r.warm_ms <= r.cold_ms + 1e-9,
            "{}: warm rerun ({:.1} ms) costs more than cold ({:.1} ms)",
            r.task,
            r.warm_ms,
            r.cold_ms
        );
    }
    let wc = rows.iter().find(|r| r.task == "wordcount_rerun").expect("wordcount benched");
    let speedup = wc.cold_ms / wc.warm_ms.max(1e-9);
    assert!(
        speedup >= 2.0,
        "wordcount warm rerun speedup {speedup:.2}x below the 2x gate \
         (cold {:.1} ms, warm {:.1} ms)",
        wc.cold_ms,
        wc.warm_ms
    );

    // PR 10 legs: structural subplan sharing and the disk spill tier.
    let kb = ((2048.0 * s) as usize).max(64);
    let share_path = corpus_file("cache_bench", kb, 23);
    let (share_off, share_warm, share_hits) = bench_structural_sharing(&share_path);
    assert!(share_hits > 0, "shared-prefix query never hit the cut-point fingerprint");
    let share_speedup = share_off / share_warm.max(1e-9);
    assert!(
        share_speedup >= 2.0,
        "structural-sharing speedup {share_speedup:.2}x below the 2x gate \
         (uncached {share_off:.1} ms, shared {share_warm:.1} ms)"
    );

    let spill_kb = ((512.0 * s) as usize).max(64);
    let (spill_cold, spill_warm, spill_stats, spill_budget) = bench_spill_replay(spill_kb);
    let spill_speedup = spill_cold / spill_warm.max(1e-9);
    assert!(
        spill_speedup >= 2.0,
        "spill-replay speedup {spill_speedup:.2}x below the 2x gate \
         (cold {spill_cold:.1} ms, warm {spill_warm:.1} ms)"
    );

    let mut report = Report::new("cache_bench");
    for r in &rows {
        report.row("off", r.task, r.off_ms, "");
        report.row("cold", r.task, r.cold_ms, "");
        report.row("warm", r.task, r.warm_ms, &format!("{} hits", r.hits));
    }
    report.row("uncached", "structural_sharing", share_off, "");
    report.row("shared", "structural_sharing", share_warm, &format!("{share_hits} hits"));
    report.row("cold", "spill_replay", spill_cold, &format!("{} spills", spill_stats.spills));
    report.row(
        "warm",
        "spill_replay",
        spill_warm,
        &format!("{} promotions", spill_stats.promotions),
    );
    report.save();

    let mut json = String::from("{\n  \"bench\": \"cache_bench\",\n");
    let _ = writeln!(json, "  \"warm_iters\": {WARM_ITERS},");
    json.push_str("  \"tasks\": {\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    \"{}\": {{ \"off_virtual_ms\": {:.3}, \"cold_virtual_ms\": {:.3}, \
             \"warm_virtual_ms\": {:.3}, \"warm_speedup\": {:.3}, \"hits\": {}, \
             \"inserts\": {} }}{}",
            r.task,
            r.off_ms,
            r.cold_ms,
            r.warm_ms,
            r.cold_ms / r.warm_ms.max(1e-9),
            r.hits,
            r.inserts,
            comma
        );
    }
    json.push_str("  }\n}\n");
    std::fs::write("BENCH_PR5.json", &json).expect("write BENCH_PR5.json");
    println!("-- wrote BENCH_PR5.json ({} tasks)", rows.len());

    let mut json = String::from("{\n  \"bench\": \"cache_bench_pr10\",\n");
    let _ = writeln!(
        json,
        "  \"structural_sharing\": {{ \"uncached_virtual_ms\": {share_off:.3}, \
         \"shared_virtual_ms\": {share_warm:.3}, \"speedup\": {share_speedup:.3}, \
         \"prefix_hits\": {share_hits} }},"
    );
    let _ = writeln!(
        json,
        "  \"spill_replay\": {{ \"cold_virtual_ms\": {spill_cold:.3}, \
         \"warm_virtual_ms\": {spill_warm:.3}, \"speedup\": {spill_speedup:.3}, \
         \"spills\": {}, \"promotions\": {}, \"resident_bytes\": {}, \
         \"memory_budget_bytes\": {spill_budget}, \"spilled_bytes\": {} }}",
        spill_stats.spills, spill_stats.promotions, spill_stats.bytes, spill_stats.spilled_bytes
    );
    json.push_str("}\n");
    std::fs::write("BENCH_PR10.json", &json).expect("write BENCH_PR10.json");
    println!("-- wrote BENCH_PR10.json (structural sharing + spill replay)");
}
