//! Regenerates **Figure 9**: platform independence (a–c) and opportunistic
//! cross-platform processing (d–f).
//!
//! Usage: `fig9 [a|b|c|d|e|f|all]` (default `all`). Runtimes are virtual
//! cluster ms; the ★ marks the platform Rheem's optimizer selects.

use rheem_bench::*;
use rheem_core::platform::ids;
use rheem_core::value::Value;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let s = scale();
    match which.as_str() {
        "a" => fig9a(s),
        "b" => fig9b(s),
        "c" => fig9c(s),
        "d" => fig9d(s),
        "e" => fig9e(s),
        "f" => fig9f(s),
        _ => {
            fig9a(s);
            fig9b(s);
            fig9c(s);
            fig9d(s);
            fig9e(s);
            fig9f(s);
        }
    }
}

const GENERAL: [rheem_core::platform::PlatformId; 3] = [ids::JAVA_STREAMS, ids::SPARK, ids::FLINK];

/// (a) WordCount, forced single platforms + Rheem's choice.
fn fig9a(s: f64) {
    let mut report = Report::new("fig9a_wordcount_independence");
    let base_kb = (8_000.0 * s) as usize; // "100%" ≈ 8 MB of text
    for pct in [1.0, 10.0, 25.0, 50.0, 100.0, 200.0] {
        let kb = ((base_kb as f64) * pct / 100.0).max(1.0) as usize;
        let path = corpus_file("fig9a", kb, 42);
        let (plan, _) = wordcount_plan(&path).expect("plan");
        let choice = default_context().optimize(&plan).map(|o| o.platforms.clone());
        for p in GENERAL {
            match run_forced(default_context, p, &plan) {
                Ok(ms) => {
                    let star = choice.as_ref().map(|c| c.contains(&p)).unwrap_or(false);
                    report.row(label(p), format!("{pct}%"), ms, if star { "★ chosen" } else { "" });
                }
                Err(e) => report.failed(label(p), format!("{pct}%"), &e.to_string()),
            }
        }
    }
    report.save();
}

fn sgd_csv(tag: &str, n: usize, dims: usize) -> std::path::PathBuf {
    let path = std::path::PathBuf::from(format!("hdfs://bench/{tag}_{n}.csv"));
    if rheem_storage::stat(&path).is_err() {
        let set = rheem_datagen::generate_points(n, dims, 0.05, 7);
        rheem_datagen::points::write_points(&path, &set).expect("points written");
    }
    path
}

fn sgd_plan_for(
    csv: std::path::PathBuf,
    dims: usize,
    batch: usize,
    iters: u32,
) -> rheem_core::plan::RheemPlan {
    let cfg = ml4all::SgdConfig { dims, batch, iterations: iters, ..Default::default() };
    ml4all::build_sgd_plan(ml4all::PointSource::Csv(csv), &cfg).expect("sgd plan").0
}

/// (b) SGD, forced single platforms + Rheem's choice. The points live on
/// HDFS as CSV (Table 1's HIGGS placement).
fn fig9b(s: f64) {
    let mut report = Report::new("fig9b_sgd_independence");
    let base_n = (1_200_000.0 * s) as usize;
    for pct in [1.0, 10.0, 25.0, 50.0, 100.0] {
        let n = ((base_n as f64) * pct / 100.0).max(10.0) as usize;
        let plan = sgd_plan_for(sgd_csv("fig9b", n, 8), 8, 100, 50);
        let choice = default_context().optimize(&plan).map(|o| o.platforms.clone());
        for p in GENERAL {
            match run_forced(default_context, p, &plan) {
                Ok(ms) => {
                    let star = choice.as_ref().map(|c| c.contains(&p)).unwrap_or(false);
                    report.row(label(p), format!("{pct}%"), ms, if star { "★ chosen" } else { "" });
                }
                Err(e) => report.failed(label(p), format!("{pct}%"), &e.to_string()),
            }
        }
    }
    report.save();
}

fn crocopr_plan_for(
    fa: &std::path::Path,
    fb: &std::path::Path,
    iters: u32,
) -> rheem_core::plan::RheemPlan {
    xdb::build_crocopr_plan(xdb::CrocoSource::Files(fa.to_path_buf(), fb.to_path_buf()), iters)
        .expect("crocopr plan")
        .0
}

/// Force a CrocoPR plan onto `p`: graph-only engines (Giraph/JGraph/
/// GraphChi) cannot run the preparation operators, so — as the paper's
/// Giraph runs do — the graph engine gets the PageRank while the driver-
/// adjacent engine handles preparation; general-purpose engines are forced
/// outright.
fn run_crocopr_forced(
    make_ctx: &impl Fn() -> rheem_core::api::RheemContext,
    p: rheem_core::platform::PlatformId,
    fa: &std::path::Path,
    fb: &std::path::Path,
    iters: u32,
) -> rheem_core::error::Result<f64> {
    let graph_only = [ids::GIRAPH, ids::JGRAPH, ids::GRAPHCHI].contains(&p);
    let mut plan = crocopr_plan_for(fa, fb, iters);
    if graph_only {
        for i in 0..plan.len() {
            let id = rheem_core::plan::OperatorId(i as u32);
            let kind = plan.node(id).op.kind();
            if kind == rheem_core::plan::OpKind::PageRank {
                plan.set_target_platform(id, p);
            } else if !kind.is_source() && !kind.is_sink() && !kind.is_loop_head() {
                plan.set_target_platform(id, ids::JAVA_STREAMS);
            }
        }
        run_virtual(&make_ctx(), &plan)
    } else {
        run_forced(make_ctx, p, &plan)
    }
}

/// A graph context whose JGraph heap matches the paper's single-node
/// library limits (it dies beyond ~10% of the sweep).
fn crocopr_context(base_edges: usize) -> impl Fn() -> rheem_core::api::RheemContext {
    let cap_mb = (base_edges as f64 * 40.0 * 3.0 * 0.12) / (1024.0 * 1024.0);
    move || {
        let mut ctx = graph_context();
        ctx.profiles_mut().get_mut(ids::JGRAPH).mem_mb = cap_mb.max(0.5);
        ctx
    }
}

/// (c) CrocoPR, forced single platforms + Rheem's choice.
fn fig9c(s: f64) {
    let mut report = Report::new("fig9c_crocopr_independence");
    let base_edges = (400_000.0 * s) as usize;
    let make_ctx = crocopr_context(base_edges);
    let platforms = [ids::JAVA_STREAMS, ids::SPARK, ids::FLINK, ids::GIRAPH, ids::JGRAPH];
    for pct in [1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0] {
        let edges = ((base_edges as f64) * pct / 100.0).max(64.0) as usize;
        let (fa, fb) = community_files("fig9c", edges, 21);
        let plan = crocopr_plan_for(&fa, &fb, 10);
        let choice = make_ctx().optimize(&plan).map(|o| o.platforms.clone());
        for p in platforms {
            match run_crocopr_forced(&make_ctx, p, &fa, &fb, 10) {
                Ok(ms) => {
                    let star = choice.as_ref().map(|c| c.contains(&p)).unwrap_or(false);
                    report.row(label(p), format!("{pct}%"), ms, if star { "★ chosen" } else { "" });
                }
                Err(e) => report.failed(label(p), format!("{pct}%"), &e.to_string()),
            }
        }
    }
    report.save();
}

/// (d) WordCount: Rheem free to mix platforms vs the best single platform.
fn fig9d(s: f64) {
    let mut report = Report::new("fig9d_wordcount_opportunistic");
    let base_kb = (8_000.0 * s) as usize;
    for pct in [1.0, 10.0, 25.0, 50.0, 100.0, 200.0] {
        let kb = ((base_kb as f64) * pct / 100.0).max(1.0) as usize;
        let path = corpus_file("fig9a", kb, 42); // same corpus as (a)
        let (plan, _) = wordcount_plan(&path).expect("plan");
        for p in GENERAL {
            if let Ok(ms) = run_forced(default_context, p, &plan) {
                report.row(label(p), format!("{pct}%"), ms, "");
            }
        }
        let ctx = default_context();
        match ctx.execute(&plan) {
            Ok(r) => report.row(
                "Rheem",
                format!("{pct}%"),
                r.metrics.virtual_ms,
                &format!("mix {:?}", r.metrics.platforms),
            ),
            Err(e) => report.failed("Rheem", format!("{pct}%"), &e.to_string()),
        }
    }
    report.save();
}

/// (e) SGD over batch sizes: Rheem mixes Spark (data side) with JavaStreams
/// (weight side); pure-Spark pays per-iteration overheads.
fn fig9e(s: f64) {
    let mut report = Report::new("fig9e_sgd_opportunistic");
    let n = (1_200_000.0 * s) as usize;
    let csv = sgd_csv("fig9b", n.max(10), 8); // reuse (b)'s 100% file
    for batch in [1usize, 10, 50, 1000] {
        let plan = sgd_plan_for(csv.clone(), 8, batch, 50);
        for p in GENERAL {
            match run_forced(default_context, p, &plan) {
                Ok(ms) => report.row(label(p), batch, ms, ""),
                Err(e) => report.failed(label(p), batch, &e.to_string()),
            }
        }
        let ctx = default_context();
        match ctx.execute(&plan) {
            Ok(r) => report.row(
                "Rheem",
                batch,
                r.metrics.virtual_ms,
                &format!("mix {:?}", r.metrics.platforms),
            ),
            Err(e) => report.failed("Rheem", batch, &e.to_string()),
        }
    }
    report.save();
}

/// (f) CrocoPR over iteration counts: Rheem surprisingly prepares on a
/// distributed engine and ranks on the tiny intersection with JGraph.
fn fig9f(s: f64) {
    let mut report = Report::new("fig9f_crocopr_opportunistic");
    let base_edges = (400_000.0 * s) as usize;
    let edges = base_edges / 10; // the paper runs (f) on 10% of the dataset
    let make_ctx = crocopr_context(base_edges);
    let (fa, fb) = community_files("fig9c", edges.max(64), 21);
    for iters in [1u32, 10, 100, 1000] {
        let plan = crocopr_plan_for(&fa, &fb, iters);
        for p in [ids::JAVA_STREAMS, ids::SPARK, ids::FLINK, ids::GIRAPH, ids::JGRAPH] {
            match run_crocopr_forced(&make_ctx, p, &fa, &fb, iters) {
                Ok(ms) => report.row(label(p), iters, ms, ""),
                Err(e) => report.failed(label(p), iters, &e.to_string()),
            }
        }
        match make_ctx().execute(&plan) {
            Ok(r) => report.row(
                "Rheem",
                iters,
                r.metrics.virtual_ms,
                &format!("mix {:?}", r.metrics.platforms),
            ),
            Err(e) => report.failed("Rheem", iters, &e.to_string()),
        }
    }
    report.save();
}

#[allow(dead_code)]
fn unused(_: Value) {}
