//! Tracing-overhead benchmark: WordCount wall-clock with the trace
//! subsystem on vs off, plus trace-derived per-stage virtual timings,
//! written to `BENCH_PR3.json` at the repo root.
//!
//! The acceptance bar is that span collection costs < 5% wall-clock on
//! WordCount (minimum over many iterations, so scheduler noise cancels).
//!
//! Run with `cargo run --release --bin trace_bench`.

use std::fmt::Write as _;
use std::time::Instant;

use rheem_bench::{corpus_file, default_context, wordcount_plan};

const ITERS: u32 = 40;

fn min_wall_ms(tracing: bool, plan: &rheem_core::plan::RheemPlan) -> f64 {
    let mut ctx = default_context();
    ctx.config_mut().tracing = tracing;
    ctx.execute(plan).unwrap(); // warm-up
    let mut min = f64::INFINITY;
    for _ in 0..ITERS {
        let t = Instant::now();
        ctx.execute(plan).unwrap();
        min = min.min(t.elapsed().as_secs_f64() * 1000.0);
    }
    min
}

fn main() {
    let path = corpus_file("trace_bench", 256, 5);
    let (plan, _) = wordcount_plan(&path).unwrap();

    let off_ms = min_wall_ms(false, &plan);
    let on_ms = min_wall_ms(true, &plan);
    let overhead_pct = ((on_ms - off_ms) / off_ms * 100.0).max(0.0);
    println!(
        "wordcount: tracing off {off_ms:.3} ms, on {on_ms:.3} ms -> overhead {overhead_pct:.2}% \
         (min of {ITERS})"
    );
    assert!(
        overhead_pct < 5.0,
        "tracing overhead {overhead_pct:.2}% exceeds the 5% budget ({off_ms:.3} -> {on_ms:.3} ms)"
    );

    // Per-stage virtual timings straight from the trace of one traced run.
    let ctx = default_context();
    let result = ctx.execute(&plan).unwrap();
    let trace = result.trace.expect("tracing on");
    let mut stages: Vec<(String, f64, u32)> = Vec::new();
    for r in trace.runs.iter().filter(|r| !r.superseded) {
        let key = format!("phase{}/stage{} [{}]", r.phase, r.stage, r.platform);
        match stages.iter_mut().find(|(k, _, _)| *k == key) {
            Some((_, ms, n)) => {
                *ms += r.virtual_ms;
                *n += 1;
            }
            None => stages.push((key, r.virtual_ms, 1)),
        }
    }

    let mut json = String::from("{\n  \"bench\": \"trace_bench\",\n  \"task\": \"wordcount\",\n");
    let _ = writeln!(json, "  \"iters\": {ITERS},");
    let _ = writeln!(json, "  \"tracing_off_min_ms\": {off_ms:.3},");
    let _ = writeln!(json, "  \"tracing_on_min_ms\": {on_ms:.3},");
    let _ = writeln!(json, "  \"overhead_pct\": {overhead_pct:.3},");
    let _ = writeln!(json, "  \"job_virtual_ms\": {:.3},", result.metrics.virtual_ms);
    json.push_str("  \"stages_virtual_ms\": {\n");
    for (i, (key, ms, runs)) in stages.iter().enumerate() {
        let comma = if i + 1 < stages.len() { "," } else { "" };
        let _ =
            writeln!(json, "    \"{key}\": {{ \"virtual_ms\": {ms:.3}, \"runs\": {runs} }}{comma}");
    }
    json.push_str("  }\n}\n");
    std::fs::write("BENCH_PR3.json", &json).expect("write BENCH_PR3.json");
    println!("-- wrote BENCH_PR3.json ({} stage rows)", stages.len());
}
