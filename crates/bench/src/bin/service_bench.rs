//! Job-service benchmark: multi-tenant concurrent submission vs strictly
//! serial submission of the same mixed workload (Fig. 2(d) polystore Q5,
//! Fig. 10(a) join task, Fig. 9-style WordCount) at 1, 4 and 16 tenants.
//! Measures
//!
//! * **virtual throughput and latency** from the deterministic fair-share
//!   simulator fed with per-stage virtual durations profiled from one
//!   traced run per job kind — host-independent, so the ≥2x gate holds on
//!   any machine (including single-CPU CI, where wall-clock overlap cannot
//!   exist), and
//! * **wall-clock jobs/sec and p50/p99 latency** from driving the real
//!   [`rheem_core::service::JobService`] — reported, not gated: on a
//!   single-CPU host the runners serialize and the two modes tie, which is
//!   the intended behavior (concurrency must never cost wall time).
//!
//! Writes `BENCH_PR7.json` at the repo root and fails (non-zero exit) if
//! 16-tenant virtual throughput is below 2x serial submission —
//! `scripts/check.sh` runs this as a gate.
//!
//! Run with `cargo run --release --bin service_bench`.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use platform_postgres::{PgDatabase, PostgresPlatform};
use rheem_bench::*;
use rheem_core::plan::RheemPlan;
use rheem_core::service::{simulate_fair_share, JobService, ServiceConfig, SimJob, TenantSpec};

/// Total jobs per scenario — held constant across tenant counts so jobs/sec
/// figures are directly comparable.
const TOTAL_JOBS: usize = 48;

struct Scenario {
    label: &'static str,
    tenants: usize,
    lanes: usize,
}

/// 16 tenants share 8 lanes (the service's stage slots on an 8-core
/// deployment); serial submission is one tenant on one lane.
const SCENARIOS: [Scenario; 3] = [
    Scenario { label: "serial", tenants: 1, lanes: 1 },
    Scenario { label: "tenants4", tenants: 4, lanes: 4 },
    Scenario { label: "tenants16", tenants: 16, lanes: 8 },
];

fn service_ctx(db: &Arc<PgDatabase>) -> rheem_core::api::RheemContext {
    let mut ctx = default_context();
    ctx.register_platform(&PostgresPlatform::new(Arc::clone(db)));
    // Answers must not depend on cross-job reuse: jobs/sec would measure
    // the cache, not the service.
    ctx.set_cache(None);
    ctx
}

/// Per-stage virtual durations of one traced run (non-superseded stage
/// runs, in execution order) — the simulator's stage-job granularity.
fn stage_profile(db: &Arc<PgDatabase>, plan: &RheemPlan) -> Vec<f64> {
    let run = service_ctx(db).execute(plan).expect("profile run");
    let trace = run.trace.expect("tracing on");
    let stages: Vec<f64> =
        trace.runs.iter().filter(|r| !r.superseded).map(|r| r.virtual_ms.max(1e-3)).collect();
    assert!(!stages.is_empty(), "traced run produced no stage runs");
    stages
}

/// The mixed workload for `tenants` tenants: `TOTAL_JOBS` jobs, kinds
/// round-robined so every tenant gets the same mix.
fn workload(tenants: usize, kinds: usize) -> Vec<(usize, usize)> {
    let per_tenant = TOTAL_JOBS / tenants;
    (0..tenants).flat_map(|t| (0..per_tenant).map(move |j| (t, (t + j) % kinds))).collect()
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

struct Row {
    label: &'static str,
    virt_jobs_per_s: f64,
    virt_p50_ms: f64,
    virt_p99_ms: f64,
    wall_jobs_per_s: f64,
    wall_p50_ms: f64,
    wall_p99_ms: f64,
}

/// Drive the real service: serial submission waits for each job before the
/// next; concurrent submission queues everything and one waiter thread per
/// handle records its completion latency.
fn wall_run(
    db: &Arc<PgDatabase>,
    build: &[Box<dyn Fn() -> RheemPlan + Sync + '_>],
    sc: &Scenario,
) -> (f64, Vec<f64>) {
    let specs: Vec<TenantSpec> = (0..sc.tenants)
        .map(|t| TenantSpec::new(&format!("t{t}")).with_max_in_flight(TOTAL_JOBS))
        .collect();
    let config =
        ServiceConfig { max_in_flight: TOTAL_JOBS, runners: sc.lanes, ..ServiceConfig::default() };
    let service = JobService::new(service_ctx(db), config, specs).expect("service");
    let jobs = workload(sc.tenants, build.len());
    let start = Instant::now();
    let mut latencies: Vec<f64> = Vec::with_capacity(jobs.len());
    if sc.tenants == 1 {
        for (t, kind) in jobs {
            let t0 = Instant::now();
            let h = service.submit(&format!("t{t}"), build[kind]()).expect("submit");
            h.wait().expect("job");
            latencies.push(t0.elapsed().as_secs_f64() * 1e3);
        }
    } else {
        let handles: Vec<_> = jobs
            .into_iter()
            .map(|(t, kind)| {
                let h = service.submit(&format!("t{t}"), build[kind]()).expect("submit");
                (Instant::now(), h)
            })
            .collect();
        latencies = std::thread::scope(|s| {
            let waiters: Vec<_> = handles
                .into_iter()
                .map(|(t0, h)| {
                    s.spawn(move || {
                        h.wait().expect("job");
                        t0.elapsed().as_secs_f64() * 1e3
                    })
                })
                .collect();
            waiters.into_iter().map(|w| w.join().expect("waiter")).collect()
        });
    }
    let wall_s = start.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.total_cmp(b));
    (TOTAL_JOBS as f64 / wall_s.max(1e-9), latencies)
}

fn main() {
    let s = scale();

    // One shared placement; the three job kinds cover polystore (Postgres +
    // Spark + driver), relational join, and pure text processing.
    let data = rheem_datagen::tpch::generate((1.0 * s).max(0.01), 17);
    let p = dataciv::place(&data, "service_bench").expect("placement");
    let corpus = corpus_file("service_bench", ((64.0 * s) as usize).max(8), 7);
    let placement = &p;
    let db = Arc::clone(&p.db);
    let corpus_path = corpus.clone();
    let build: Vec<Box<dyn Fn() -> RheemPlan + Sync + '_>> = vec![
        Box::new(move || dataciv::build_q5_plan(placement, "ASIA", 1995).expect("q5 plan").0),
        Box::new(move || dataciv::build_join_task(&db).expect("join plan").0),
        Box::new(move || wordcount_plan(&corpus_path).expect("wordcount plan").0),
    ];

    // Virtual stage profiles: one traced run per kind.
    let profiles: Vec<Vec<f64>> = build.iter().map(|b| stage_profile(&p.db, &b())).collect();
    for (i, prof) in profiles.iter().enumerate() {
        println!(
            "kind {i}: {} stages, {:.2} virtual ms total",
            prof.len(),
            prof.iter().sum::<f64>()
        );
    }

    let mut rows = Vec::new();
    for sc in &SCENARIOS {
        // Virtual: deterministic fair-share simulation of the same jobs.
        let sim_jobs: Vec<SimJob> = workload(sc.tenants, build.len())
            .into_iter()
            .map(|(t, kind)| SimJob { tenant: t, arrival_ms: 0.0, stages: profiles[kind].clone() })
            .collect();
        let weights = vec![1.0; sc.tenants];
        let outcome = simulate_fair_share(&sim_jobs, &weights, sc.lanes, 0xC0FFEE);
        let mut virt_lat = outcome.completion_ms.clone();
        virt_lat.sort_by(|a, b| a.total_cmp(b));
        let virt_jobs_per_s = TOTAL_JOBS as f64 / (outcome.makespan_ms / 1e3).max(1e-9);

        // Wall: the real service under the same submission pattern.
        let (wall_jobs_per_s, wall_lat) = wall_run(&p.db, &build, sc);

        println!(
            "{}: virtual {:.1} jobs/s (p50 {:.1} ms, p99 {:.1} ms); \
             wall {:.1} jobs/s (p50 {:.1} ms, p99 {:.1} ms)",
            sc.label,
            virt_jobs_per_s,
            percentile(&virt_lat, 50.0),
            percentile(&virt_lat, 99.0),
            wall_jobs_per_s,
            percentile(&wall_lat, 50.0),
            percentile(&wall_lat, 99.0),
        );
        rows.push(Row {
            label: sc.label,
            virt_jobs_per_s,
            virt_p50_ms: percentile(&virt_lat, 50.0),
            virt_p99_ms: percentile(&virt_lat, 99.0),
            wall_jobs_per_s,
            wall_p50_ms: percentile(&wall_lat, 50.0),
            wall_p99_ms: percentile(&wall_lat, 99.0),
        });
    }

    // Gate: 16 concurrent tenants must clear 2x serial-submission
    // throughput in virtual time (host-independent; wall-clock on a
    // single-CPU host legitimately ties and is reported unasserted).
    let serial = rows.iter().find(|r| r.label == "serial").expect("serial row");
    let t16 = rows.iter().find(|r| r.label == "tenants16").expect("tenants16 row");
    let speedup = t16.virt_jobs_per_s / serial.virt_jobs_per_s.max(1e-9);
    assert!(
        speedup >= 2.0,
        "16-tenant virtual throughput only {:.2}x serial ({:.1} vs {:.1} jobs/s)",
        speedup,
        t16.virt_jobs_per_s,
        serial.virt_jobs_per_s
    );

    let mut json = String::from("{\n  \"bench\": \"service_bench\",\n");
    let _ = writeln!(json, "  \"total_jobs\": {TOTAL_JOBS},");
    let _ = writeln!(json, "  \"virtual_speedup_16_tenants\": {speedup:.3},");
    json.push_str("  \"scenarios\": {\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    \"{}\": {{ \"virtual_jobs_per_s\": {:.3}, \"virtual_p50_ms\": {:.3}, \
             \"virtual_p99_ms\": {:.3}, \"wall_jobs_per_s\": {:.3}, \"wall_p50_ms\": {:.3}, \
             \"wall_p99_ms\": {:.3} }}{}",
            r.label,
            r.virt_jobs_per_s,
            r.virt_p50_ms,
            r.virt_p99_ms,
            r.wall_jobs_per_s,
            r.wall_p50_ms,
            r.wall_p99_ms,
            comma
        );
    }
    json.push_str("  }\n}\n");
    std::fs::write("BENCH_PR7.json", &json).expect("write BENCH_PR7.json");
    println!("-- wrote BENCH_PR7.json ({:.2}x virtual speedup at 16 tenants)", speedup);
}
