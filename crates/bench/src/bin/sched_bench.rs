//! Scheduler benchmark: the concurrent DAG scheduler vs the sequential
//! stage walk, on the Fig. 2(d) polystore query (TPC-H Q5 via Data
//! Civilizer), the Fig. 10(a) TPC-H join task, and a multi-sink batch of
//! independent lake tasks. Measures
//!
//! * **wall-clock of the execution region** per mode (min over iterations;
//!   the optimizer is identical in both modes and would only add noise),
//! * **virtual makespan** (critical-path composition of stage times) vs the
//!   **sequential sum** of per-stage virtual times — the virtual-time win
//!   the DAG scheduler's overlap buys, and
//! * a **worker-pool microbenchmark**: per-operator-call overhead of the
//!   shared pool vs the fresh-`thread::scope`-per-call pattern it replaced.
//!
//! Wall-clock overlap needs real cores: on a single-CPU host the adaptive
//! scheduler falls back to the in-line walk and the two modes tie, which is
//! exactly the desired behavior (concurrency must never cost wall time).
//! The virtual makespan, in contrast, is host-independent: lanes model the
//! platforms' stage capacity, so the critical-path win shows everywhere.
//!
//! Writes `BENCH_PR4.json` at the repo root and fails (non-zero exit) if
//! the concurrent makespan is worse than the sequential composition —
//! `scripts/check.sh` runs this as a gate.
//!
//! Run with `cargo run --release --bin sched_bench`.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use platform_postgres::{PgDatabase, PostgresPlatform};
use rheem_bench::*;
use rheem_core::plan::RheemPlan;

const ITERS: u32 = 12;

struct TaskReport {
    task: &'static str,
    seq_wall_ms: f64,
    conc_wall_ms: f64,
    makespan_ms: f64,
    stage_sum_ms: f64,
}

fn polystore_ctx(db: &Arc<PgDatabase>, concurrent: Option<bool>) -> rheem_core::api::RheemContext {
    let mut ctx = default_context();
    ctx.register_platform(&PostgresPlatform::new(Arc::clone(db)));
    ctx.config_mut().concurrent = concurrent;
    ctx
}

/// Min execution-region wall time over `ITERS` runs (plus one warm-up).
fn min_exec_ms(db: &Arc<PgDatabase>, concurrent: Option<bool>, plan: &RheemPlan) -> f64 {
    let ctx = polystore_ctx(db, concurrent);
    ctx.execute(plan).unwrap(); // warm-up (pool spin-up, page cache)
    let mut min = f64::INFINITY;
    for _ in 0..ITERS {
        min = min.min(ctx.execute(plan).unwrap().metrics.real_ms);
    }
    min
}

fn bench_task(task: &'static str, db: &Arc<PgDatabase>, plan: &RheemPlan) -> TaskReport {
    // Forced-sequential walk vs the scheduler as shipped (adaptive).
    let seq_wall_ms = min_exec_ms(db, Some(false), plan);
    let conc_wall_ms = min_exec_ms(db, None, plan);

    // Virtual makespan and per-stage sum from one traced run. Both modes
    // produce byte-identical traces, so either serves. (Virtual times on
    // partitioned engines fold in *measured* per-partition real times, so
    // they are compared within a single run, never across runs.)
    let run = polystore_ctx(db, None).execute(plan).unwrap();
    let makespan_ms = run.metrics.virtual_ms;
    let trace = run.trace.expect("tracing on");
    let stage_sum_ms: f64 = trace.runs.iter().filter(|r| !r.superseded).map(|r| r.virtual_ms).sum();

    println!(
        "{task}: exec wall seq {seq_wall_ms:.3} ms, conc {conc_wall_ms:.3} ms (min of {ITERS}); \
         virtual makespan {makespan_ms:.1} ms vs sequential sum {stage_sum_ms:.1} ms"
    );
    TaskReport { task, seq_wall_ms, conc_wall_ms, makespan_ms, stage_sum_ms }
}

/// Per-call overhead of a scoped parallel map: fresh `std::thread::scope`
/// with one thread per partition (the pre-pool pattern in platform-spark /
/// platform-flink) vs the shared worker pool. Returns µs/call for each.
fn pool_microbench() -> (f64, f64) {
    const CALLS: u32 = 300;
    let nparts = rheem_core::pool::size().max(2);
    let parts: Vec<Vec<u64>> =
        (0..nparts).map(|p| (0..64u64).map(|i| i + p as u64).collect()).collect();
    let work = |part: &[u64]| part.iter().copied().sum::<u64>();

    let bench = |run_call: &dyn Fn() -> u64| {
        let mut sink = 0u64;
        sink = sink.wrapping_add(run_call()); // warm-up
        let t = Instant::now();
        for _ in 0..CALLS {
            sink = sink.wrapping_add(run_call());
        }
        let us = t.elapsed().as_secs_f64() * 1e6 / CALLS as f64;
        assert!(sink > 0);
        us
    };

    let spawn_us = bench(&|| {
        let acc = std::sync::Mutex::new(0u64);
        std::thread::scope(|s| {
            for part in &parts {
                let acc = &acc;
                s.spawn(move || {
                    let v = work(part);
                    *acc.lock().unwrap() += v;
                });
            }
        });
        let v = *acc.lock().unwrap();
        v
    });
    let pool_us = bench(&|| {
        let acc = std::sync::Mutex::new(0u64);
        rheem_core::pool::scope(|s| {
            for part in &parts {
                let acc = &acc;
                s.spawn(move || {
                    let v = work(part);
                    *acc.lock().unwrap() += v;
                });
            }
        });
        let v = *acc.lock().unwrap();
        v
    });
    println!(
        "pool microbench: thread::scope {spawn_us:.1} µs/call vs shared pool {pool_us:.1} µs/call \
         ({nparts} partitions, {CALLS} calls)"
    );
    (spawn_us, pool_us)
}

fn main() {
    let s = scale();
    let mut rows = Vec::new();

    // Fig. 2(d): the polystore Q5 — stages spread over Postgres, Spark and
    // the driver, with independent dimension-table branches to overlap.
    {
        let data = rheem_datagen::tpch::generate((1.0 * s).max(0.01), 7);
        let p = dataciv::place(&data, "sched_bench_2d").expect("placement");
        let (plan, _) = dataciv::build_q5_plan(&p, "ASIA", 1995).expect("plan");
        rows.push(bench_task("fig2d_polystore_q5", &p.db, &plan));
    }

    // Fig. 10(a): the SUPPLIER ⋈ CUSTOMER join task out of Postgres.
    {
        let data = rheem_datagen::tpch::generate((1.0 * s).max(0.01), 11);
        let p = dataciv::place(&data, "sched_bench_10a").expect("placement");
        let (plan, _) = dataciv::build_join_task(&p.db).expect("plan");
        rows.push(bench_task("fig10a_join", &p.db, &plan));
    }

    // Multi-sink batch of independent lake tasks: disjoint stage DAGs, the
    // widest overlap surface for the scheduler.
    {
        let data = rheem_datagen::tpch::generate((1.0 * s).max(0.01), 13);
        let p = dataciv::place(&data, "sched_bench_batch").expect("placement");
        let (plan, _) = dataciv::build_task_batch(&p).expect("plan");
        rows.push(bench_task("task_batch", &p.db, &plan));
    }

    let (spawn_us, pool_us) = pool_microbench();

    // Gates. Makespan must never exceed the strictly serial composition;
    // the multi-branch workloads (polystore Q5, disjoint task batch) must
    // show a strict critical-path win; and the shared pool must beat the
    // per-call thread spawn it replaced.
    for r in &rows {
        assert!(
            r.makespan_ms <= r.stage_sum_ms + 1e-9,
            "{}: concurrent makespan {:.1} ms worse than sequential sum {:.1} ms",
            r.task,
            r.makespan_ms,
            r.stage_sum_ms
        );
    }
    for task in ["fig2d_polystore_q5", "task_batch"] {
        let r = rows.iter().find(|r| r.task == task).expect("task benched");
        assert!(
            r.makespan_ms < r.stage_sum_ms,
            "{task}: virtual makespan {:.1} ms not strictly below the sequential sum {:.1} ms",
            r.makespan_ms,
            r.stage_sum_ms
        );
    }
    assert!(
        pool_us < spawn_us,
        "shared pool ({pool_us:.1} µs/call) not faster than per-call thread::scope \
         ({spawn_us:.1} µs/call)"
    );

    let mut json = String::from("{\n  \"bench\": \"sched_bench\",\n");
    let _ = writeln!(json, "  \"iters\": {ITERS},");
    let _ = writeln!(json, "  \"pool_workers\": {},", rheem_core::pool::size());
    let _ = writeln!(
        json,
        "  \"pool_microbench\": {{ \"thread_scope_us_per_call\": {spawn_us:.2}, \
         \"shared_pool_us_per_call\": {pool_us:.2}, \"speedup\": {:.2} }},",
        spawn_us / pool_us.max(1e-9)
    );
    json.push_str("  \"tasks\": {\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let speedup = r.seq_wall_ms / r.conc_wall_ms.max(1e-9);
        let overlap = (1.0 - r.makespan_ms / r.stage_sum_ms.max(1e-9)) * 100.0;
        let _ = writeln!(
            json,
            "    \"{}\": {{ \"seq_exec_min_ms\": {:.3}, \"conc_exec_min_ms\": {:.3}, \
             \"wall_speedup\": {:.3}, \"virtual_makespan_ms\": {:.3}, \
             \"virtual_stage_sum_ms\": {:.3}, \"overlap_win_pct\": {:.2} }}{}",
            r.task,
            r.seq_wall_ms,
            r.conc_wall_ms,
            speedup,
            r.makespan_ms,
            r.stage_sum_ms,
            overlap,
            comma
        );
    }
    json.push_str("  }\n}\n");
    std::fs::write("BENCH_PR4.json", &json).expect("write BENCH_PR4.json");
    println!("-- wrote BENCH_PR4.json ({} tasks)", rows.len());
}
