//! Regenerates **Figure 2(c)** — mandatory cross-platform via xDB:
//! cross-community PageRank with the input residing in Postgres.
//! xDB@Rheem must move the data out of the store; the "Ideal case" has the
//! same data already on HDFS and simply runs. The paper's point: Rheem's
//! automated movement tracks the ideal case closely.

use std::sync::Arc;

use platform_postgres::{PgDatabase, PostgresPlatform};
use rheem_bench::*;

fn main() {
    let s = scale();
    let mut report = Report::new("fig2c_xdb");
    // dataset sizes scaled 1/10 from the paper's 200MB/500MB/1GB
    for (tag, mb) in [("200MB", 20.0), ("500MB", 50.0), ("1GB", 100.0)] {
        let edges = ((mb * s) * 1024.0 * 1024.0 / 18.0) as usize; // ~18 B/edge line
        let (fa, fb) = community_files("fig2c", edges.max(1000), 33);

        // --- xDB@Rheem: edges live in Postgres tables ---------------------
        let ea: Vec<(i64, i64)> = rheem_storage::read_lines(&fa)
            .expect("edges a")
            .iter()
            .filter_map(|l| {
                let mut it = l.split_whitespace();
                Some((it.next()?.parse().ok()?, it.next()?.parse().ok()?))
            })
            .collect();
        let eb: Vec<(i64, i64)> = rheem_storage::read_lines(&fb)
            .expect("edges b")
            .iter()
            .filter_map(|l| {
                let mut it = l.split_whitespace();
                Some((it.next()?.parse().ok()?, it.next()?.parse().ok()?))
            })
            .collect();
        let db = Arc::new(PgDatabase::new());
        db.load_table(
            "community_a",
            vec!["src".to_string(), "dst".to_string()],
            rheem_datagen::graph::edges_to_values(&ea),
        );
        db.load_table(
            "community_b",
            vec!["src".to_string(), "dst".to_string()],
            rheem_datagen::graph::edges_to_values(&eb),
        );
        let mut ctx = graph_context();
        ctx.register_platform(&PostgresPlatform::new(Arc::clone(&db)));
        let (plan, _) = xdb::build_crocopr_plan(
            xdb::CrocoSource::Tables("community_a".into(), "community_b".into()),
            10,
        )
        .expect("plan");
        match ctx.execute(&plan) {
            Ok(r) => report.row(
                "xDB@Rheem",
                tag,
                r.metrics.virtual_ms,
                &format!("via {:?}", r.metrics.platforms),
            ),
            Err(e) => report.failed("xDB@Rheem", tag, &e.to_string()),
        }

        // --- Ideal case: same task, data already on HDFS -------------------
        let ctx = graph_context();
        let (plan, _) =
            xdb::build_crocopr_plan(xdb::CrocoSource::Files(fa.clone(), fb.clone()), 10)
                .expect("plan");
        match ctx.execute(&plan) {
            Ok(r) => report.row(
                "Ideal case",
                tag,
                r.metrics.virtual_ms,
                &format!("via {:?}", r.metrics.platforms),
            ),
            Err(e) => report.failed("Ideal case", tag, &e.to_string()),
        }
    }
    report.save();
}
