//! Regenerates **Figure 2(d)** — the polystore case via Data Civilizer:
//! TPC-H Q5 with LINEITEM/ORDERS on HDFS, CUSTOMER/REGION/SUPPLIER in
//! Postgres and NATION on the local FS. DataCiv@Rheem runs the query in
//! place; the common practices either migrate everything into Postgres
//! (paying the bulk load) or move everything to HDFS and use Spark.

use platform_postgres::PostgresPlatform;
use rheem_bench::*;

fn main() {
    let s = scale();
    let mut report = Report::new("fig2d_polystore");
    // scale factors 1/10 of the paper's 1/10/100 (generator already shrinks
    // rows 100× from true TPC-H; see rheem_datagen::tpch::ROWS_DIVISOR).
    for sf in [0.1, 1.0, 10.0] {
        let sf_eff = sf * s;
        let data = rheem_datagen::tpch::generate(sf_eff.max(0.01), 7);
        let tag = format!("sf{sf}");

        // DataCiv@Rheem over the real placement.
        let p = dataciv::place(&data, &format!("fig2d_{tag}")).expect("placement");
        let mut ctx = default_context();
        ctx.register_platform(&PostgresPlatform::new(std::sync::Arc::clone(&p.db)));
        let (plan, _) = dataciv::build_q5_plan(&p, "ASIA", 1995).expect("plan");
        match ctx.execute(&plan) {
            Ok(r) => report.row(
                "DataCiv@Rheem",
                &tag,
                r.metrics.virtual_ms,
                &format!("via {:?}", r.metrics.platforms),
            ),
            Err(e) => report.failed("DataCiv@Rheem", &tag, &e.to_string()),
        }

        // Common practice 1: migrate into Postgres, query inside.
        match rheem_baselines::q5_all_in_postgres(&data, "ASIA", 1995) {
            Ok((_, m, load_ms)) => {
                report.row(
                    "Postgres (load+query)",
                    &tag,
                    m.virtual_ms + load_ms,
                    &format!("load alone {load_ms:.0} ms"),
                );
            }
            Err(e) => report.failed("Postgres (load+query)", &tag, &e.to_string()),
        }

        // Common practice 2: export to HDFS, run on Spark.
        match rheem_baselines::q5_all_on_spark(&data, "ASIA", 1995) {
            Ok((_, m, migrate_ms)) => {
                report.row(
                    "Spark (migrate+query)",
                    &tag,
                    m.virtual_ms + migrate_ms,
                    &format!("migration {migrate_ms:.0} ms"),
                );
            }
            Err(e) => report.failed("Spark (migrate+query)", &tag, &e.to_string()),
        }
    }
    report.save();
}
