//! Observability-plane overhead benchmark: the PR 7 multi-tenant service
//! mix (polystore Q5, join task, WordCount; 16 tenants on 8 runners) run
//! three ways per repetition —
//!
//! * **off**: recorder disabled (`RheemContext::set_recorder(None)`), no
//!   endpoint — the watchdog also idles, since sweeps ride the recorder;
//! * **on**: flight recorder + SLO metrics + watchdog enabled (the
//!   context defaults), endpoint not serving; and
//! * **scraped**: as `on`, plus the TCP endpoint live with a scraper
//!   polling `/metrics` and `/flight` throughout the run.
//!
//! Modes are interleaved and each takes its best-of-N wall time, so the
//! gate — **`on` within 5% of `off`** — compares the fastest run either
//! mode achieved rather than whatever the noisy mean happened to be. The
//! `scraped` mode is reported, not gated: the scraper client and the
//! per-connection threads share the host CPU with the runners, which is
//! real scrape load, not recorder overhead. Mid-run scrapes are validated
//! against the Prometheus exposition invariants
//! ([`rheem_core::obs::validate_exposition`]), which makes this bench the
//! live-scrape leg of `scripts/check.sh`.
//!
//! Writes `BENCH_PR8.json` at the repo root and the last scraped
//! exposition to `target/obs/bench_metrics.txt`.
//!
//! Run with `cargo run --release --bin obs_bench`.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use platform_postgres::{PgDatabase, PostgresPlatform};
use rheem_bench::*;
use rheem_core::obs::{scrape, validate_exposition};
use rheem_core::plan::RheemPlan;
use rheem_core::service::{JobService, ServiceConfig, TenantSpec};

/// Jobs per run (the PR 7 tenants16 scenario).
const TOTAL_JOBS: usize = 48;
/// Tenants sharing the service.
const TENANTS: usize = 16;
/// Runner threads.
const RUNNERS: usize = 8;
/// Interleaved repetitions per mode. Per-run wall is a few seconds, so
/// host-load noise between runs exceeds the true recorder cost; best-of
/// needs enough samples for the minima to converge.
const REPS: usize = 7;
/// Overhead gate: recorder + SLO metrics on vs off, best-of-REPS wall.
const MAX_OVERHEAD: f64 = 0.05;

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Off,
    On,
    Scraped,
}

impl Mode {
    fn label(self) -> &'static str {
        match self {
            Mode::Off => "off",
            Mode::On => "on",
            Mode::Scraped => "scraped",
        }
    }
}

fn service_ctx(db: &Arc<PgDatabase>, mode: Mode) -> rheem_core::api::RheemContext {
    let mut ctx = default_context();
    ctx.register_platform(&PostgresPlatform::new(Arc::clone(db)));
    ctx.set_cache(None); // jobs/sec must measure the service, not the cache
    if mode == Mode::Off {
        ctx.set_recorder(None);
    }
    ctx
}

/// Drive one full service run; returns its wall seconds.
fn run_once(
    db: &Arc<PgDatabase>,
    build: &[Box<dyn Fn() -> RheemPlan + Sync + '_>],
    mode: Mode,
    scraped_metrics: &mut String,
    scrape_count: &AtomicU64,
) -> f64 {
    let specs: Vec<TenantSpec> = (0..TENANTS)
        .map(|t| TenantSpec::new(&format!("t{t}")).with_max_in_flight(TOTAL_JOBS))
        .collect();
    let config =
        ServiceConfig { max_in_flight: TOTAL_JOBS, runners: RUNNERS, ..ServiceConfig::default() };
    let service = JobService::new(service_ctx(db, mode), config, specs).expect("service");

    let stop = Arc::new(AtomicBool::new(false));
    let scraper = (mode == Mode::Scraped).then(|| {
        let addr = service.serve("127.0.0.1:0").expect("serve").to_string();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut last = String::new();
            while !stop.load(Ordering::Relaxed) {
                if let Ok(body) = scrape(&addr, "/metrics") {
                    validate_exposition(&body).expect("mid-run exposition is well-formed");
                    last = body;
                }
                let _ = scrape(&addr, "/flight?n=64");
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            last
        })
    });

    let jobs: Vec<(usize, usize)> = {
        let per_tenant = TOTAL_JOBS / TENANTS;
        (0..TENANTS)
            .flat_map(|t| (0..per_tenant).map(move |j| (t, (t + j) % build.len())))
            .collect()
    };
    let start = Instant::now();
    let handles: Vec<_> = jobs
        .into_iter()
        .map(|(t, kind)| service.submit(&format!("t{t}"), build[kind]()).expect("submit"))
        .collect();
    for h in handles {
        h.wait().expect("job");
    }
    let wall_s = start.elapsed().as_secs_f64();

    stop.store(true, Ordering::Relaxed);
    if let Some(s) = scraper {
        let last = s.join().expect("scraper");
        if !last.is_empty() {
            scrape_count.fetch_add(1, Ordering::Relaxed);
            *scraped_metrics = last;
        }
    }
    wall_s
}

fn main() {
    let s = scale();
    let data = rheem_datagen::tpch::generate((1.0 * s).max(0.01), 17);
    let p = dataciv::place(&data, "obs_bench").expect("placement");
    let corpus = corpus_file("obs_bench", ((64.0 * s) as usize).max(8), 7);
    let placement = &p;
    let db = Arc::clone(&p.db);
    let corpus_path = corpus.clone();
    let build: Vec<Box<dyn Fn() -> RheemPlan + Sync + '_>> = vec![
        Box::new(move || dataciv::build_q5_plan(placement, "ASIA", 1995).expect("q5 plan").0),
        Box::new(move || dataciv::build_join_task(&db).expect("join plan").0),
        Box::new(move || wordcount_plan(&corpus_path).expect("wordcount plan").0),
    ];

    const MODES: [Mode; 3] = [Mode::Off, Mode::On, Mode::Scraped];
    let mut scraped = String::new();
    let live_scrapes = AtomicU64::new(0);
    let mut best = [f64::INFINITY; 3];
    // Warm page cache, allocator, and pools before the timed reps.
    run_once(&p.db, &build, Mode::Off, &mut scraped, &live_scrapes);
    for rep in 0..REPS {
        // Rotate mode order per rep so no mode systematically runs first
        // (slot-position drift would otherwise bias the comparison).
        for slot in 0..MODES.len() {
            let i = (slot + rep) % MODES.len();
            let wall = run_once(&p.db, &build, MODES[i], &mut scraped, &live_scrapes);
            best[i] = best[i].min(wall);
            println!("rep {rep}: {} {wall:.3}s", MODES[i].label());
        }
    }
    let [best_off, best_on, best_scraped] = best;
    assert!(
        live_scrapes.load(Ordering::Relaxed) > 0,
        "the endpoint was never successfully scraped mid-run"
    );
    validate_exposition(&scraped).expect("final scraped exposition is well-formed");
    std::fs::create_dir_all("target/obs").expect("target/obs");
    std::fs::write("target/obs/bench_metrics.txt", &scraped).expect("write scrape artifact");

    let overhead = best_on / best_off.max(1e-9) - 1.0;
    let scrape_overhead = best_scraped / best_off.max(1e-9) - 1.0;
    let jobs_per_s_off = TOTAL_JOBS as f64 / best_off.max(1e-9);
    let jobs_per_s_on = TOTAL_JOBS as f64 / best_on.max(1e-9);
    println!(
        "best-of-{REPS}: off {best_off:.3}s ({jobs_per_s_off:.1} jobs/s), \
         on {best_on:.3}s ({jobs_per_s_on:.1} jobs/s, {:+.2}%), \
         scraped {best_scraped:.3}s ({:+.2}%)",
        overhead * 100.0,
        scrape_overhead * 100.0
    );
    assert!(
        overhead < MAX_OVERHEAD,
        "recorder + SLO overhead {:.2}% exceeds the {:.0}% gate \
         (on {best_on:.3}s vs off {best_off:.3}s)",
        overhead * 100.0,
        MAX_OVERHEAD * 100.0
    );

    let mut json = String::from("{\n  \"bench\": \"obs_bench\",\n");
    let _ = writeln!(json, "  \"total_jobs\": {TOTAL_JOBS},");
    let _ = writeln!(json, "  \"tenants\": {TENANTS},");
    let _ = writeln!(json, "  \"runners\": {RUNNERS},");
    let _ = writeln!(json, "  \"reps\": {REPS},");
    let _ = writeln!(json, "  \"wall_s_obs_off\": {best_off:.4},");
    let _ = writeln!(json, "  \"wall_s_obs_on\": {best_on:.4},");
    let _ = writeln!(json, "  \"wall_s_obs_scraped\": {best_scraped:.4},");
    let _ = writeln!(json, "  \"jobs_per_s_obs_off\": {jobs_per_s_off:.3},");
    let _ = writeln!(json, "  \"jobs_per_s_obs_on\": {jobs_per_s_on:.3},");
    let _ = writeln!(json, "  \"overhead_fraction\": {overhead:.4},");
    let _ = writeln!(json, "  \"scrape_overhead_fraction\": {scrape_overhead:.4},");
    let _ = writeln!(json, "  \"overhead_gate\": {MAX_OVERHEAD}");
    json.push_str("}\n");
    std::fs::write("BENCH_PR8.json", &json).expect("write BENCH_PR8.json");
    println!("-- wrote BENCH_PR8.json ({:.2}% recorder overhead)", overhead * 100.0);
}
