//! Regenerates **Figure 2(a)** — platform independence via BigDansing:
//! denial-constraint error detection on the Tax dataset, DC@Rheem (with the
//! plugged IEJoin, free platform choice) vs NADEEF (single-node rule
//! engine) vs SparkSQL (cartesian + filter on Spark).
//!
//! Row counts are 1/10 of the paper's (100k…2M → 10k…200k); baselines that
//! would run ≥40 virtual hours are stopped, mirroring the paper's ✗ marks.

use std::sync::Arc;

use rheem_bench::*;

fn main() {
    let s = scale();
    let mut report = Report::new("fig2a_cleaning");
    // Planted violation rate kept low so the violation set (and therefore
    // every system's output) stays bounded.
    let rate = 0.0005;
    for rows_base in [10_000usize, 20_000, 100_000, 200_000] {
        let n = ((rows_base as f64) * s) as usize;
        let rows = rheem_datagen::generate_tax(n, rate, 13);

        // DC@Rheem: IEJoin registered, free platform choice.
        let mut ctx = default_context();
        bigdansing::register_iejoin(&mut ctx);
        let task = bigdansing::CleaningTask::tax();
        let (plan, sink) = task.build_plan(Arc::new(rows.clone())).expect("plan");
        match ctx.execute(&plan) {
            Ok(r) => {
                let v = r.sink(sink).map(|d| d.len()).unwrap_or(0);
                report.row(
                    "DC@Rheem",
                    n,
                    r.metrics.virtual_ms,
                    &format!("{v} violations via {:?}", r.metrics.platforms),
                );
            }
            Err(e) => report.failed("DC@Rheem", n, &e.to_string()),
        }

        // NADEEF: nested loop; O(n²) pair evaluations. Beyond ~30k rows a
        // real run would take hours — stop it like the paper did.
        if n <= 30_000 {
            let (count, vms) = rheem_baselines::nadeef_detect(&rows);
            report.row("NADEEF", n, vms, &format!("{count} violations"));
        } else {
            report.failed("NADEEF", n, "stopped (nested-loop would run for hours)");
        }

        // SparkSQL: cartesian + filter, forced on Spark. Also quadratic;
        // distributed, so it survives a bit longer before we stop it.
        if n <= 60_000 {
            match rheem_baselines::sparksql_detect(rows) {
                Ok((fixes, m)) => {
                    report.row("SparkSQL", n, m.virtual_ms, &format!("{} violations", fixes.len()))
                }
                Err(e) => report.failed("SparkSQL", n, &e.to_string()),
            }
        } else {
            report.failed("SparkSQL", n, "stopped (cartesian explosion)");
        }
    }
    report.save();
}
