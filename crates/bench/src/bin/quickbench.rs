//! Quick end-to-end benchmark: WordCount, SGD and CrocoPR at a small fixed
//! scale, real wall-clock milliseconds, written to `BENCH_PR1.json` at the
//! repo root (plus stdout). Used to track the reproduction's own execution
//! performance across PRs — virtual cluster time is reported separately by
//! the `fig*` binaries.
//!
//! Run with `cargo run --release --bin quickbench`.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use rheem_bench::{community_files, corpus_file, default_context, graph_context, wordcount_plan};

struct Entry {
    task: &'static str,
    mean_ms: f64,
    min_ms: f64,
    iters: u32,
}

fn measure(task: &'static str, iters: u32, mut f: impl FnMut()) -> Entry {
    f(); // warm-up
    let mut total = 0.0;
    let mut min = f64::INFINITY;
    for _ in 0..iters {
        let t = Instant::now();
        f();
        let ms = t.elapsed().as_secs_f64() * 1000.0;
        total += ms;
        min = min.min(ms);
    }
    let e = Entry { task, mean_ms: total / iters as f64, min_ms: min, iters };
    println!(
        "{:<12} {:>9.2} ms mean  {:>9.2} ms min  ({} iters)",
        e.task, e.mean_ms, e.min_ms, e.iters
    );
    e
}

fn main() {
    let mut entries = Vec::new();

    // WordCount: 256 KB corpus, free platform choice.
    {
        let path = corpus_file("quick_wc", 256, 5);
        let (plan, _) = wordcount_plan(&path).unwrap();
        let ctx = default_context();
        entries.push(measure("wordcount", 10, || {
            ctx.execute(&plan).unwrap();
        }));
    }

    // SGD: 10k points, 4 features, 15 iterations.
    {
        let points = Arc::new(rheem_datagen::generate_points(10_000, 4, 0.05, 9).points);
        let cfg = ml4all::SgdConfig { iterations: 15, batch: 64, ..Default::default() };
        let (plan, _) =
            ml4all::build_sgd_plan(ml4all::PointSource::InMemory(points), &cfg).unwrap();
        let ctx = default_context();
        entries.push(measure("sgd", 10, || {
            ctx.execute(&plan).unwrap();
        }));
    }

    // CrocoPR: ~10k edges, 5 PageRank iterations.
    {
        let (fa, fb) = community_files("quick_cpr", 10_000, 5);
        let (plan, _) = xdb::build_crocopr_plan(xdb::CrocoSource::Files(fa, fb), 5).unwrap();
        let ctx = graph_context();
        entries.push(measure("crocopr", 10, || {
            ctx.execute(&plan).unwrap();
        }));
    }

    let mut json = String::from(
        "{\n  \"bench\": \"quickbench\",\n  \"unit\": \"wall_clock_ms\",\n  \"tasks\": {\n",
    );
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    \"{}\": {{ \"mean_ms\": {:.3}, \"min_ms\": {:.3}, \"iters\": {} }}{comma}",
            e.task, e.mean_ms, e.min_ms, e.iters
        );
    }
    json.push_str("  }\n}\n");
    std::fs::write("BENCH_PR1.json", &json).expect("write BENCH_PR1.json");
    println!("-- wrote BENCH_PR1.json");
}
