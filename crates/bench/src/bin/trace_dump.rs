//! Chaos trace dump: run WordCount under a seeded fault plan with tracing
//! on, write the job trace as both the native JSON schema and a Chrome
//! trace-event file (`chrome://tracing` / Perfetto), and validate that the
//! native schema round-trips losslessly and the span-tree *structure* is
//! byte-identical across two executions of the same seed.
//!
//! `CHAOS_SEED` selects the seed (default `0xC0FFEE`, the head of the CI
//! chaos matrix). CI uploads the produced files as workflow artifacts.
//!
//! Run with `cargo run --release --bin trace_dump`.

use rheem_bench::{corpus_file, default_context, wordcount_plan};
use rheem_core::trace::{json, JobTrace};

fn traced_run(seed: u64) -> (JobTrace, String) {
    let path = corpus_file("trace_dump", 64, 5);
    let (plan, _) = wordcount_plan(&path).unwrap();
    let mut ctx = default_context();
    ctx.config_mut().chaos_seed = Some(seed);
    match ctx.execute(&plan) {
        Ok(r) => {
            let t = r.trace.expect("tracing is on by default");
            (t, "survived".into())
        }
        Err(e) => {
            // The seed killed the job (budget exhausted on every platform).
            // Fall back to a fault-free run so the artifact still shows a
            // complete span tree, and record why.
            let ctx = default_context();
            let r = ctx.execute(&plan).unwrap();
            (r.trace.expect("tracing is on by default"), format!("fault-free fallback: {e}"))
        }
    }
}

fn main() {
    let seed: u64 =
        std::env::var("CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0xC0FFEE);

    let (trace, outcome) = traced_run(seed);
    let (again, _) = traced_run(seed);
    assert_eq!(
        trace.render_structure(),
        again.render_structure(),
        "seed {seed:#x}: span-tree structure must be byte-identical across runs"
    );

    // Native schema round-trips losslessly (floats use shortest-round-trip
    // formatting, so the parsed trace is equal, not merely close).
    let encoded = trace.to_json();
    let decoded = JobTrace::from_json(&encoded).expect("trace JSON must parse");
    assert_eq!(decoded, trace, "trace JSON round-trip lost data");
    assert_eq!(decoded.to_json(), encoded, "trace JSON round-trip not byte-stable");

    // The Chrome export is valid JSON with one event per span at least.
    let chrome = trace.to_chrome_json();
    let parsed = json::parse(&chrome).expect("chrome trace must be valid JSON");
    let top = parsed.as_obj("chrome trace").expect("chrome trace must be an object");
    let events = json::get(top, "traceEvents")
        .and_then(|e| e.as_arr("traceEvents"))
        .expect("chrome trace must carry traceEvents");
    assert!(events.len() >= trace.spans.len(), "chrome export dropped spans");

    std::fs::create_dir_all("results").expect("mkdir results");
    let native = format!("results/trace_{seed:#x}.json");
    let chrome_path = format!("results/trace_{seed:#x}.chrome.json");
    std::fs::write(&native, &encoded).expect("write native trace");
    std::fs::write(&chrome_path, &chrome).expect("write chrome trace");

    println!("seed {seed:#x}: {outcome}");
    println!(
        "spans={} profiles={} runs={} (effective {})",
        trace.spans.len(),
        trace.profiles.len(),
        trace.runs.len(),
        trace.runs.iter().filter(|r| !r.superseded).count()
    );
    println!("wrote {native} and {chrome_path}; round-trip + structure checks passed");
}
