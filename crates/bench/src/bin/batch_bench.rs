//! Columnar batch-execution benchmark: vectorized fused pipelines over
//! typed column slices (`rheem_core::batch`) vs. the row-at-a-time
//! interpreter, on the two workloads the PR optimizes for —
//!
//! * **wordcount** — tokenize → pair → sum-by-key, where the batched path
//!   tokenizes each distinct line once and sums through dictionary ids
//!   instead of hashing every row, and
//! * **scan** — sargable filter → integer arithmetic → projection, where the
//!   batched path runs tight typed loops and carries survivors in a
//!   selection vector.
//!
//! Kernel speedups are measured wall-clock over in-memory collections (no
//! I/O, forced single platform) and must clear **1.5x** on both workloads —
//! `scripts/check.sh` runs this as a gate. End-to-end forced-JavaStreams
//! runs are also recorded, and every batched result is asserted
//! byte-identical to its row-mode twin. Writes `BENCH_PR6.json`.
//!
//! Run with `cargo run --release --bin batch_bench`.

use std::fmt::Write as _;

use rheem_bench::*;
use rheem_core::batch::{self, VectorKernel};
use rheem_core::fused::{FusedPipeline, FusedStep};
use rheem_core::kernels::{ReduceByState, SplitMix64};
use rheem_core::plan::{OperatorId, PlanBuilder, RheemPlan};
use rheem_core::platform::ids;
use rheem_core::udf::{
    BroadcastCtx, CmpOp, FlatMapUdf, KeyUdf, MapUdf, PredicateUdf, ReduceUdf, Sarg,
};
use rheem_core::value::Value;

const ITERS: u32 = 5;
const GATE: f64 = 1.5;

struct Row {
    task: &'static str,
    row_ms: f64,
    batch_ms: f64,
    e2e_row_virtual_ms: f64,
    e2e_batch_virtual_ms: f64,
    rows: usize,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.row_ms / self.batch_ms.max(1e-9)
    }
}

fn wordcount_lines(s: f64) -> Vec<Value> {
    let lines = ((20_000.0 * s) as usize).max(2_000);
    rheem_datagen::generate_text(lines, 10, 5_000, 17).into_iter().map(Value::from).collect()
}

fn scan_pairs(s: f64) -> Vec<Value> {
    let n = ((400_000.0 * s) as usize).max(40_000);
    let mut rng = SplitMix64(0xBA7C6);
    (0..n)
        .map(|_| {
            Value::pair(
                Value::from(rng.range_usize(1_000) as i64),
                Value::from(rng.range_usize(2_000) as i64 - 1_000),
            )
        })
        .collect()
}

fn wordcount_collection_plan(lines: Vec<Value>) -> (RheemPlan, OperatorId) {
    let mut b = PlanBuilder::new();
    let sink = b
        .collection(lines)
        .flat_map(FlatMapUdf::split_whitespace("split"))
        .map(MapUdf::pair_with_int("pair", 1))
        .reduce_by_key(KeyUdf::field(0), ReduceUdf::pair_int_sum("sum"))
        .collect();
    (b.build().expect("wordcount plan"), sink)
}

/// Filter + arithmetic chain of the sargable-scan task: quarter-selective
/// sarg, then three integer adjustments before the projection.
fn scan_steps() -> Vec<FusedStep> {
    let sarg = Sarg { field: 1, op: CmpOp::Gt, literal: Value::from(500i64) };
    let sp = PredicateUdf::from_sarg("hot", sarg);
    vec![
        FusedStep::Filter(sp.pred),
        FusedStep::Map(MapUdf::field_add_int("bump", 1, 5)),
        FusedStep::Map(MapUdf::field_add_int("rebase", 0, -3)),
        FusedStep::Map(MapUdf::field_add_int("scale", 1, 11)),
        FusedStep::Project(vec![1, 0]),
    ]
}

fn scan_collection_plan(data: Vec<Value>) -> (RheemPlan, OperatorId) {
    let sarg = Sarg { field: 1, op: CmpOp::Gt, literal: Value::from(500i64) };
    let sp = PredicateUdf::from_sarg("hot", sarg);
    let mut b = PlanBuilder::new();
    let sink = b
        .collection(data)
        .filter_sarg(sp.pred, sp.sarg)
        .map(MapUdf::field_add_int("bump", 1, 5))
        .map(MapUdf::field_add_int("rebase", 0, -3))
        .map(MapUdf::field_add_int("scale", 1, 11))
        .project([1usize, 0])
        .collect();
    (b.build().expect("scan plan"), sink)
}

/// Forced-JavaStreams end-to-end run; returns (sorted sink, virtual ms).
fn run_e2e(build: impl Fn() -> (RheemPlan, OperatorId), batched: bool) -> (Vec<Value>, f64) {
    let mut ctx = default_context().with_batch(batched);
    ctx.forced_platform = Some(ids::JAVA_STREAMS);
    let (plan, sink) = build();
    let r = ctx.execute(&plan).expect("bench job");
    let mut out = r.sink(sink).expect("sink").to_vec();
    out.sort();
    (out, r.metrics.virtual_ms)
}

fn main() {
    let s = scale();
    let bc = BroadcastCtx::new();
    let mut rows = Vec::new();

    // ---- wordcount: tokenize → pair → dictionary-keyed sum ----
    {
        let lines = wordcount_lines(s);
        let pipeline = FusedPipeline::new(vec![
            FusedStep::FlatMap(FlatMapUdf::split_whitespace("split")),
            FusedStep::Map(MapUdf::pair_with_int("pair", 1)),
        ]);
        let key = KeyUdf::field(0);
        let agg = ReduceUdf::pair_int_sum("sum");
        let vk = VectorKernel::compile(&pipeline).expect("wordcount chain must vectorize");
        assert!(batch::agg_vectorizable(&key, &agg), "wordcount agg must vectorize");

        let mut row_out = Vec::new();
        let row_m = harness::bench("wordcount/row", ITERS, || {
            let mut st = ReduceByState::new(&key, &agg);
            pipeline.run_each(&lines, &bc, |v| st.feed_owned(v));
            row_out = st.finish();
        });
        let mut batch_out = Vec::new();
        let batch_m = harness::bench("wordcount/batched", ITERS, || {
            batch_out =
                batch::run_reduce(&vk, &lines, &key, &agg, false).expect("wordcount vectorizes");
        });
        assert_eq!(batch_out, row_out, "wordcount: batched kernel diverged from row kernel");

        let (e2e_row, e2e_row_ms) = run_e2e(|| wordcount_collection_plan(lines.clone()), false);
        let (e2e_bat, e2e_bat_ms) = run_e2e(|| wordcount_collection_plan(lines.clone()), true);
        assert_eq!(e2e_bat, e2e_row, "wordcount: batched end-to-end run diverged");

        rows.push(Row {
            task: "wordcount",
            row_ms: row_m.min_ms,
            batch_ms: batch_m.min_ms,
            e2e_row_virtual_ms: e2e_row_ms,
            e2e_batch_virtual_ms: e2e_bat_ms,
            rows: lines.len(),
        });
    }

    // ---- sargable scan: typed filter → int arithmetic → projection ----
    {
        let data = scan_pairs(s);
        let pipeline = FusedPipeline::new(scan_steps());
        let vk = VectorKernel::compile(&pipeline).expect("scan chain must vectorize");

        let mut row_out = Vec::new();
        let row_m = harness::bench("scan/row", ITERS, || {
            row_out = pipeline.run(&data, &bc);
        });
        let mut batch_out = Vec::new();
        let batch_m = harness::bench("scan/batched", ITERS, || {
            batch_out = vk.run_values(&data).expect("scan vectorizes").to_values();
        });
        assert_eq!(batch_out, row_out, "scan: batched kernel diverged from row kernel");

        let (e2e_row, e2e_row_ms) = run_e2e(|| scan_collection_plan(data.clone()), false);
        let (e2e_bat, e2e_bat_ms) = run_e2e(|| scan_collection_plan(data.clone()), true);
        assert_eq!(e2e_bat, e2e_row, "scan: batched end-to-end run diverged");

        rows.push(Row {
            task: "scan",
            row_ms: row_m.min_ms,
            batch_ms: batch_m.min_ms,
            e2e_row_virtual_ms: e2e_row_ms,
            e2e_batch_virtual_ms: e2e_bat_ms,
            rows: data.len(),
        });
    }

    // ---- gate ----
    for r in &rows {
        println!(
            "{}: kernel {:.2} ms row vs {:.2} ms batched — {:.2}x ({} rows); \
             e2e virtual {:.1} -> {:.1} ms",
            r.task,
            r.row_ms,
            r.batch_ms,
            r.speedup(),
            r.rows,
            r.e2e_row_virtual_ms,
            r.e2e_batch_virtual_ms,
        );
        assert!(
            r.speedup() >= GATE,
            "{}: batched kernel speedup {:.2}x below the {GATE}x gate \
             (row {:.2} ms, batched {:.2} ms over {} rows)",
            r.task,
            r.speedup(),
            r.row_ms,
            r.batch_ms,
            r.rows
        );
    }

    let mut report = Report::new("batch_bench");
    for r in &rows {
        report.row("row_kernel", r.task, r.row_ms, &format!("{} rows", r.rows));
        report.row("batched_kernel", r.task, r.batch_ms, &format!("{:.2}x", r.speedup()));
        report.row("e2e_row", r.task, r.e2e_row_virtual_ms, "");
        report.row("e2e_batched", r.task, r.e2e_batch_virtual_ms, "");
    }
    report.save();

    let mut json = String::from("{\n  \"bench\": \"batch_bench\",\n");
    let _ = writeln!(json, "  \"iters\": {ITERS},");
    let _ = writeln!(json, "  \"gate\": {GATE},");
    json.push_str("  \"tasks\": {\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    \"{}\": {{ \"rows\": {}, \"row_kernel_ms\": {:.3}, \
             \"batched_kernel_ms\": {:.3}, \"kernel_speedup\": {:.3}, \
             \"e2e_row_virtual_ms\": {:.3}, \"e2e_batched_virtual_ms\": {:.3} }}{}",
            r.task,
            r.rows,
            r.row_ms,
            r.batch_ms,
            r.speedup(),
            r.e2e_row_virtual_ms,
            r.e2e_batch_virtual_ms,
            comma
        );
    }
    json.push_str("  }\n}\n");
    std::fs::write("BENCH_PR6.json", &json).expect("write BENCH_PR6.json");
    println!("-- wrote BENCH_PR6.json ({} tasks)", rows.len());
}
