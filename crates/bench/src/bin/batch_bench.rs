//! Columnar batch-execution benchmark: vectorized fused pipelines over
//! typed column slices (`rheem_core::batch`) vs. the row-at-a-time
//! interpreter, on the two workloads the PR optimizes for —
//!
//! * **wordcount** — tokenize → pair → sum-by-key, where the batched path
//!   tokenizes each distinct line once and sums through dictionary ids
//!   instead of hashing every row, and
//! * **scan** — sargable filter → integer arithmetic → projection, where the
//!   batched path runs tight typed loops and carries survivors in a
//!   selection vector.
//!
//! Two *exchange* workloads cover the columnar shuffle —
//!
//! * **shuffle_wordcount** — map-side combine + hash exchange + reduce-side
//!   merge, where the columnar path combines through slot arrays, routes
//!   batches by dictionary id (`partition_batch`, selection vectors only),
//!   and merges without hashing a single string, and
//! * **join** — two-sided hash exchange + build/probe, where the columnar
//!   path co-partitions both key columns and joins per bucket
//!   (`join_buckets`) with typed keys instead of `Value` hashing.
//!
//! Kernel speedups are measured wall-clock over in-memory collections (no
//! I/O, forced single platform) and must clear **1.5x** on every workload —
//! `scripts/check.sh` runs this as a gate. End-to-end runs (JavaStreams for
//! the narrow tasks, Spark for the exchange tasks) are also recorded, and
//! every batched result is asserted byte-identical to its row-mode twin.
//! Writes `BENCH_PR6.json` (narrow kernels) and `BENCH_PR9.json` (exchange
//! kernels).
//!
//! Run with `cargo run --release --bin batch_bench`.

use std::fmt::Write as _;

use std::sync::Arc;

use rheem_bench::*;
use rheem_core::batch::{self, Batch, VectorKernel};
use rheem_core::fused::{FusedPipeline, FusedStep};
use rheem_core::kernels::{self, ReduceByState, SplitMix64};
use rheem_core::plan::{OperatorId, PlanBuilder, RheemPlan};
use rheem_core::platform::ids;
use rheem_core::udf::{
    BroadcastCtx, CmpOp, FlatMapUdf, KeySpec, KeyUdf, MapUdf, PredicateUdf, ReduceUdf, Sarg,
};
use rheem_core::value::Value;

const ITERS: u32 = 5;
const GATE: f64 = 1.5;

struct Row {
    task: &'static str,
    row_ms: f64,
    batch_ms: f64,
    e2e_row_virtual_ms: f64,
    e2e_batch_virtual_ms: f64,
    rows: usize,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.row_ms / self.batch_ms.max(1e-9)
    }
}

fn wordcount_lines(s: f64) -> Vec<Value> {
    let lines = ((20_000.0 * s) as usize).max(2_000);
    rheem_datagen::generate_text(lines, 10, 5_000, 17).into_iter().map(Value::from).collect()
}

fn scan_pairs(s: f64) -> Vec<Value> {
    let n = ((400_000.0 * s) as usize).max(40_000);
    let mut rng = SplitMix64(0xBA7C6);
    (0..n)
        .map(|_| {
            Value::pair(
                Value::from(rng.range_usize(1_000) as i64),
                Value::from(rng.range_usize(2_000) as i64 - 1_000),
            )
        })
        .collect()
}

/// String-keyed fact × dimension inputs for the join exchange: a large fact
/// side whose keys repeat across a moderate domain, and a filtered dimension
/// covering a quarter of that domain (one row per surviving key). String
/// keys are the showcase — the row join hashes full key strings per row in
/// both the shuffle and the probe, while the columnar join routes each
/// distinct dictionary entry once and probes by interner id.
fn join_pairs(s: f64) -> (Vec<Value>, Vec<Value>) {
    let nl = ((200_000.0 * s) as usize).max(20_000);
    let keys = (nl / 32).max(64);
    let mut rng = SplitMix64(0x101A9);
    let left: Vec<Value> = (0..nl)
        .map(|_| {
            Value::pair(
                Value::from(format!("user-{:06}", rng.range_usize(keys))),
                Value::from(rng.range_usize(10_000) as i64),
            )
        })
        .collect();
    let right: Vec<Value> = (0..keys / 4)
        .map(|k| {
            Value::pair(
                Value::from(format!("user-{:06}", k * 4)),
                Value::from(rng.range_usize(10_000) as i64),
            )
        })
        .collect();
    (left, right)
}

fn join_collection_plan(left: Vec<Value>, right: Vec<Value>) -> (RheemPlan, OperatorId) {
    let mut b = PlanBuilder::new();
    let r = b.collection(right);
    let sink = b.collection(left).join(&r, KeyUdf::field(0), KeyUdf::field(0)).collect();
    (b.build().expect("join plan"), sink)
}

fn wordcount_collection_plan(lines: Vec<Value>) -> (RheemPlan, OperatorId) {
    let mut b = PlanBuilder::new();
    let sink = b
        .collection(lines)
        .flat_map(FlatMapUdf::split_whitespace("split"))
        .map(MapUdf::pair_with_int("pair", 1))
        .reduce_by_key(KeyUdf::field(0), ReduceUdf::pair_int_sum("sum"))
        .collect();
    (b.build().expect("wordcount plan"), sink)
}

/// Filter + arithmetic chain of the sargable-scan task: quarter-selective
/// sarg, then three integer adjustments before the projection.
fn scan_steps() -> Vec<FusedStep> {
    let sarg = Sarg { field: 1, op: CmpOp::Gt, literal: Value::from(500i64) };
    let sp = PredicateUdf::from_sarg("hot", sarg);
    vec![
        FusedStep::Filter(sp.pred),
        FusedStep::Map(MapUdf::field_add_int("bump", 1, 5)),
        FusedStep::Map(MapUdf::field_add_int("rebase", 0, -3)),
        FusedStep::Map(MapUdf::field_add_int("scale", 1, 11)),
        FusedStep::Project(vec![1, 0]),
    ]
}

fn scan_collection_plan(data: Vec<Value>) -> (RheemPlan, OperatorId) {
    let sarg = Sarg { field: 1, op: CmpOp::Gt, literal: Value::from(500i64) };
    let sp = PredicateUdf::from_sarg("hot", sarg);
    let mut b = PlanBuilder::new();
    let sink = b
        .collection(data)
        .filter_sarg(sp.pred, sp.sarg)
        .map(MapUdf::field_add_int("bump", 1, 5))
        .map(MapUdf::field_add_int("rebase", 0, -3))
        .map(MapUdf::field_add_int("scale", 1, 11))
        .project([1usize, 0])
        .collect();
    (b.build().expect("scan plan"), sink)
}

/// Forced-JavaStreams end-to-end run; returns (sorted sink, virtual ms).
fn run_e2e(build: impl Fn() -> (RheemPlan, OperatorId), batched: bool) -> (Vec<Value>, f64) {
    run_e2e_on(build, batched, ids::JAVA_STREAMS)
}

/// Forced-platform end-to-end run; returns (sorted sink, virtual ms).
fn run_e2e_on(
    build: impl Fn() -> (RheemPlan, OperatorId),
    batched: bool,
    platform: rheem_core::platform::PlatformId,
) -> (Vec<Value>, f64) {
    let mut ctx = default_context().with_batch(batched);
    ctx.forced_platform = Some(platform);
    let (plan, sink) = build();
    let r = ctx.execute(&plan).expect("bench job");
    let mut out = r.sink(sink).expect("sink").to_vec();
    out.sort();
    (out, r.metrics.virtual_ms)
}

/// Chunk a dataset into `n` row partitions (engine `div_ceil` convention).
fn row_parts(data: &[Value], n: usize) -> Vec<Arc<Vec<Value>>> {
    data.chunks(data.len().div_ceil(n).max(1)).map(|c| Arc::new(c.to_vec())).collect()
}

/// The same partitions, pre-columnized — as a vectorized producer stage
/// would hand them to the exchange.
fn batch_parts(data: &[Value], n: usize) -> Vec<Batch> {
    data.chunks(data.len().div_ceil(n).max(1)).map(Batch::from_values).collect()
}

fn main() {
    let s = scale();
    let bc = BroadcastCtx::new();
    let mut rows = Vec::new();

    // ---- wordcount: tokenize → pair → dictionary-keyed sum ----
    {
        let lines = wordcount_lines(s);
        let pipeline = FusedPipeline::new(vec![
            FusedStep::FlatMap(FlatMapUdf::split_whitespace("split")),
            FusedStep::Map(MapUdf::pair_with_int("pair", 1)),
        ]);
        let key = KeyUdf::field(0);
        let agg = ReduceUdf::pair_int_sum("sum");
        let vk = VectorKernel::compile(&pipeline).expect("wordcount chain must vectorize");
        assert!(batch::agg_vectorizable(&key, &agg), "wordcount agg must vectorize");

        let mut row_out = Vec::new();
        let row_m = harness::bench("wordcount/row", ITERS, || {
            let mut st = ReduceByState::new(&key, &agg);
            pipeline.run_each(&lines, &bc, |v| st.feed_owned(v));
            row_out = st.finish();
        });
        let mut batch_out = Vec::new();
        let batch_m = harness::bench("wordcount/batched", ITERS, || {
            batch_out =
                batch::run_reduce(&vk, &lines, &key, &agg, false).expect("wordcount vectorizes");
        });
        assert_eq!(batch_out, row_out, "wordcount: batched kernel diverged from row kernel");

        let (e2e_row, e2e_row_ms) = run_e2e(|| wordcount_collection_plan(lines.clone()), false);
        let (e2e_bat, e2e_bat_ms) = run_e2e(|| wordcount_collection_plan(lines.clone()), true);
        assert_eq!(e2e_bat, e2e_row, "wordcount: batched end-to-end run diverged");

        rows.push(Row {
            task: "wordcount",
            row_ms: row_m.min_ms,
            batch_ms: batch_m.min_ms,
            e2e_row_virtual_ms: e2e_row_ms,
            e2e_batch_virtual_ms: e2e_bat_ms,
            rows: lines.len(),
        });
    }

    // ---- sargable scan: typed filter → int arithmetic → projection ----
    {
        let data = scan_pairs(s);
        let pipeline = FusedPipeline::new(scan_steps());
        let vk = VectorKernel::compile(&pipeline).expect("scan chain must vectorize");

        let mut row_out = Vec::new();
        let row_m = harness::bench("scan/row", ITERS, || {
            row_out = pipeline.run(&data, &bc);
        });
        let mut batch_out = Vec::new();
        let batch_m = harness::bench("scan/batched", ITERS, || {
            batch_out = vk.run_values(&data).expect("scan vectorizes").to_values();
        });
        assert_eq!(batch_out, row_out, "scan: batched kernel diverged from row kernel");

        let (e2e_row, e2e_row_ms) = run_e2e(|| scan_collection_plan(data.clone()), false);
        let (e2e_bat, e2e_bat_ms) = run_e2e(|| scan_collection_plan(data.clone()), true);
        assert_eq!(e2e_bat, e2e_row, "scan: batched end-to-end run diverged");

        rows.push(Row {
            task: "scan",
            row_ms: row_m.min_ms,
            batch_ms: batch_m.min_ms,
            e2e_row_virtual_ms: e2e_row_ms,
            e2e_batch_virtual_ms: e2e_bat_ms,
            rows: data.len(),
        });
    }

    // ---- shuffle-heavy wordcount: combine + hash exchange + merge ----
    {
        let lines = wordcount_lines(s);
        let tokenizer = FusedPipeline::new(vec![
            FusedStep::FlatMap(FlatMapUdf::split_whitespace("split")),
            FusedStep::Map(MapUdf::pair_with_int("pair", 1)),
        ]);
        let pairs = tokenizer.run(&lines, &bc);
        let n = 8usize;
        let rparts = row_parts(&pairs, n);
        let bparts = batch_parts(&pairs, n);
        let key = KeyUdf::field(0);
        let agg = ReduceUdf::pair_int_sum("sum");
        let spec = agg.spec.clone().expect("pair_int_sum is spec'd");

        let mut row_out: Vec<Vec<Value>> = Vec::new();
        let row_m = harness::bench("shuffle_wordcount/row", ITERS, || {
            let combined: Vec<Arc<Vec<Value>>> =
                rparts.iter().map(|p| Arc::new(kernels::combine_by(p, &key, &agg))).collect();
            let (ex, _) = platform_spark::shuffle(&combined, &key, n);
            row_out = ex.iter().map(|p| kernels::merge_by(p, &agg)).collect();
        });
        let mut batch_out: Vec<Vec<Value>> = Vec::new();
        let batch_m = harness::bench("shuffle_wordcount/batched", ITERS, || {
            let mut buckets: Vec<Vec<Batch>> = vec![Vec::new(); n];
            for b in &bparts {
                let cb = batch::combine_batch(b, &spec).expect("wordcount pairs combine");
                let parts = batch::partition_batch(&cb, &KeySpec::Field(0), n)
                    .expect("combined batch partitions");
                for (j, p) in parts.into_iter().enumerate() {
                    buckets[j].push(p);
                }
            }
            batch_out = buckets
                .iter()
                .map(|bs| batch::merge_batches(bs).expect("contributions merge").to_values())
                .collect();
        });
        assert_eq!(
            batch_out, row_out,
            "shuffle_wordcount: columnar exchange diverged from row exchange"
        );

        let (e2e_row, e2e_row_ms) =
            run_e2e_on(|| wordcount_collection_plan(lines.clone()), false, ids::SPARK);
        let (e2e_bat, e2e_bat_ms) =
            run_e2e_on(|| wordcount_collection_plan(lines.clone()), true, ids::SPARK);
        assert_eq!(e2e_bat, e2e_row, "shuffle_wordcount: batched end-to-end run diverged");

        rows.push(Row {
            task: "shuffle_wordcount",
            row_ms: row_m.min_ms,
            batch_ms: batch_m.min_ms,
            e2e_row_virtual_ms: e2e_row_ms,
            e2e_batch_virtual_ms: e2e_bat_ms,
            rows: pairs.len(),
        });
    }

    // ---- join: two-sided hash exchange + build/probe ----
    {
        let (left, right) = join_pairs(s);
        let n = 8usize;
        let lr = row_parts(&left, n);
        let rr = row_parts(&right, n);
        let lb = batch_parts(&left, n);
        let rb = batch_parts(&right, n);
        let key = KeyUdf::field(0);
        let ks = KeySpec::Field(0);

        let mut row_out: Vec<Vec<Value>> = Vec::new();
        let row_m = harness::bench("join/row", ITERS, || {
            let (le, _) = platform_spark::shuffle(&lr, &key, n);
            let (re, _) = platform_spark::shuffle(&rr, &key, n);
            row_out =
                le.iter().zip(&re).map(|(l, r)| kernels::hash_join(l, r, &key, &key)).collect();
        });
        let mut batch_out: Vec<Vec<Value>> = Vec::new();
        let batch_m = harness::bench("join/batched", ITERS, || {
            let mut lbuckets: Vec<Vec<Batch>> = vec![Vec::new(); n];
            let mut rbuckets: Vec<Vec<Batch>> = vec![Vec::new(); n];
            for (parts, buckets) in [(&lb, &mut lbuckets), (&rb, &mut rbuckets)] {
                for b in parts.iter() {
                    let bs =
                        batch::partition_batch(b, &ks, n).expect("typed join input partitions");
                    for (j, p) in bs.into_iter().enumerate() {
                        buckets[j].push(p);
                    }
                }
            }
            batch_out = (0..n)
                .map(|j| {
                    batch::join_buckets(&lbuckets[j], &rbuckets[j], &ks, &ks)
                        .expect("typed key columns join")
                })
                .collect();
        });
        assert_eq!(batch_out, row_out, "join: columnar exchange diverged from row exchange");

        let (e2e_row, e2e_row_ms) =
            run_e2e_on(|| join_collection_plan(left.clone(), right.clone()), false, ids::SPARK);
        let (e2e_bat, e2e_bat_ms) =
            run_e2e_on(|| join_collection_plan(left.clone(), right.clone()), true, ids::SPARK);
        assert_eq!(e2e_bat, e2e_row, "join: batched end-to-end run diverged");

        rows.push(Row {
            task: "join",
            row_ms: row_m.min_ms,
            batch_ms: batch_m.min_ms,
            e2e_row_virtual_ms: e2e_row_ms,
            e2e_batch_virtual_ms: e2e_bat_ms,
            rows: left.len() + right.len(),
        });
    }

    // ---- gate ----
    for r in &rows {
        println!(
            "{}: kernel {:.2} ms row vs {:.2} ms batched — {:.2}x ({} rows); \
             e2e virtual {:.1} -> {:.1} ms",
            r.task,
            r.row_ms,
            r.batch_ms,
            r.speedup(),
            r.rows,
            r.e2e_row_virtual_ms,
            r.e2e_batch_virtual_ms,
        );
        assert!(
            r.speedup() >= GATE,
            "{}: batched kernel speedup {:.2}x below the {GATE}x gate \
             (row {:.2} ms, batched {:.2} ms over {} rows)",
            r.task,
            r.speedup(),
            r.row_ms,
            r.batch_ms,
            r.rows
        );
    }

    let mut report = Report::new("batch_bench");
    for r in &rows {
        report.row("row_kernel", r.task, r.row_ms, &format!("{} rows", r.rows));
        report.row("batched_kernel", r.task, r.batch_ms, &format!("{:.2}x", r.speedup()));
        report.row("e2e_row", r.task, r.e2e_row_virtual_ms, "");
        report.row("e2e_batched", r.task, r.e2e_batch_virtual_ms, "");
    }
    report.save();

    // Narrow kernel tasks keep the PR6 report; the exchange tasks get PR9.
    let write_report = |file: &str, bench: &str, tasks: &[&Row]| {
        let mut json = format!("{{\n  \"bench\": \"{bench}\",\n");
        let _ = writeln!(json, "  \"iters\": {ITERS},");
        let _ = writeln!(json, "  \"gate\": {GATE},");
        json.push_str("  \"tasks\": {\n");
        for (i, r) in tasks.iter().enumerate() {
            let comma = if i + 1 < tasks.len() { "," } else { "" };
            let _ = writeln!(
                json,
                "    \"{}\": {{ \"rows\": {}, \"row_kernel_ms\": {:.3}, \
                 \"batched_kernel_ms\": {:.3}, \"kernel_speedup\": {:.3}, \
                 \"e2e_row_virtual_ms\": {:.3}, \"e2e_batched_virtual_ms\": {:.3} }}{}",
                r.task,
                r.rows,
                r.row_ms,
                r.batch_ms,
                r.speedup(),
                r.e2e_row_virtual_ms,
                r.e2e_batch_virtual_ms,
                comma
            );
        }
        json.push_str("  }\n}\n");
        std::fs::write(file, &json).unwrap_or_else(|e| panic!("write {file}: {e}"));
        println!("-- wrote {file} ({} tasks)", tasks.len());
    };
    let narrow: Vec<&Row> =
        rows.iter().filter(|r| matches!(r.task, "wordcount" | "scan")).collect();
    let exchange: Vec<&Row> =
        rows.iter().filter(|r| matches!(r.task, "shuffle_wordcount" | "join")).collect();
    write_report("BENCH_PR6.json", "batch_bench", &narrow);
    write_report("BENCH_PR9.json", "batch_bench_exchange", &exchange);
}
