//! Regenerates **Figure 2(b)** — opportunistic cross-platform via ML4all:
//! SGD classification on three datasets, ML@Rheem (free to mix Spark and
//! JavaStreams) vs MLlib-like (all Spark) vs SystemML-like (all Spark +
//! compilation, constrained memory — OOMs on the synthetic set).

use rheem_bench::*;

fn main() {
    let s = scale();
    let mut report = Report::new("fig2b_sgd");
    // (name, rows, dims): rcv1-like (many dims, few rows), higgs-like, and
    // a big dense synthetic one. Datasets live on HDFS as CSV, like the
    // paper's HDFS-resident benchmark files (Table 1).
    let datasets: Vec<(&str, usize, usize)> = vec![
        ("rcv1", (60_000.0 * s) as usize, 32),
        ("higgs", (1_000_000.0 * s) as usize, 8),
        ("synthetic", (2_500_000.0 * s) as usize, 12),
    ];
    for (name, n, dims) in datasets {
        let n = n.max(100);
        let path = std::path::PathBuf::from(format!("hdfs://bench/fig2b_{name}_{n}.csv"));
        let set = rheem_datagen::generate_points(n, dims, 0.05, 3);
        if rheem_storage::stat(&path).is_err() {
            rheem_datagen::points::write_points(&path, &set).expect("points written");
        }
        let points = set.points;
        let cfg = ml4all::SgdConfig { dims, batch: 100, iterations: 100, ..Default::default() };

        // ML@Rheem: free choice over the CSV source.
        let ctx = default_context();
        let (plan, sink) =
            ml4all::build_sgd_plan(ml4all::PointSource::Csv(path.clone()), &cfg).expect("plan");
        match ctx.execute(&plan) {
            Ok(r) => {
                let w = ml4all::weights_of(r.sink(sink).expect("weights"));
                let loss = ml4all::hinge_loss(&points, &w);
                report.row(
                    "ML@Rheem",
                    name,
                    r.metrics.virtual_ms,
                    &format!("loss {loss:.3} via {:?}", r.metrics.platforms),
                );
            }
            Err(e) => report.failed("ML@Rheem", name, &e.to_string()),
        }

        // MLlib: everything on Spark.
        match rheem_baselines::mllib_sgd(ml4all::PointSource::Csv(path.clone()), &cfg) {
            Ok((w, m)) => {
                let loss = ml4all::hinge_loss(&points, &w);
                report.row("MLlib", name, m.virtual_ms, &format!("loss {loss:.3}"));
            }
            Err(e) => report.failed("MLlib", name, &e.to_string()),
        }

        // SystemML: compilation + constrained memory; the big synthetic
        // dataset OOMs (the paper's "out of memory" bar).
        match rheem_baselines::systemml_sgd(ml4all::PointSource::Csv(path.clone()), &cfg) {
            Ok((w, m)) => {
                let loss = ml4all::hinge_loss(&points, &w);
                report.row("SystemML", name, m.virtual_ms, &format!("loss {loss:.3}"));
            }
            Err(e) => report.failed("SystemML", name, &e.to_string()),
        }
    }
    report.save();
}
