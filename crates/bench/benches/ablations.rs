//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * **Lossless pruning** (§4.1): enumeration with signature pruning vs the
//!   exhaustive Join-only algebra — same chosen plan, exponentially fewer
//!   partials.
//! * **Minimal conversion trees** (§4.1): MCT fan-out sharing vs routing
//!   every consumer independently.
//! * **Operator fusion / chaining**: optimizer cost of a fused pipeline vs
//!   the same plan with fusion mappings unavailable (approximated by
//!   per-operator cost accounting).
//! * **Cost-model learning** (§4.5): prediction loss of the learned model
//!   vs the untuned defaults on real execution logs.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use rheem_bench::{community_files, default_context, graph_context};
use rheem_core::cardinality::Estimator;
use rheem_core::learner::{samples_from_monitor, CostLearner};
use rheem_core::optimizer::Optimizer;

fn croco_plan() -> rheem_core::plan::RheemPlan {
    let (fa, fb) = community_files("bench_abl", 5_000, 8);
    xdb::build_crocopr_plan(xdb::CrocoSource::Files(fa, fb), 3)
        .unwrap()
        .0
}

/// A mid-size pipeline the exhaustive baseline can still enumerate (the
/// CrocoPR plan below is only tractable *with* pruning — which is the
/// point of §4.1's algebra).
fn pipeline_plan(ops: usize) -> rheem_core::plan::RheemPlan {
    use rheem_core::plan::PlanBuilder;
    use rheem_core::udf::MapUdf;
    use rheem_core::value::Value;
    let mut b = PlanBuilder::new();
    let mut dq = b.collection((0..1000i64).map(Value::from).collect::<Vec<_>>());
    for i in 0..ops {
        dq = dq.map(MapUdf::new(format!("m{i}"), |v| v.clone()));
    }
    dq.count().collect();
    b.build().unwrap()
}

fn bench_pruning(c: &mut Criterion) {
    let small = pipeline_plan(6);
    let croco = croco_plan();
    let ctx = graph_context();
    let mut group = c.benchmark_group("enumeration");
    group.sample_size(10).measurement_time(Duration::from_secs(8));
    group.bench_function("pruned_crocopr_16ops", |b| {
        b.iter(|| {
            let opt = ctx.optimize(&croco).unwrap();
            (opt.est_ms, opt.stats.partials_created)
        })
    });
    group.bench_function("pruned_pipeline_8ops", |b| {
        b.iter(|| ctx.optimize(&small).unwrap().est_ms)
    });
    group.bench_function("exhaustive_pipeline_8ops", |b| {
        b.iter(|| {
            let optimizer =
                Optimizer::new(ctx.registry(), ctx.profiles(), ctx.cost_model());
            optimizer.optimize_exhaustive(&small, &Estimator::new()).unwrap().est_ms
        })
    });
    group.finish();

    // Sanity: identical chosen cost, far fewer partials — on the plan the
    // exhaustive baseline can still finish.
    let pruned = ctx.optimize(&small).unwrap();
    let optimizer = Optimizer::new(ctx.registry(), ctx.profiles(), ctx.cost_model());
    let full = optimizer.optimize_exhaustive(&small, &Estimator::new()).unwrap();
    assert!((pruned.est_ms - full.est_ms).abs() < 1e-6, "pruning must be lossless");
    println!(
        "ablation/pruning: partials {} (pruned) vs {} (exhaustive) on the 8-op pipeline;          the 16-op CrocoPR plan is enumerable only with pruning ({} partials)",
        pruned.stats.partials_created,
        full.stats.partials_created,
        ctx.optimize(&croco).unwrap().stats.partials_created
    );
}

fn bench_movement(c: &mut Criterion) {
    use rheem_core::channel::kinds;
    use rheem_core::cost::CostModel;
    use rheem_core::movement::ConversionGraph;
    let ctx = default_context();
    let graph = ConversionGraph::from_registry(ctx.registry());
    let profiles = ctx.profiles().clone();
    let model = CostModel::new();
    // A cached RDD (reusable) feeding two driver-side consumers and a Flink
    // consumer: the tree shares the expensive collect step; independent
    // routing pays it once per consumer. (From a *non-reusable* root the
    // comparison would be unfair the other way: per-consumer paths would
    // implicitly assume free lineage recomputation.)
    let root = platform_spark::RDD_CACHED;
    let consumers = vec![
        vec![kinds::COLLECTION],
        vec![kinds::COLLECTION],
        vec![platform_flink::DATASET],
    ];
    let mut group = c.benchmark_group("movement");
    group.sample_size(20).measurement_time(Duration::from_secs(5));
    group.bench_function("mct_shared_tree", |b| {
        b.iter(|| {
            graph
                .best_tree(root, &consumers, 1e6, 64.0, &profiles, &model)
                .unwrap()
                .cost_ms
        })
    });
    group.bench_function("per_consumer_paths", |b| {
        b.iter(|| {
            consumers
                .iter()
                .map(|kinds| {
                    graph
                        .best_path_cost(root, kinds, 1e6, 64.0, &profiles, &model)
                        .unwrap()
                })
                .sum::<f64>()
        })
    });
    group.finish();

    let shared = graph
        .best_tree(root, &consumers, 1e6, 64.0, &profiles, &model)
        .unwrap()
        .cost_ms;
    let separate: f64 = consumers
        .iter()
        .map(|k| graph.best_path_cost(root, k, 1e6, 64.0, &profiles, &model).unwrap())
        .sum();
    println!("ablation/movement: shared tree {shared:.2} ms vs independent paths {separate:.2} ms");
    assert!(shared <= separate + 1e-9);
}

fn bench_costlearn(c: &mut Criterion) {
    // Gather real execution logs from a few WordCount runs, then compare
    // the learned model's stage-time predictions against the defaults.
    let ctx = default_context();
    let path = rheem_bench::corpus_file("bench_abl_cl", 128, 4);
    let (plan, _) = rheem_bench::wordcount_plan(&path).unwrap();
    for _ in 0..3 {
        ctx.execute(&plan).unwrap();
    }
    let samples = samples_from_monitor(ctx.monitor());
    assert!(!samples.is_empty());
    let learner = CostLearner { generations: 60, ..Default::default() };

    let mut group = c.benchmark_group("cost_learner");
    group.sample_size(10).measurement_time(Duration::from_secs(10));
    group.bench_function("ga_fit", |b| {
        b.iter(|| learner.fit(&samples, ctx.profiles()))
    });
    group.finish();

    let fitted = learner.fit(&samples, ctx.profiles());
    let loss_learned = learner.evaluate(&fitted, &samples, ctx.profiles());
    let loss_default =
        learner.evaluate(&rheem_core::cost::CostModel::new(), &samples, ctx.profiles());
    println!(
        "ablation/costlearn: loss learned {loss_learned:.4} vs defaults {loss_default:.4}"
    );
    assert!(loss_learned <= loss_default);
}

fn bench_fusion(c: &mut Criterion) {
    // Optimizer view of fusion: compare the chosen (fused) plan's estimate
    // with the sum of per-operator singles on the same platform.
    use rheem_core::plan::PlanBuilder;
    use rheem_core::udf::{MapUdf, PredicateUdf};
    use rheem_core::value::Value;
    let mut b = PlanBuilder::new();
    b.collection((0..50_000i64).map(Value::from).collect::<Vec<_>>())
        .map(MapUdf::new("a", |v| Value::from(v.as_int().unwrap() + 1)))
        .filter(PredicateUdf::new("b", |v| v.as_int().unwrap() % 2 == 0))
        .map(MapUdf::new("c", |v| Value::from(v.as_int().unwrap() * 3)))
        .collect();
    let plan = b.build().unwrap();
    let ctx = default_context();
    let mut group = c.benchmark_group("fusion");
    group.sample_size(10).measurement_time(Duration::from_secs(8));
    group.bench_function("fused_pipeline_exec", |bch| {
        bch.iter(|| ctx.execute(&plan).unwrap().metrics.virtual_ms)
    });
    group.finish();

    let opt = ctx.optimize(&plan).unwrap();
    let fused = opt.candidates[opt.choice[1]].covers.len();
    println!("ablation/fusion: chain length chosen by the optimizer = {fused}");
    assert!(fused >= 2, "fusion should be chosen");
}

criterion_group!(abl, bench_pruning, bench_movement, bench_costlearn, bench_fusion);
criterion_main!(abl);
