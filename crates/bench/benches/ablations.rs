//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * **Lossless pruning** (§4.1): enumeration with signature pruning vs the
//!   exhaustive Join-only algebra — same chosen plan, exponentially fewer
//!   partials.
//! * **Minimal conversion trees** (§4.1): MCT fan-out sharing vs routing
//!   every consumer independently.
//! * **Operator fusion**: the real toggle — the same WordCount executed
//!   with chain candidates enabled (fused single-pass pipelines) vs
//!   disabled (operator-at-a-time), measured in wall-clock ms.
//! * **Cost-model learning** (§4.5): prediction loss of the learned model
//!   vs the untuned defaults on real execution logs.
//!
//! Run with `cargo bench --bench ablations`.

use rheem_bench::harness::bench;
use rheem_bench::{community_files, default_context, graph_context};
use rheem_core::cardinality::Estimator;
use rheem_core::learner::{samples_from_monitor, CostLearner};
use rheem_core::optimizer::Optimizer;
use rheem_core::platform::ids;

fn croco_plan() -> rheem_core::plan::RheemPlan {
    let (fa, fb) = community_files("bench_abl", 5_000, 8);
    xdb::build_crocopr_plan(xdb::CrocoSource::Files(fa, fb), 3).unwrap().0
}

/// A mid-size pipeline the exhaustive baseline can still enumerate (the
/// CrocoPR plan below is only tractable *with* pruning — which is the
/// point of §4.1's algebra).
fn pipeline_plan(ops: usize) -> rheem_core::plan::RheemPlan {
    use rheem_core::plan::PlanBuilder;
    use rheem_core::udf::MapUdf;
    use rheem_core::value::Value;
    let mut b = PlanBuilder::new();
    let mut dq = b.collection((0..1000i64).map(Value::from).collect::<Vec<_>>());
    for i in 0..ops {
        dq = dq.map(MapUdf::new(format!("m{i}"), |v| v.clone()));
    }
    dq.count().collect();
    b.build().unwrap()
}

fn bench_pruning() {
    println!("-- enumeration --");
    let small = pipeline_plan(6);
    let croco = croco_plan();
    let ctx = graph_context();
    bench("enumeration/pruned_crocopr_16ops", 10, || {
        let opt = ctx.optimize(&croco).unwrap();
        (opt.est_ms, opt.stats.partials_created)
    });
    bench("enumeration/pruned_pipeline_8ops", 10, || ctx.optimize(&small).unwrap().est_ms);
    bench("enumeration/exhaustive_pipeline_8ops", 10, || {
        let optimizer = Optimizer::new(ctx.registry(), ctx.profiles(), ctx.cost_model());
        optimizer.optimize_exhaustive(&small, &Estimator::new()).unwrap().est_ms
    });

    // Sanity: identical chosen cost, far fewer partials — on the plan the
    // exhaustive baseline can still finish.
    let pruned = ctx.optimize(&small).unwrap();
    let optimizer = Optimizer::new(ctx.registry(), ctx.profiles(), ctx.cost_model());
    let full = optimizer.optimize_exhaustive(&small, &Estimator::new()).unwrap();
    assert!((pruned.est_ms - full.est_ms).abs() < 1e-6, "pruning must be lossless");
    println!(
        "ablation/pruning: partials {} (pruned) vs {} (exhaustive) on the 8-op pipeline; \
         the 16-op CrocoPR plan is enumerable only with pruning ({} partials)",
        pruned.stats.partials_created,
        full.stats.partials_created,
        ctx.optimize(&croco).unwrap().stats.partials_created
    );
}

fn bench_movement() {
    println!("-- movement --");
    use rheem_core::channel::kinds;
    use rheem_core::cost::CostModel;
    use rheem_core::movement::ConversionGraph;
    let ctx = default_context();
    let graph = ConversionGraph::from_registry(ctx.registry());
    let profiles = ctx.profiles().clone();
    let model = CostModel::new();
    // A cached RDD (reusable) feeding two driver-side consumers and a Flink
    // consumer: the tree shares the expensive collect step; independent
    // routing pays it once per consumer. (From a *non-reusable* root the
    // comparison would be unfair the other way: per-consumer paths would
    // implicitly assume free lineage recomputation.)
    let root = platform_spark::RDD_CACHED;
    let consumers =
        vec![vec![kinds::COLLECTION], vec![kinds::COLLECTION], vec![platform_flink::DATASET]];
    bench("movement/mct_shared_tree", 20, || {
        graph.best_tree(root, &consumers, 1e6, 64.0, &profiles, &model).unwrap().cost_ms
    });
    bench("movement/per_consumer_paths", 20, || {
        consumers
            .iter()
            .map(|kinds| graph.best_path_cost(root, kinds, 1e6, 64.0, &profiles, &model).unwrap())
            .sum::<f64>()
    });

    let shared = graph.best_tree(root, &consumers, 1e6, 64.0, &profiles, &model).unwrap().cost_ms;
    let separate: f64 = consumers
        .iter()
        .map(|k| graph.best_path_cost(root, k, 1e6, 64.0, &profiles, &model).unwrap())
        .sum();
    println!("ablation/movement: shared tree {shared:.2} ms vs independent paths {separate:.2} ms");
    assert!(shared <= separate + 1e-9);
}

fn bench_costlearn() {
    println!("-- cost_learner --");
    // Gather real execution logs from a few WordCount runs, then compare
    // the learned model's stage-time predictions against the defaults.
    let ctx = default_context();
    let path = rheem_bench::corpus_file("bench_abl_cl", 128, 4);
    let (plan, _) = rheem_bench::wordcount_plan(&path).unwrap();
    for _ in 0..3 {
        ctx.execute(&plan).unwrap();
    }
    let samples = samples_from_monitor(ctx.monitor());
    assert!(!samples.is_empty());
    let learner = CostLearner { generations: 60, ..Default::default() };

    bench("cost_learner/ga_fit", 5, || learner.fit(&samples, ctx.profiles()));

    let fitted = learner.fit(&samples, ctx.profiles());
    let loss_learned = learner.evaluate(&fitted, &samples, ctx.profiles());
    let loss_default =
        learner.evaluate(&rheem_core::cost::CostModel::new(), &samples, ctx.profiles());
    println!("ablation/costlearn: loss learned {loss_learned:.4} vs defaults {loss_default:.4}");
    assert!(loss_learned <= loss_default);
}

fn bench_fusion() {
    println!("-- fusion --");
    // The real fusion toggle: the identical WordCount job, JavaStreams
    // forced (deterministic, no thread noise), with chain candidates on vs
    // off. Fused runs traverse each partition once per narrow chain; the
    // unfused baseline materializes an intermediate dataset per operator.
    let path = rheem_bench::corpus_file("bench_abl_fu", 512, 6);
    let (plan, _) = rheem_bench::wordcount_plan(&path).unwrap();

    let mut fused_ctx = default_context().with_fusion(true);
    fused_ctx.forced_platform = Some(ids::JAVA_STREAMS);
    let mut unfused_ctx = default_context().with_fusion(false);
    unfused_ctx.forced_platform = Some(ids::JAVA_STREAMS);

    // Interleave the two series (fused, unfused, fused, …): measuring one
    // series to completion before the other lets allocator/frequency drift
    // masquerade as a fusion effect.
    let iters = 15u32;
    fused_ctx.execute(&plan).unwrap();
    unfused_ctx.execute(&plan).unwrap();
    let (mut on, mut off) = (0.0f64, 0.0f64);
    for _ in 0..iters {
        let t = std::time::Instant::now();
        std::hint::black_box(fused_ctx.execute(&plan).unwrap());
        on += t.elapsed().as_secs_f64() * 1000.0;
        let t = std::time::Instant::now();
        std::hint::black_box(unfused_ctx.execute(&plan).unwrap());
        off += t.elapsed().as_secs_f64() * 1000.0;
    }
    let (on, off) = (on / iters as f64, off / iters as f64);
    println!(
        "{:<40} {:>10.2} ms/iter  ({} iters, interleaved)",
        "fusion/wordcount_fused", on, iters
    );
    println!(
        "{:<40} {:>10.2} ms/iter  ({} iters, interleaved)",
        "fusion/wordcount_unfused", off, iters
    );
    println!(
        "ablation/fusion: fused {:.2} ms vs unfused {:.2} ms wall-clock ({:.2}x)",
        on,
        off,
        off / on.max(1e-9)
    );
    assert!(on < off, "fused must beat unfused wall-clock");

    // The optimizer must actually pick a chain when fusion is on.
    let opt = fused_ctx.optimize(&plan).unwrap();
    let max_cover = opt.choice.iter().map(|&c| opt.candidates[c].covers.len()).max().unwrap();
    assert!(max_cover >= 2, "fusion should be chosen");
    let opt_off = unfused_ctx.optimize(&plan).unwrap();
    assert!(
        opt_off.choice.iter().all(|&c| opt_off.candidates[c].covers.len() == 1),
        "toggle must suppress chains"
    );
}

// Fusion runs first: its baseline pays for the intermediate materializations
// fusion avoids, and a fresh-process allocator is what makes that cost real
// (after the other benches have grown the heap, the unfused intermediates
// recycle warm pages and the contrast flattens).
fn main() {
    bench_fusion();
    bench_pruning();
    bench_movement();
    bench_costlearn();
}
