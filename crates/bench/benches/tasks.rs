//! Micro-benchmarks over the paper's three task families (WordCount, SGD,
//! CrocoPR) plus the polystore Q5 and the IEJoin ablation, on the repo's
//! own wall-clock harness (`rheem_bench::harness`). These run the real
//! execution path end-to-end at small scale; wall-clock here tracks the
//! *reproduction's* performance, while the `fig*` binaries report virtual
//! cluster time.
//!
//! Run with `cargo bench --bench tasks`.

use std::sync::Arc;

use rheem_bench::harness::bench;
use rheem_bench::{community_files, corpus_file, default_context, graph_context, wordcount_plan};
use rheem_core::platform::ids;

fn bench_wordcount() {
    println!("-- wordcount_256kb --");
    let path = corpus_file("bench_wc", 256, 5);
    let (plan, _) = wordcount_plan(&path).unwrap();
    for platform in [ids::JAVA_STREAMS, ids::SPARK, ids::FLINK] {
        let mut ctx = default_context();
        ctx.forced_platform = Some(platform);
        bench(&format!("wordcount/forced_{}", platform.0), 10, || {
            ctx.execute(&plan).unwrap().metrics.virtual_ms
        });
    }
    let ctx = default_context();
    bench("wordcount/rheem_free", 10, || ctx.execute(&plan).unwrap().metrics.virtual_ms);
}

fn bench_sgd() {
    println!("-- sgd_20k_20iters --");
    let points = Arc::new(rheem_datagen::generate_points(20_000, 4, 0.05, 9).points);
    let cfg = ml4all::SgdConfig { iterations: 20, batch: 64, ..Default::default() };
    let (plan, _) = ml4all::build_sgd_plan(ml4all::PointSource::InMemory(points), &cfg).unwrap();
    let ctx = default_context();
    bench("sgd/rheem_free", 10, || ctx.execute(&plan).unwrap().metrics.virtual_ms);
}

fn bench_crocopr() {
    println!("-- crocopr_20k_edges --");
    let (fa, fb) = community_files("bench_cpr", 20_000, 5);
    let (plan, _) = xdb::build_crocopr_plan(xdb::CrocoSource::Files(fa, fb), 5).unwrap();
    let ctx = graph_context();
    bench("crocopr/rheem_free", 10, || ctx.execute(&plan).unwrap().metrics.virtual_ms);
}

fn bench_q5() {
    println!("-- tpch_q5_sf005 --");
    let data = rheem_datagen::tpch::generate(0.05, 3);
    let p = dataciv::place(&data, "bench_q5").unwrap();
    let (plan, _) = dataciv::build_q5_plan(&p, "ASIA", 1995).unwrap();
    let mut ctx = default_context();
    ctx.register_platform(&platform_postgres::PostgresPlatform::new(Arc::clone(&p.db)));
    bench("q5/polystore", 10, || ctx.execute(&plan).unwrap().metrics.virtual_ms);
}

fn bench_iejoin() {
    println!("-- inequality_join_4k --");
    use rheem_core::plan::IneqCond;
    use rheem_core::udf::CmpOp;
    let rows = rheem_datagen::generate_tax(4_000, 0.001, 3);
    let c1 = IneqCond { left_field: 2, op: CmpOp::Gt, right_field: 2 };
    let c2 = IneqCond { left_field: 3, op: CmpOp::Lt, right_field: 3 };
    bench("iejoin/sort_based", 10, || bigdansing::iejoin::iejoin(&rows, &rows, &c1, &c2).len());
    bench("iejoin/nested_loop", 10, || {
        rheem_core::kernels::ineq_join_nested(&rows, &rows, &[c1.clone(), c2.clone()]).len()
    });
}

fn main() {
    bench_wordcount();
    bench_sgd();
    bench_crocopr();
    bench_q5();
    bench_iejoin();
}
