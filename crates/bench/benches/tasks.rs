//! Criterion micro-benchmarks over the paper's three task families
//! (WordCount, SGD, CrocoPR) plus the polystore Q5 and the IEJoin ablation.
//! These run the real execution path end-to-end at small scale; wall-clock
//! here tracks the *reproduction's* performance, while the `fig*` binaries
//! report virtual cluster time.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rheem_bench::{community_files, corpus_file, default_context, graph_context, wordcount_plan};
use rheem_core::platform::ids;

fn bench_wordcount(c: &mut Criterion) {
    let path = corpus_file("bench_wc", 256, 5);
    let (plan, _) = wordcount_plan(&path).unwrap();
    let mut group = c.benchmark_group("wordcount_256kb");
    group.sample_size(10).measurement_time(Duration::from_secs(8));
    for platform in [ids::JAVA_STREAMS, ids::SPARK, ids::FLINK] {
        group.bench_with_input(
            BenchmarkId::new("forced", platform.0),
            &platform,
            |b, &p| {
                let mut ctx = default_context();
                ctx.forced_platform = Some(p);
                b.iter(|| ctx.execute(&plan).unwrap().metrics.virtual_ms)
            },
        );
    }
    group.bench_function("rheem_free", |b| {
        let ctx = default_context();
        b.iter(|| ctx.execute(&plan).unwrap().metrics.virtual_ms)
    });
    group.finish();
}

fn bench_sgd(c: &mut Criterion) {
    let points = Arc::new(rheem_datagen::generate_points(20_000, 4, 0.05, 9).points);
    let cfg = ml4all::SgdConfig { iterations: 20, batch: 64, ..Default::default() };
    let (plan, _) = ml4all::build_sgd_plan(ml4all::PointSource::InMemory(points), &cfg).unwrap();
    let mut group = c.benchmark_group("sgd_20k_20iters");
    group.sample_size(10).measurement_time(Duration::from_secs(10));
    group.bench_function("rheem_free", |b| {
        let ctx = default_context();
        b.iter(|| ctx.execute(&plan).unwrap().metrics.virtual_ms)
    });
    group.finish();
}

fn bench_crocopr(c: &mut Criterion) {
    let (fa, fb) = community_files("bench_cpr", 20_000, 5);
    let (plan, _) = xdb::build_crocopr_plan(xdb::CrocoSource::Files(fa, fb), 5).unwrap();
    let mut group = c.benchmark_group("crocopr_20k_edges");
    group.sample_size(10).measurement_time(Duration::from_secs(10));
    group.bench_function("rheem_free", |b| {
        let ctx = graph_context();
        b.iter(|| ctx.execute(&plan).unwrap().metrics.virtual_ms)
    });
    group.finish();
}

fn bench_q5(c: &mut Criterion) {
    let data = rheem_datagen::tpch::generate(0.05, 3);
    let p = dataciv::place(&data, "bench_q5").unwrap();
    let (plan, _) = dataciv::build_q5_plan(&p, "ASIA", 1995).unwrap();
    let mut ctx = default_context();
    ctx.register_platform(&platform_postgres::PostgresPlatform::new(Arc::clone(&p.db)));
    let mut group = c.benchmark_group("tpch_q5_sf005");
    group.sample_size(10).measurement_time(Duration::from_secs(10));
    group.bench_function("polystore", |b| {
        b.iter(|| ctx.execute(&plan).unwrap().metrics.virtual_ms)
    });
    group.finish();
}

fn bench_iejoin(c: &mut Criterion) {
    use rheem_core::plan::IneqCond;
    use rheem_core::udf::CmpOp;
    let rows = rheem_datagen::generate_tax(4_000, 0.001, 3);
    let c1 = IneqCond { left_field: 2, op: CmpOp::Gt, right_field: 2 };
    let c2 = IneqCond { left_field: 3, op: CmpOp::Lt, right_field: 3 };
    let mut group = c.benchmark_group("inequality_join_4k");
    group.sample_size(10).measurement_time(Duration::from_secs(10));
    group.bench_function("iejoin_sort_based", |b| {
        b.iter(|| bigdansing::iejoin::iejoin(&rows, &rows, &c1, &c2).len())
    });
    group.bench_function("nested_loop", |b| {
        b.iter(|| {
            rheem_core::kernels::ineq_join_nested(&rows, &rows, &[c1.clone(), c2.clone()]).len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_wordcount, bench_sgd, bench_crocopr, bench_q5, bench_iejoin);
criterion_main!(benches);
