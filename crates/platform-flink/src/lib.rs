//! Flink platform simulacrum: a partitioned batch engine with **operator
//! chaining** — fused narrow pipelines execute in a single pass per
//! partition with no intermediate materialization — lower job-submission
//! overhead than Spark, and cheap (native) iterations (§6's `Flink`).
//!
//! The per-iteration advantage the paper observes (e.g. CrocoPR's
//! preparation phase, Fig. 9(f)) emerges from the profile's lower
//! stage/task overheads: the executor re-dispatches loop-body stages every
//! iteration, so cheaper stages compound across iterations.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use rheem_core::batch;
use rheem_core::channel::{kinds, ChannelData, ChannelDescriptor, ChannelKind};
use rheem_core::cost::{linear_cpu, CostModel, Load};
use rheem_core::error::{Result, RheemError};
use rheem_core::exec::Fallback;
use rheem_core::exec::{dataset_bytes, ExecCtx, ExecutionOperator, OpMetrics};
use rheem_core::fused::{self, Segment};
use rheem_core::kernels;
use rheem_core::mapping::{upstream_chain, Candidate, FnMapping};
use rheem_core::plan::{LogicalOp, OpKind, OperatorNode, RheemPlan, SampleSize};
use rheem_core::platform::PlatformProfile;
use rheem_core::platform::{ids, Platform, PlatformId};
use rheem_core::registry::Registry;
use rheem_core::udf::{BroadcastCtx, KeySpec, KeyUdf, ReduceUdf};
use rheem_core::value::{Dataset, Value};

/// Flink's pipelined DataSet channel (consumed once).
pub const DATASET: ChannelKind = ChannelKind("flink.dataset");

/// The Flink platform.
#[derive(Default)]
pub struct FlinkPlatform;

impl FlinkPlatform {
    /// Create the platform.
    pub fn new() -> Self {
        Self
    }
}

fn partition_count(n: usize, max_partitions: u32) -> usize {
    ((n / 8_192) + 1).min(max_partitions.max(1) as usize)
}

/// Worker-pool size for a stage: the profile's core count, capped by the
/// shared worker pool's size.
fn pool_size(profile: &rheem_core::platform::PlatformProfile) -> usize {
    (profile.cores as usize).clamp(1, rheem_core::pool::size())
}

/// Run `f` over each partition on the process-wide shared pool
/// ([`rheem_core::pool`]) — no per-call thread spawns. Indices keep the
/// merge order-stable no matter which worker produced what.
fn par_each<F>(parts: &[Dataset], workers: usize, f: F) -> Result<(Vec<Dataset>, Vec<f64>)>
where
    F: Fn(usize, &[Value]) -> Result<Vec<Value>> + Send + Sync,
{
    par_each_idx(parts.len(), workers, |i| f(i, &parts[i]).map(Arc::new))
}

/// The generic task runner behind [`par_each`], generic over the slot type
/// so columnar stages can map [`batch::Part`] partitions without a row
/// round-trip.
fn par_each_idx<U, F>(n: usize, workers: usize, f: F) -> Result<(Vec<U>, Vec<f64>)>
where
    U: Send,
    F: Fn(usize) -> Result<U> + Send + Sync,
{
    let workers = workers.clamp(1, n.max(1));
    let next = &AtomicUsize::new(0);
    let f = &f;
    let batches: Mutex<Vec<Result<Vec<(usize, U, f64)>>>> = Mutex::new(Vec::with_capacity(workers));
    rheem_core::pool::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut mine = Vec::new();
                let mut failed = None;
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let start = Instant::now();
                    match f(i) {
                        Ok(out) => {
                            let ms = start.elapsed().as_secs_f64() * 1000.0;
                            mine.push((i, out, ms));
                        }
                        Err(e) => {
                            failed = Some(e);
                            break;
                        }
                    }
                }
                let batch = match failed {
                    Some(e) => Err(e),
                    None => Ok(mine),
                };
                batches.lock().unwrap().push(batch);
            });
        }
    });
    let mut out_parts: Vec<Option<U>> = (0..n).map(|_| None).collect();
    let mut times = vec![0.0; n];
    for batch in batches.into_inner().unwrap() {
        for (i, d, ms) in batch? {
            out_parts[i] = Some(d);
            times[i] = ms;
        }
    }
    // Every slot is written exactly once: the queue hands out each index to
    // one worker, and an error short-circuits above.
    Ok((out_parts.into_iter().map(|o| o.expect("slot filled")).collect(), times))
}

fn exchange(parts: &[Dataset], key: &KeyUdf, n: usize) -> (Vec<Dataset>, f64) {
    let n = n.max(1);
    let total: usize = parts.iter().map(|p| p.len()).sum();
    let mut buckets: Vec<Vec<Value>> = (0..n).map(|_| Vec::with_capacity(total / n + 1)).collect();
    for p in parts {
        kernels::hash_partition_into(p, key, &mut buckets);
    }
    let bytes: f64 = buckets.iter().map(|b| dataset_bytes(b)).sum();
    (buckets.into_iter().map(Arc::new).collect(), bytes * 0.9)
}

fn flatten_parts(parts: &[Dataset]) -> Vec<Value> {
    let mut out = Vec::with_capacity(parts.iter().map(|p| p.len()).sum());
    for p in parts {
        out.extend(p.iter().cloned());
    }
    out
}

/// Hash-partition every batch into `n` per-destination contribution lists
/// (the columnar exchange; see the spark simulacrum for the routing
/// argument). `None` when any key column is untyped.
fn bucketize(bs: &[&batch::Batch], key: &KeySpec, n: usize) -> Option<Vec<Vec<batch::Batch>>> {
    let mut buckets: Vec<Vec<batch::Batch>> = (0..n.max(1)).map(|_| Vec::new()).collect();
    for b in bs {
        let pb = batch::partition_batch(b, key, n)?;
        for (j, x) in pb.into_iter().enumerate() {
            buckets[j].push(x);
        }
    }
    Some(buckets)
}

fn bucket_bytes(buckets: &[Vec<batch::Batch>]) -> f64 {
    buckets.iter().flatten().map(batch::batch_bytes).sum::<f64>() * 0.9
}

fn shipped(buckets: &[Vec<batch::Batch>]) -> (u64, u64) {
    let mut batches = 0u64;
    let mut rows = 0u64;
    for b in buckets.iter().flatten() {
        let l = b.selected_len() as u64;
        if l > 0 {
            batches += 1;
        }
        rows += l;
    }
    (batches, rows)
}

/// Reduce-side exchange shared by `ReduceBy` and the fused terminal
/// aggregation: columnar `(key, sum)` batches hash-partition on their key
/// column and merge through slot arrays when every partial stayed columnar;
/// otherwise the partials travel as carried-key pairs through the row
/// exchange. Both paths route identically (results and partition counts are
/// byte-identical). Returns merged partitions and exchange + reduce-side
/// virtual ms.
fn reduce_exchange(
    ctx: &mut ExecCtx<'_>,
    profile: &PlatformProfile,
    workers: usize,
    combined: &[batch::Part],
    agg: &ReduceUdf,
    batched: bool,
) -> Result<(Vec<batch::Part>, f64)> {
    let n = combined.len();
    if batched {
        if let Some(bs) = batch::all_batches(combined) {
            if let Some(buckets) = bucketize(&bs, &KeySpec::Field(0), n) {
                let bytes = bucket_bytes(&buckets);
                let (sb, srows) = shipped(&buckets);
                ctx.report_exchange(sb, srows);
                let fell = AtomicUsize::new(0);
                let fell_rows = AtomicUsize::new(0);
                let (out, t2) = par_each_idx(buckets.len(), workers, |j| {
                    let contribs = &buckets[j];
                    if let Some(m) = batch::merge_batches(contribs) {
                        return Ok(batch::Part::Cols(m));
                    }
                    fell.fetch_add(1, Ordering::Relaxed);
                    let mut rows = Vec::new();
                    for b in contribs {
                        rows.extend(batch::keyed_values(b));
                    }
                    fell_rows.fetch_add(rows.len(), Ordering::Relaxed);
                    Ok(batch::Part::Rows(Arc::new(kernels::merge_by(&rows, agg))))
                })?;
                if fell.into_inner() > 0 {
                    ctx.report_exchange_fallback(
                        fell_rows.into_inner() as u64,
                        Fallback::TypeMismatch,
                    );
                }
                return Ok((out, profile.net_ms(bytes) + profile.parallel_ms(&t2)));
            }
        }
    }
    let keyed: Vec<Dataset> = combined
        .iter()
        .map(|p| match p {
            batch::Part::Rows(d) => Arc::clone(d),
            batch::Part::Cols(b) => Arc::new(batch::keyed_values(b)),
        })
        .collect();
    let carry = KeyUdf::field(0);
    let (ex, bytes) = exchange(&keyed, &carry, n);
    if batched {
        let rows: u64 = ex.iter().map(|d| d.len() as u64).sum();
        ctx.report_exchange_fallback(rows, Fallback::RowInput);
    }
    let (out, t2) = par_each(&ex, workers, |_i, d| Ok(kernels::merge_by(d, agg)))?;
    Ok((batch::into_row_parts(out), profile.net_ms(bytes) + profile.parallel_ms(&t2)))
}

/// Per-quantum cycle costs on Flink: cheaper narrow operators than Spark
/// (chaining, managed memory), comparable wide operators, costlier global
/// sort (range partition + merge).
fn default_alpha(kind: OpKind) -> f64 {
    match kind {
        OpKind::Map => 170.0,
        OpKind::FlatMap => 260.0,
        OpKind::Filter | OpKind::SargFilter => 140.0,
        OpKind::Project => 100.0,
        OpKind::Sample => 80.0,
        OpKind::SortBy => 1_100.0,
        OpKind::Distinct => 460.0,
        OpKind::Count => 35.0,
        OpKind::GroupBy => 600.0,
        OpKind::Reduce => 240.0,
        OpKind::ReduceBy => 500.0,
        OpKind::Union => 50.0,
        OpKind::Join => 640.0,
        OpKind::Cartesian => 130.0,
        OpKind::InequalityJoin => 160.0,
        OpKind::PageRank => 850.0,
        OpKind::TextFileSource => 230.0,
        _ => 120.0,
    }
}

fn is_wide(kind: OpKind) -> bool {
    matches!(
        kind,
        OpKind::SortBy
            | OpKind::Distinct
            | OpKind::GroupBy
            | OpKind::ReduceBy
            | OpKind::Join
            | OpKind::Cartesian
            | OpKind::InequalityJoin
            | OpKind::PageRank
            | OpKind::Reduce
            | OpKind::Count
    )
}

/// A Flink execution operator: a pipelined chain of narrow operators ending
/// in at most one wide operator, executed per partition in a single pass.
pub struct FlinkOperator {
    ops: Vec<LogicalOp>,
    name: String,
}

impl FlinkOperator {
    /// Wrap a chain of logical operators.
    pub fn new(ops: Vec<LogicalOp>) -> Self {
        let name = match ops.as_slice() {
            [single] => format!("Flink{:?}", single.kind()),
            // A chain ending in a wide operator names its tail so monitor
            // logs still show what the stage aggregates into.
            [head @ .., last] if !fused::fusable(last) => {
                format!("FlinkChain{}\u{2218}{:?}", head.len(), last.kind())
            }
            _ => format!("FlinkChain{}", ops.len()),
        };
        Self { ops, name }
    }

    fn input_partitions(&self, input: &ChannelData, max_parts: u32) -> Result<Vec<Dataset>> {
        match input {
            ChannelData::Partitions(p) => Ok(p.as_ref().clone()),
            ChannelData::Collection(_) | ChannelData::Batches(_) => {
                let d = input.flatten()?;
                let n = partition_count(d.len(), max_parts);
                let chunk = d.len().div_ceil(n).max(1);
                let parts: Vec<Dataset> = if n <= 1 {
                    // Single partition: share the incoming Arc outright.
                    vec![Arc::clone(&d)]
                } else {
                    d.chunks(chunk).map(|c| Arc::new(c.to_vec())).collect()
                };
                Ok(if parts.is_empty() { vec![Arc::new(Vec::new())] } else { parts })
            }
            other => Err(RheemError::Execution(format!(
                "flink operator expects a DataSet, found {other:?}"
            ))),
        }
    }

    /// Stage input as engine parts: columnar partitions arrive 1:1 through
    /// the exchange (`BatchParts`, no row round-trip); everything else takes
    /// the row route of [`Self::input_partitions`].
    fn input_parts(&self, input: &ChannelData, max_parts: u32) -> Result<Vec<batch::Part>> {
        if let ChannelData::BatchParts(bs) = input {
            return Ok(if bs.is_empty() {
                vec![batch::Part::Rows(Arc::new(Vec::new()))]
            } else {
                bs.iter().map(|b| batch::Part::Cols(b.clone())).collect()
            });
        }
        Ok(batch::into_row_parts(self.input_partitions(input, max_parts)?))
    }
}

impl ExecutionOperator for FlinkOperator {
    fn name(&self) -> &str {
        &self.name
    }

    fn platform(&self) -> PlatformId {
        ids::FLINK
    }

    fn accepted_inputs(&self, _slot: usize) -> Vec<ChannelKind> {
        vec![DATASET]
    }

    fn output_kind(&self) -> ChannelKind {
        DATASET
    }

    fn load(&self, in_cards: &[f64], avg_bytes: f64, model: &CostModel) -> Load {
        let c_in: f64 = in_cards.iter().sum();
        let mut cycles = 0.0;
        let mut net_bytes = 0.0;
        let mut card = c_in;
        let mut after_fused = false;
        let mut after_vectorized = false;
        for (si, seg) in fused::segment_chain(&self.ops).into_iter().enumerate() {
            let delta = if si == 0 { 12_000.0 } else { 0.0 };
            match seg {
                // A chained run pays its submission δ once plus one
                // per-tuple term with the summed step cost.
                Segment::Fused { pipeline, .. } if pipeline.len() > 1 => {
                    // Static vectorization discount: recognized chains run on
                    // typed column slices. Keys off the plan only, never the
                    // RHEEM_BATCH runtime switch, so plan choice is
                    // mode-independent.
                    let alpha = if pipeline.vectorizable() { 170.0 * 0.55 } else { 170.0 };
                    cycles += linear_cpu(
                        model,
                        "flink",
                        "fused",
                        card,
                        pipeline.cost_hint() * 50.0,
                        alpha,
                        delta,
                    );
                    card *= pipeline.selectivity();
                    after_fused = true;
                    after_vectorized = pipeline.vectorizable();
                    continue;
                }
                _ => {}
            }
            let op = match seg {
                Segment::Fused { start, .. } => &self.ops[start],
                Segment::Single { op, .. } => op,
            };
            let kind = op.kind();
            let size = if matches!(kind, OpKind::Cartesian | OpKind::InequalityJoin) {
                in_cards.iter().product::<f64>().max(card)
            } else if kind == OpKind::SortBy {
                card * card.max(2.0).log2()
            } else if kind == OpKind::PageRank {
                card * 11.0
            } else {
                card
            };
            // A ReduceBy chained behind a fused run combines inside the
            // pipeline pass (fused terminal aggregation): no materialized
            // chained output, no input re-scan.
            let alpha = if after_fused && kind == OpKind::ReduceBy {
                // Dictionary-keyed vectorized combine skips per-row hashing.
                let vec_agg = after_vectorized
                    && matches!(
                        op,
                        LogicalOp::ReduceBy { key, agg } if batch::agg_vectorizable(key, agg)
                    );
                default_alpha(kind) * if vec_agg { 0.6 } else { 0.75 }
            } else {
                default_alpha(kind)
            };
            after_fused = false;
            after_vectorized = false;
            cycles += linear_cpu(
                model,
                "flink",
                kind.token(),
                size,
                op.udf_cost_hint() * 50.0,
                alpha,
                delta,
            );
            if is_wide(kind) {
                net_bytes += card * avg_bytes * 0.9;
            }
            card *= match kind {
                OpKind::Filter | OpKind::SargFilter => 0.5,
                OpKind::FlatMap => 4.0,
                OpKind::ReduceBy | OpKind::GroupBy | OpKind::Distinct => 0.5,
                OpKind::Count | OpKind::Reduce => 0.0,
                _ => 1.0,
            };
        }
        Load {
            cpu_cycles: cycles,
            net_bytes,
            tasks: partition_count(c_in as usize, 80) as u32,
            ..Load::default()
        }
    }

    fn execute(
        &self,
        ctx: &mut ExecCtx<'_>,
        inputs: &[ChannelData],
        bc: &BroadcastCtx,
    ) -> Result<ChannelData> {
        ctx.fault_gate(ids::FLINK, self.name())?;
        let profile = ctx.profile(ids::FLINK).clone();
        let workers = pool_size(&profile);
        let seed = ctx.seed;
        let iteration = ctx.iteration;
        let batched = ctx.batch();

        if !bc.is_empty() {
            let bytes: f64 = bc.total_quanta() as f64 * 24.0;
            ctx.add_virtual_ms(profile.net_ms(bytes * 10.0) + 0.5);
        }

        let mut parts: Vec<batch::Part> = if self.ops[0].kind().is_source() {
            Vec::new()
        } else {
            self.input_parts(&inputs[0], profile.partitions)?
        };
        let in_card: u64 = parts.iter().map(|p| p.len() as u64).sum::<u64>()
            + inputs.get(1).and_then(|c| c.cardinality()).unwrap_or(0) as u64;
        let n_parts = parts.len();
        ctx.trace_event("flink.vertex", || {
            vec![
                ("workers".to_string(), workers.into()),
                ("partitions".to_string(), n_parts.into()),
                ("in_card".to_string(), in_card.into()),
            ]
        });
        let mut virtual_ms = 0.0;
        let mut real_ms = 0.0;

        // Execute operator-chained (fused) runs in one pipelined pass per
        // partition; wide/special operators stand alone between them.
        let segs = fused::segment_chain(&self.ops);
        let mut si = 0;
        while si < segs.len() {
            let seg = &segs[si];
            si += 1;
            if let Segment::Fused { pipeline, .. } = seg {
                // Fused terminal aggregation: a chain ending the job-vertex
                // pipeline in a ReduceBy streams survivors straight into the
                // per-partition combine accumulator — the chained output is
                // never materialized before the combine.
                if let Some(Segment::Single { op: LogicalOp::ReduceBy { key, agg }, .. }) =
                    segs.get(si)
                {
                    si += 1;
                    let start = Instant::now();
                    // Per-partition combine over typed columns when both the
                    // chain and aggregation are recognized; partitions whose
                    // runtime types refuse to columnize fall back individually.
                    let vk = if batched {
                        batch::VectorKernel::compile(pipeline)
                            .filter(|_| batch::agg_vectorizable(key, agg))
                    } else {
                        None
                    };
                    let spec = agg.spec.clone();
                    let vrows = AtomicUsize::new(0);
                    let vparts = AtomicUsize::new(0);
                    let rparts = AtomicUsize::new(0);
                    let (combined, t1) = par_each_idx(parts.len(), workers, |i| {
                        let part = &parts[i];
                        if let (Some(k), Some(spec)) = (vk.as_ref(), spec.as_ref()) {
                            let run = match part {
                                batch::Part::Cols(b) => k.run_batch(b.clone()),
                                batch::Part::Rows(d) => k.run_values(d),
                            };
                            if let Some(cb) = run.and_then(|b| batch::combine_batch(&b, spec)) {
                                vrows.fetch_add(part.len(), Ordering::Relaxed);
                                vparts.fetch_add(1, Ordering::Relaxed);
                                return Ok(batch::Part::Cols(cb));
                            }
                            rparts.fetch_add(1, Ordering::Relaxed);
                        }
                        let rows = part.rows();
                        let mut state = kernels::ReduceByState::new(key, agg);
                        pipeline.run_each(&rows, bc, |v| state.feed_owned(v));
                        Ok(batch::Part::Rows(Arc::new(state.finish_keyed())))
                    })?;
                    let steps = pipeline.len() as u32 + 1;
                    let vb = vparts.into_inner();
                    if vb > 0 {
                        ctx.report_vectorized(
                            vrows.into_inner() as u64,
                            vb as u64,
                            steps * vb as u32,
                        );
                    }
                    let rb = if vk.is_some() {
                        rparts.into_inner()
                    } else if batched {
                        parts.len()
                    } else {
                        0
                    };
                    if rb > 0 {
                        ctx.report_row_fallback(steps * rb as u32);
                    }
                    let (out, vms) =
                        reduce_exchange(ctx, &profile, workers, &combined, agg, batched)?;
                    parts = out;
                    virtual_ms += profile.parallel_ms(&t1) + vms;
                    real_ms += start.elapsed().as_secs_f64() * 1000.0;
                    continue;
                }
                let vk = if batched { batch::VectorKernel::compile(pipeline) } else { None };
                let vrows = AtomicUsize::new(0);
                let vparts = AtomicUsize::new(0);
                let rparts = AtomicUsize::new(0);
                let (out, times) = par_each_idx(parts.len(), workers, |i| {
                    let part = &parts[i];
                    if let Some(k) = vk.as_ref() {
                        // Columnar inputs run the kernel over the shipped
                        // batch directly; row inputs columnize first.
                        let run = match part {
                            batch::Part::Cols(b) => k.run_batch(b.clone()),
                            batch::Part::Rows(d) => k.run_values(d),
                        };
                        if let Some(b) = run {
                            vrows.fetch_add(part.len(), Ordering::Relaxed);
                            vparts.fetch_add(1, Ordering::Relaxed);
                            return Ok(batch::Part::Cols(b));
                        }
                        rparts.fetch_add(1, Ordering::Relaxed);
                    }
                    Ok(batch::Part::Rows(Arc::new(pipeline.run(&part.rows(), bc))))
                })?;
                let steps = pipeline.len() as u32;
                let vb = vparts.into_inner();
                if vb > 0 {
                    ctx.report_vectorized(vrows.into_inner() as u64, vb as u64, steps * vb as u32);
                }
                let rb = if vk.is_some() {
                    rparts.into_inner()
                } else if batched {
                    parts.len()
                } else {
                    0
                };
                if rb > 0 {
                    ctx.report_row_fallback(steps * rb as u32);
                }
                parts = out;
                virtual_ms += profile.parallel_ms(&times);
                real_ms += times.iter().sum::<f64>();
                continue;
            }
            let op = match seg {
                Segment::Single { op, .. } => op,
                Segment::Fused { .. } => unreachable!(),
            };
            match op {
                LogicalOp::Sample { method, size, seed: s } => {
                    let total: usize = parts.iter().map(|p| p.len()).sum();
                    let want = size.resolve(total);
                    let base_seed = s.unwrap_or(seed) ^ iteration.wrapping_mul(0x9E37_79B9);
                    let rows = batch::rows_of(&parts);
                    let (out, times) = par_each(&rows, workers, |pi, data| {
                        let share =
                            if total == 0 { 0 } else { (want * data.len()).div_ceil(total.max(1)) };
                        Ok(kernels::sample(
                            data,
                            *method,
                            SampleSize::Count(share),
                            base_seed.wrapping_add(pi as u64),
                        ))
                    })?;
                    parts = batch::into_row_parts(out);
                    virtual_ms += profile.parallel_ms(&times);
                    real_ms += times.iter().sum::<f64>();
                }
                LogicalOp::Union => {
                    let other = self.input_parts(&inputs[1], profile.partitions)?;
                    parts.extend(other);
                }
                LogicalOp::ReduceBy { key, agg } => {
                    let start = Instant::now();
                    // Map-side combine into (key, acc) partials; columnar
                    // inputs combine through the slot-array kernel and keep
                    // their (key, sum) batch for the exchange.
                    let vec_ok = batched && batch::agg_vectorizable(key, agg);
                    let spec = agg.spec.clone();
                    let (combined, t1) = par_each_idx(parts.len(), workers, |i| {
                        let part = &parts[i];
                        if vec_ok {
                            if let (Some(b), Some(spec)) = (part.as_batch(), spec.as_ref()) {
                                if let Some(cb) = batch::combine_batch(b, spec) {
                                    return Ok(batch::Part::Cols(cb));
                                }
                            }
                        }
                        Ok(batch::Part::Rows(Arc::new(kernels::combine_by(&part.rows(), key, agg))))
                    })?;
                    let (out, vms) =
                        reduce_exchange(ctx, &profile, workers, &combined, agg, batched)?;
                    parts = out;
                    virtual_ms += profile.parallel_ms(&t1) + vms;
                    real_ms += start.elapsed().as_secs_f64() * 1000.0;
                }
                LogicalOp::GroupBy(key) => {
                    let start = Instant::now();
                    let n = parts.len();
                    let rows = batch::rows_of(&parts);
                    if batched && parts.iter().any(|p| p.as_batch().is_some()) {
                        let total: u64 = rows.iter().map(|d| d.len() as u64).sum();
                        ctx.report_exchange_fallback(total, Fallback::OpaqueSegment);
                    }
                    let (ex, bytes) = exchange(&rows, key, n);
                    let (out, t) = par_each(&ex, workers, |_i, d| Ok(kernels::group_by(d, key)))?;
                    parts = batch::into_row_parts(out);
                    virtual_ms += profile.net_ms(bytes) + profile.parallel_ms(&t);
                    real_ms += start.elapsed().as_secs_f64() * 1000.0;
                }
                LogicalOp::Distinct => {
                    let start = Instant::now();
                    let n = parts.len();
                    let rows = batch::rows_of(&parts);
                    if batched && parts.iter().any(|p| p.as_batch().is_some()) {
                        let total: u64 = rows.iter().map(|d| d.len() as u64).sum();
                        ctx.report_exchange_fallback(total, Fallback::OpaqueSegment);
                    }
                    let (ex, bytes) = exchange(&rows, &KeyUdf::identity(), n);
                    let (out, t) = par_each(&ex, workers, |_i, d| Ok(kernels::distinct(d)))?;
                    parts = batch::into_row_parts(out);
                    virtual_ms += profile.net_ms(bytes) + profile.parallel_ms(&t);
                    real_ms += start.elapsed().as_secs_f64() * 1000.0;
                }
                LogicalOp::SortBy(key) => {
                    let start = Instant::now();
                    let n = parts.len();
                    // Columnar path: per-partition batch sort (selection
                    // vector permutation), then a k-way merge that re-chunks
                    // exactly like the row path.
                    let mut columnar: Option<(Vec<batch::Part>, f64, f64)> = None;
                    if batched {
                        if let (Some(ks), Some(bs)) =
                            (key.spec.as_ref(), batch::all_batches(&parts))
                        {
                            let (sorted, t) = par_each_idx(bs.len(), workers, |i| {
                                Ok(batch::sort_batch(bs[i], ks))
                            })?;
                            if let Some(sorted) = sorted.into_iter().collect::<Option<Vec<_>>>() {
                                if let Some(merged) = batch::merge_sorted(&sorted, ks, n) {
                                    let bytes =
                                        sorted.iter().map(batch::batch_bytes).sum::<f64>() * 0.9;
                                    let rows: u64 =
                                        merged.iter().map(|b| b.selected_len() as u64).sum();
                                    ctx.report_exchange(merged.len() as u64, rows);
                                    columnar = Some((
                                        merged.into_iter().map(batch::Part::Cols).collect(),
                                        profile.parallel_ms(&t),
                                        bytes,
                                    ));
                                }
                            }
                        }
                    }
                    if let Some((out, tpar, bytes)) = columnar {
                        parts = out;
                        virtual_ms += tpar + profile.net_ms(bytes);
                    } else {
                        let rows = batch::rows_of(&parts);
                        if batched {
                            let total: u64 = rows.iter().map(|d| d.len() as u64).sum();
                            let why = if key.spec.is_none() {
                                Fallback::OpaqueKey
                            } else if parts.iter().any(|p| p.as_batch().is_none()) {
                                Fallback::RowInput
                            } else {
                                Fallback::TypeMismatch
                            };
                            ctx.report_exchange_fallback(total, why);
                        }
                        let (sorted, t) =
                            par_each(&rows, workers, |_i, d| Ok(kernels::sort_by(d, key)))?;
                        let mut all = flatten_parts(&sorted);
                        all = kernels::sort_by(&all, key);
                        let bytes = dataset_bytes(&all) * 0.9;
                        let chunk = all.len().div_ceil(n.max(1)).max(1);
                        let mut rparts: Vec<Dataset> =
                            all.chunks(chunk).map(|c| Arc::new(c.to_vec())).collect();
                        if rparts.is_empty() {
                            rparts.push(Arc::new(Vec::new()));
                        }
                        parts = batch::into_row_parts(rparts);
                        virtual_ms += profile.parallel_ms(&t) + profile.net_ms(bytes);
                    }
                    real_ms += start.elapsed().as_secs_f64() * 1000.0;
                }
                LogicalOp::Count => {
                    let total: usize = parts.iter().map(|p| p.len()).sum();
                    parts = vec![batch::Part::Rows(Arc::new(vec![Value::from(total)]))];
                    virtual_ms += profile.task_overhead_ms;
                }
                LogicalOp::Reduce(agg) => {
                    let start = Instant::now();
                    let rows = batch::rows_of(&parts);
                    let (partials, t) =
                        par_each(&rows, workers, |_i, d| Ok(kernels::reduce(d, agg)))?;
                    let all = flatten_parts(&partials);
                    parts = vec![batch::Part::Rows(Arc::new(kernels::reduce(&all, agg)))];
                    virtual_ms += profile.parallel_ms(&t) + profile.task_overhead_ms;
                    real_ms += start.elapsed().as_secs_f64() * 1000.0;
                }
                LogicalOp::Join { left_key, right_key } => {
                    let start = Instant::now();
                    let right = self.input_parts(&inputs[1], profile.partitions)?;
                    let n = parts.len().max(right.len());
                    // Columnar path: hash-partition both sides on their key
                    // columns (selection vectors only), then build/probe per
                    // destination bucket. Routing and output order match the
                    // row exchange + hash join exactly.
                    let mut columnar = None;
                    if batched {
                        if let (Some(lks), Some(rks)) =
                            (left_key.spec.as_ref(), right_key.spec.as_ref())
                        {
                            if let (Some(lbs), Some(rbs)) =
                                (batch::all_batches(&parts), batch::all_batches(&right))
                            {
                                if let (Some(lb), Some(rb)) =
                                    (bucketize(&lbs, lks, n), bucketize(&rbs, rks, n))
                                {
                                    columnar = Some((lb, rb, lks.clone(), rks.clone()));
                                }
                            }
                        }
                    }
                    if let Some((lb, rb, lks, rks)) = columnar {
                        let bytes = bucket_bytes(&lb) + bucket_bytes(&rb);
                        let (sl, rl) = shipped(&lb);
                        let (sr, rr) = shipped(&rb);
                        ctx.report_exchange(sl + sr, rl + rr);
                        let (out, t) = par_each_idx(lb.len(), workers, |j| {
                            match batch::join_buckets(&lb[j], &rb[j], &lks, &rks) {
                                Some(rows) => Ok(batch::Part::Rows(Arc::new(rows))),
                                None => {
                                    // Bucket refused to columnize: flatten its
                                    // contributions (same record order as the
                                    // row exchange) and hash-join row-wise.
                                    let mut l = Vec::new();
                                    for b in &lb[j] {
                                        l.extend(b.to_values());
                                    }
                                    let mut r = Vec::new();
                                    for b in &rb[j] {
                                        r.extend(b.to_values());
                                    }
                                    Ok(batch::Part::Rows(Arc::new(kernels::hash_join(
                                        &l, &r, left_key, right_key,
                                    ))))
                                }
                            }
                        })?;
                        parts = out;
                        virtual_ms += profile.net_ms(bytes) + profile.parallel_ms(&t);
                    } else {
                        let lrows = batch::rows_of(&parts);
                        let rrows = batch::rows_of(&right);
                        if batched {
                            let total: u64 =
                                lrows.iter().chain(rrows.iter()).map(|d| d.len() as u64).sum();
                            let why = if left_key.spec.is_none() || right_key.spec.is_none() {
                                Fallback::OpaqueKey
                            } else {
                                Fallback::RowInput
                            };
                            ctx.report_exchange_fallback(total, why);
                        }
                        let (le, b1) = exchange(&lrows, left_key, n);
                        let (re, b2) = exchange(&rrows, right_key, n);
                        let (out, t) = par_each(&le, workers, |i, d| {
                            Ok(kernels::hash_join(d, &re[i], left_key, right_key))
                        })?;
                        parts = batch::into_row_parts(out);
                        virtual_ms += profile.net_ms(b1 + b2) + profile.parallel_ms(&t);
                    }
                    real_ms += start.elapsed().as_secs_f64() * 1000.0;
                }
                LogicalOp::Cartesian | LogicalOp::InequalityJoin { .. } => {
                    let start = Instant::now();
                    let right = self.input_partitions(&inputs[1], profile.partitions)?;
                    let right_all = Arc::new(flatten_parts(&right));
                    let bytes = dataset_bytes(&right_all) * parts.len() as f64 * 0.9;
                    let rows = batch::rows_of(&parts);
                    let (out, t) = par_each(&rows, workers, |_i, d| {
                        Ok(match op {
                            LogicalOp::Cartesian => kernels::cartesian(d, &right_all),
                            LogicalOp::InequalityJoin { conds } => {
                                kernels::ineq_join_nested(d, &right_all, conds)
                            }
                            _ => unreachable!(),
                        })
                    })?;
                    parts = batch::into_row_parts(out);
                    virtual_ms += profile.net_ms(bytes) + profile.parallel_ms(&t);
                    real_ms += start.elapsed().as_secs_f64() * 1000.0;
                    let out_bytes: f64 = parts.iter().map(|p| dataset_bytes(&p.rows())).sum();
                    ctx.check_mem(ids::FLINK, out_bytes)?;
                }
                LogicalOp::PageRank { iterations, damping } => {
                    let start = Instant::now();
                    let edges = flatten_parts(&batch::rows_of(&parts));
                    let t0 = Instant::now();
                    let ranks = platform_spark_free_pagerank(&edges, *iterations, *damping);
                    let compute_ms = t0.elapsed().as_secs_f64() * 1000.0;
                    // Flink's delta iterations ship only changed state:
                    // cheaper per-iteration exchange than Spark's full
                    // contribution shuffle.
                    let per_iter_bytes = dataset_bytes(&edges) * 0.25;
                    let n = parts.len();
                    virtual_ms += compute_ms * profile.cpu_scale / profile.cores.max(1) as f64
                        + *iterations as f64
                            * (profile.net_ms(per_iter_bytes)
                                + profile.task_overhead_ms * n as f64
                                    / profile.cores.max(1) as f64);
                    let chunk = ranks.len().div_ceil(n.max(1)).max(1);
                    parts = ranks
                        .chunks(chunk)
                        .map(|c| batch::Part::Rows(Arc::new(c.to_vec())))
                        .collect();
                    if parts.is_empty() {
                        parts.push(batch::Part::Rows(Arc::new(Vec::new())));
                    }
                    real_ms += start.elapsed().as_secs_f64() * 1000.0;
                }
                LogicalOp::TextFileSource { path } => {
                    let start = Instant::now();
                    let (bytes, store) = rheem_storage::stat(path).map_err(RheemError::Io)?;
                    let lines = rheem_storage::read_partitioned(
                        path,
                        partition_count((bytes / 40).max(1) as usize, profile.partitions),
                    )
                    .map_err(RheemError::Io)?;
                    parts = lines
                        .into_iter()
                        .map(|ls| {
                            batch::Part::Rows(Arc::new(
                                ls.into_iter().map(Value::from).collect::<Vec<_>>(),
                            ))
                        })
                        .collect();
                    virtual_ms += rheem_storage::default_costs(store).read_ms(bytes)
                        + profile.task_overhead_ms * parts.len() as f64
                            / profile.cores.max(1) as f64;
                    real_ms += start.elapsed().as_secs_f64() * 1000.0;
                }
                other => {
                    return Err(RheemError::Unsupported(format!(
                        "Flink cannot execute {:?}",
                        other.kind()
                    )))
                }
            }
        }

        let out_card: u64 = parts.iter().map(|p| p.len() as u64).sum();
        ctx.record(OpMetrics {
            name: self.name.clone(),
            platform: ids::FLINK,
            in_card,
            out_card,
            virtual_ms,
            real_ms,
        });
        // Ship columns across the vertex boundary when every partition stayed
        // columnar: the consumer maps them 1:1 back onto engine parts, so
        // partition counts (and hence trace structure) match the row mode.
        if batched && !parts.is_empty() {
            if let Some(bs) = batch::all_batches(&parts) {
                let owned: Vec<batch::Batch> = bs.into_iter().cloned().collect();
                return Ok(ChannelData::BatchParts(Arc::new(owned)));
            }
        }
        Ok(ChannelData::Partitions(Arc::new(batch::rows_of(&parts))))
    }
}

fn platform_spark_free_pagerank(edges: &[Value], iterations: u32, damping: f64) -> Vec<Value> {
    use std::collections::{HashMap, HashSet};
    let mut out_deg: HashMap<i64, f64> = HashMap::new();
    let mut incoming: HashMap<i64, Vec<i64>> = HashMap::new();
    let mut vertices: Vec<i64> = Vec::new();
    let mut seen = HashSet::new();
    for e in edges {
        let (s, d) = (e.field(0).as_int().unwrap_or(0), e.field(1).as_int().unwrap_or(0));
        *out_deg.entry(s).or_default() += 1.0;
        incoming.entry(d).or_default().push(s);
        for v in [s, d] {
            if seen.insert(v) {
                vertices.push(v);
            }
        }
    }
    let n = vertices.len().max(1) as f64;
    let mut rank: HashMap<i64, f64> = vertices.iter().map(|&v| (v, 1.0 / n)).collect();
    for _ in 0..iterations {
        let mut next = HashMap::with_capacity(rank.len());
        for &v in &vertices {
            let sum: f64 = incoming
                .get(&v)
                .map(|srcs| srcs.iter().map(|s| rank[s] / out_deg[s]).sum())
                .unwrap_or(0.0);
            next.insert(v, (1.0 - damping) / n + damping * sum);
        }
        rank = next;
    }
    vertices.iter().map(|&v| Value::pair(Value::from(v), Value::from(rank[&v]))).collect()
}

/// `DataSet -> driver collection` (`DataSet.collect()`).
pub struct FlinkCollect;

impl ExecutionOperator for FlinkCollect {
    fn name(&self) -> &str {
        "FlinkCollect"
    }
    fn platform(&self) -> PlatformId {
        ids::FLINK
    }
    fn accepted_inputs(&self, _slot: usize) -> Vec<ChannelKind> {
        vec![DATASET]
    }
    fn output_kind(&self) -> ChannelKind {
        kinds::COLLECTION
    }
    fn load(&self, in_cards: &[f64], avg_bytes: f64, model: &CostModel) -> Load {
        let c = in_cards.first().copied().unwrap_or(0.0);
        Load {
            cpu_cycles: linear_cpu(model, "flink", "collect", c, 0.0, 60.0, 8_000.0),
            net_bytes: c * avg_bytes * 0.9,
            tasks: 1,
            ..Load::default()
        }
    }
    fn execute(
        &self,
        ctx: &mut ExecCtx<'_>,
        inputs: &[ChannelData],
        _bc: &BroadcastCtx,
    ) -> Result<ChannelData> {
        ctx.transfer_gate(ids::FLINK, self.name())?;
        let data = inputs[0].flatten()?;
        let profile = ctx.profile(ids::FLINK);
        let net = profile.net_ms(dataset_bytes(&data) * 0.9);
        ctx.record(OpMetrics {
            name: "FlinkCollect".into(),
            platform: ids::FLINK,
            in_card: data.len() as u64,
            out_card: data.len() as u64,
            virtual_ms: net + 0.4,
            real_ms: 0.0,
        });
        Ok(ChannelData::Collection(data))
    }
}

/// `driver collection -> DataSet` (`env.fromCollection`).
pub struct FlinkFromCollection;

impl ExecutionOperator for FlinkFromCollection {
    fn name(&self) -> &str {
        "FlinkFromCollection"
    }
    fn platform(&self) -> PlatformId {
        ids::FLINK
    }
    fn accepted_inputs(&self, _slot: usize) -> Vec<ChannelKind> {
        vec![kinds::COLLECTION]
    }
    fn output_kind(&self) -> ChannelKind {
        DATASET
    }
    fn load(&self, in_cards: &[f64], avg_bytes: f64, model: &CostModel) -> Load {
        let c = in_cards.first().copied().unwrap_or(0.0);
        Load {
            cpu_cycles: linear_cpu(model, "flink", "fromcollection", c, 0.0, 50.0, 8_000.0),
            net_bytes: c * avg_bytes * 0.9,
            tasks: 1,
            ..Load::default()
        }
    }
    fn execute(
        &self,
        ctx: &mut ExecCtx<'_>,
        inputs: &[ChannelData],
        _bc: &BroadcastCtx,
    ) -> Result<ChannelData> {
        ctx.transfer_gate(ids::FLINK, self.name())?;
        let profile = ctx.profile(ids::FLINK);
        // Already-partitioned handoffs pass through by Arc — no flatten +
        // re-chunk round trip through a fresh Vec.
        let (parts, card, bytes) = match &inputs[0] {
            ChannelData::Partitions(p) => {
                let card: usize = p.iter().map(|d| d.len()).sum();
                let bytes: f64 = p.iter().map(|d| dataset_bytes(d)).sum();
                (Arc::clone(p), card, bytes)
            }
            other => {
                let data = other.flatten()?;
                let n = partition_count(data.len(), profile.partitions);
                let chunk = data.len().div_ceil(n).max(1);
                let parts: Vec<Dataset> = if n <= 1 {
                    // Single partition: share the driver's Arc outright.
                    vec![Arc::clone(&data)]
                } else {
                    data.chunks(chunk).map(|c| Arc::new(c.to_vec())).collect()
                };
                let parts = if parts.is_empty() { vec![Arc::new(Vec::new())] } else { parts };
                let (card, bytes) = (data.len(), dataset_bytes(&data));
                (Arc::new(parts), card, bytes)
            }
        };
        let net = profile.net_ms(bytes * 0.9);
        ctx.record(OpMetrics {
            name: "FlinkFromCollection".into(),
            platform: ids::FLINK,
            in_card: card as u64,
            out_card: card as u64,
            virtual_ms: net + 0.4,
            real_ms: 0.0,
        });
        Ok(ChannelData::Partitions(parts))
    }
}

/// `file -> DataSet` (`env.readTextFile`).
pub struct FlinkReadTextFile;

impl ExecutionOperator for FlinkReadTextFile {
    fn name(&self) -> &str {
        "FlinkReadTextFile"
    }
    fn platform(&self) -> PlatformId {
        ids::FLINK
    }
    fn accepted_inputs(&self, _slot: usize) -> Vec<ChannelKind> {
        vec![kinds::HDFS_FILE, kinds::LOCAL_FILE]
    }
    fn output_kind(&self) -> ChannelKind {
        DATASET
    }
    fn load(&self, in_cards: &[f64], avg_bytes: f64, model: &CostModel) -> Load {
        let c = in_cards.first().copied().unwrap_or(0.0);
        Load {
            cpu_cycles: linear_cpu(model, "flink", "readtext", c, 0.0, 230.0, 12_000.0),
            disk_bytes: c * avg_bytes,
            tasks: 8,
            ..Load::default()
        }
    }
    fn execute(
        &self,
        ctx: &mut ExecCtx<'_>,
        inputs: &[ChannelData],
        _bc: &BroadcastCtx,
    ) -> Result<ChannelData> {
        ctx.transfer_gate(ids::FLINK, self.name())?;
        let path = inputs[0].as_file()?.clone();
        let profile = ctx.profile(ids::FLINK);
        let (bytes, store) = rheem_storage::stat(&path).map_err(RheemError::Io)?;
        let lines = rheem_storage::read_partitioned(
            &path,
            partition_count((bytes / 40).max(1) as usize, profile.partitions),
        )
        .map_err(RheemError::Io)?;
        let parts: Vec<Dataset> = lines
            .into_iter()
            .map(|ls| Arc::new(ls.into_iter().map(Value::from).collect::<Vec<_>>()))
            .collect();
        let out_card: u64 = parts.iter().map(|p| p.len() as u64).sum();
        ctx.record(OpMetrics {
            name: "FlinkReadTextFile".into(),
            platform: ids::FLINK,
            in_card: 0,
            out_card,
            virtual_ms: rheem_storage::default_costs(store).read_ms(bytes),
            real_ms: 0.0,
        });
        Ok(ChannelData::Partitions(Arc::new(parts)))
    }
}

/// Operator kinds Flink implements.
pub fn supported(kind: OpKind) -> bool {
    matches!(
        kind,
        OpKind::Map
            | OpKind::FlatMap
            | OpKind::Filter
            | OpKind::Project
            | OpKind::SargFilter
            | OpKind::Sample
            | OpKind::SortBy
            | OpKind::Distinct
            | OpKind::Count
            | OpKind::GroupBy
            | OpKind::Reduce
            | OpKind::ReduceBy
            | OpKind::Union
            | OpKind::Join
            | OpKind::Cartesian
            | OpKind::InequalityJoin
            | OpKind::PageRank
            | OpKind::TextFileSource
    )
}

impl Platform for FlinkPlatform {
    fn id(&self) -> PlatformId {
        ids::FLINK
    }

    fn register(&self, registry: &mut Registry) {
        registry.add_channel(ChannelDescriptor { kind: DATASET, reusable: false });
        registry.add_conversion(DATASET, kinds::COLLECTION, Arc::new(FlinkCollect));
        registry.add_conversion(kinds::COLLECTION, DATASET, Arc::new(FlinkFromCollection));
        registry.add_conversion(kinds::HDFS_FILE, DATASET, Arc::new(FlinkReadTextFile));
        registry.add_conversion(kinds::LOCAL_FILE, DATASET, Arc::new(FlinkReadTextFile));

        registry.add_mapping(Arc::new(FnMapping(|_plan: &RheemPlan, node: &OperatorNode| {
            if !supported(node.op.kind()) {
                return vec![];
            }
            vec![Candidate::single(
                node.id,
                Arc::new(FlinkOperator::new(vec![node.op.clone()])) as _,
            )]
        })));
        // Operator chaining: Flink fuses longer narrow chains and can end
        // them with one wide operator (the chain executes as one job
        // vertex pipeline).
        registry.add_mapping(Arc::new(FnMapping(|plan: &RheemPlan, node: &OperatorNode| {
            let narrow = |n: &OperatorNode| fused::fusable(&n.op);
            let wide_anchor =
                matches!(node.op.kind(), OpKind::ReduceBy | OpKind::GroupBy | OpKind::Distinct);
            let chain = if narrow(node) {
                upstream_chain(plan, node, narrow)
            } else if wide_anchor && node.inputs.len() == 1 && node.broadcasts.is_empty() {
                // A wide operator can terminate a chained pipeline: fuse
                // the narrow run feeding it (if it feeds only this op).
                let inp = plan.node(node.inputs[0]);
                let consumers = plan.consumers();
                if consumers[inp.id.index()].len() == 1
                    && narrow(inp)
                    && inp.loop_of == node.loop_of
                {
                    let mut c = upstream_chain(plan, inp, narrow);
                    c.push(node.id);
                    c
                } else {
                    return vec![];
                }
            } else {
                return vec![];
            };
            if chain.len() < 2 {
                return vec![];
            }
            let ops: Vec<LogicalOp> = chain.iter().map(|&id| plan.node(id).op.clone()).collect();
            vec![Candidate { covers: chain, exec: Arc::new(FlinkOperator::new(ops)) as _ }]
        })));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rheem_core::api::RheemContext;
    use rheem_core::plan::PlanBuilder;
    use rheem_core::udf::{FlatMapUdf, MapUdf, PredicateUdf, ReduceUdf};

    fn ctx() -> RheemContext {
        RheemContext::new().with_platform(&FlinkPlatform::new())
    }

    #[test]
    fn wordcount_on_flink_only() {
        let mut b = PlanBuilder::new();
        let sink = b
            .collection(vec![Value::from("m n m"), Value::from("n m o")])
            .flat_map(FlatMapUdf::new("split", |v| {
                v.as_str().unwrap().split_whitespace().map(Value::from).collect()
            }))
            .map(MapUdf::new("pair", |w| Value::pair(w.clone(), Value::from(1))))
            .reduce_by_key(
                KeyUdf::field(0),
                ReduceUdf::new("sum", |a, b| {
                    Value::pair(
                        a.field(0).clone(),
                        Value::from(a.field(1).as_int().unwrap() + b.field(1).as_int().unwrap()),
                    )
                }),
            )
            .collect();
        let plan = b.build().unwrap();
        let result = ctx().execute(&plan).unwrap();
        let data = result.sink(sink).unwrap();
        assert_eq!(data.len(), 3);
        let m = data.iter().find(|v| v.field(0).as_str() == Some("m")).unwrap();
        assert_eq!(m.field(1).as_int(), Some(3));
    }

    #[test]
    fn chained_pipeline_executes_in_one_pass() {
        // map -> filter -> map -> reduce_by fuses into one FlinkChain.
        let mut b = PlanBuilder::new();
        let sink = b
            .collection((0..200i64).map(Value::from).collect::<Vec<_>>())
            .map(MapUdf::new("inc", |v| Value::from(v.as_int().unwrap() + 1)))
            .filter(PredicateUdf::new("even", |v| v.as_int().unwrap() % 2 == 0))
            .map(MapUdf::new("mod", |v| {
                Value::pair(Value::from(v.as_int().unwrap() % 3), Value::from(1))
            }))
            .reduce_by_key(
                KeyUdf::field(0),
                ReduceUdf::new("cnt", |a, b| {
                    Value::pair(
                        a.field(0).clone(),
                        Value::from(a.field(1).as_int().unwrap() + b.field(1).as_int().unwrap()),
                    )
                }),
            )
            .collect();
        let plan = b.build().unwrap();
        let c = ctx();
        let (opt, _) = c.compile(&plan).unwrap();
        // the reduce_by anchors a chain covering the three narrow ops + itself
        let reduce_choice = opt.choice[4];
        assert!(opt.candidates[reduce_choice].covers.len() >= 2);
        let result = c.execute(&plan).unwrap();
        let total: i64 =
            result.sink(sink).unwrap().iter().map(|v| v.field(1).as_int().unwrap()).sum();
        assert_eq!(total, 100); // 100 even numbers in 1..=200
    }

    #[test]
    fn flink_cheaper_than_spark_on_stage_overheads() {
        let p = rheem_core::platform::Profiles::paper_testbed();
        assert!(p.get(ids::FLINK).stage_overhead_ms < p.get(ids::SPARK).stage_overhead_ms);
    }

    #[test]
    fn join_works_on_flink() {
        let mut b = PlanBuilder::new();
        let l = b.collection(
            (0..30i64).map(|i| Value::pair(Value::from(i % 3), Value::from(i))).collect::<Vec<_>>(),
        );
        let r = b.collection(
            (0..6i64).map(|i| Value::pair(Value::from(i % 3), Value::from(i))).collect::<Vec<_>>(),
        );
        let sink = l.join(&r, KeyUdf::field(0), KeyUdf::field(0)).collect();
        let plan = b.build().unwrap();
        let result = ctx().execute(&plan).unwrap();
        assert_eq!(result.sink(sink).unwrap().len(), 60);
    }
}
