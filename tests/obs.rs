//! Observability-plane integration suite (PR 8).
//!
//! Locks down the live observability claims end to end:
//!
//! 1. **Flight-recorder budgets** hold under multi-threaded writes: the
//!    ring never exceeds its entry or byte budget, drop accounting is
//!    exact (`drained + resident + dropped == recorded`), and the JSON
//!    dump parses with the repo's own `trace::json` parser.
//! 2. **Prometheus exposition invariants** hold on a real multi-tenant
//!    service run: one `# TYPE` per family, labels merged before `le`,
//!    cumulative buckets ending in `+Inf`, deterministic double-snapshot.
//! 3. **Watchdog end-to-end**: a synthetically starved tenant and an
//!    injected straggler stage driven through the live service are flagged
//!    — and only they are — via `rheem_watchdog_*` metrics, while
//!    `/metrics`, `/healthz` and `/flight` are scraped concurrently over
//!    real TCP.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use rheem::prelude::*;
use rheem_core::cache::ResultCache;
use rheem_core::obs::{scrape, validate_exposition};
use rheem_core::trace::json;

// ---- plan generators -----------------------------------------------------

fn sum_reduce() -> ReduceUdf {
    ReduceUdf::new("sum", |a, b| {
        Value::pair(
            a.field(0).clone(),
            Value::from(a.field(1).as_int().unwrap_or(0) + b.field(1).as_int().unwrap_or(0)),
        )
    })
}

/// A `rows`-sized map + keyed-reduce job. Stage virtual time is wall time
/// scaled by the platform profile, so row count is the latency lever:
/// tests pick sizes with orders-of-magnitude separation from the watchdog
/// thresholds. `salt` varies the data so jobs are distinct cache entries.
fn sized_plan(rows: i64, salt: u64) -> RheemPlan {
    let data: Vec<Value> = (0..rows)
        .map(|i| Value::pair(Value::from((i + salt as i64) % 7), Value::from(i)))
        .collect();
    let mut b = PlanBuilder::new();
    b.collection(data)
        .map(MapUdf::new("m1", |v| v.clone()))
        .reduce_by_key(KeyUdf::field(0), sum_reduce())
        .collect();
    b.build().unwrap()
}

/// A tiny, balanced job: every stage stays ~2 orders of magnitude under
/// the e2e test's `straggler_min_ms`.
fn regular_plan(salt: u64) -> RheemPlan {
    sized_plan(200, salt)
}

/// A job whose first compute stage processes 500x the rows of a regular
/// job: one stage far above `straggler_min_ms` against sub-millisecond
/// siblings, i.e. a deterministic straggler under `factor: 4`.
fn straggler_plan() -> RheemPlan {
    let data: Vec<Value> =
        (0..100_000).map(|i| Value::pair(Value::from(i % 7), Value::from(i))).collect();
    let mut b = PlanBuilder::new();
    b.collection(data)
        .map(MapUdf::new("hot", |v| v.clone()))
        .reduce_by_key(KeyUdf::field(0), sum_reduce())
        .map(MapUdf::new("cool", |v| v.clone()))
        .reduce_by_key(KeyUdf::field(0), sum_reduce())
        .collect();
    b.build().unwrap()
}

// ---- 1. flight-recorder properties ---------------------------------------

#[test]
fn recorder_budgets_hold_under_concurrent_writes() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 2_000;
    const MAX_ENTRIES: usize = 256;
    const MAX_BYTES: usize = 16 * 1024;

    let rec = Arc::new(FlightRecorder::with_capacity(MAX_ENTRIES, MAX_BYTES));
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let rec = Arc::clone(&rec);
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    rec.record(
                        EventKind::StageCommitted,
                        Some("tenant"),
                        Some(t as u64),
                        Some(i as u64),
                        i as f64,
                        "concurrent writer",
                    );
                    // Budgets must hold at every instant, not just at rest.
                    assert!(rec.len() <= MAX_ENTRIES, "entry budget exceeded");
                    assert!(rec.bytes() <= MAX_BYTES, "byte budget exceeded");
                }
            });
        }
    });

    let recorded = rec.recorded();
    assert_eq!(recorded, (THREADS * PER_THREAD) as u64);
    let drained = rec.drain();
    assert_eq!(
        drained.len() as u64 + rec.dropped(),
        recorded,
        "every event is resident, drained, or counted dropped"
    );
    // Sequence numbers are unique and dense in [0, recorded).
    let mut seqs: Vec<u64> = drained.iter().map(|e| e.seq).collect();
    seqs.sort_unstable();
    seqs.dedup();
    assert_eq!(seqs.len(), drained.len(), "sequence numbers are unique");
    assert!(seqs.iter().all(|&s| s < recorded));
}

#[test]
fn recorder_drop_accounting_is_exact_single_thread() {
    let rec = FlightRecorder::with_capacity(4, 1 << 20);
    for i in 0..10 {
        rec.record(EventKind::JobQueued, None, Some(i), None, 0.0, "");
    }
    assert_eq!(rec.recorded(), 10);
    assert_eq!(rec.dropped(), 6);
    let drained = rec.drain();
    let seqs: Vec<u64> = drained.iter().map(|e| e.seq).collect();
    assert_eq!(seqs, vec![6, 7, 8, 9], "oldest evicted first, newest resident");
    // Draining delivers events; it never counts them as dropped.
    assert_eq!(rec.dropped(), 6);
    assert!(rec.is_empty());
}

#[test]
fn recorder_dump_parses_and_is_deterministic() {
    let rec = FlightRecorder::with_capacity(64, 1 << 20);
    rec.record(EventKind::JobAdmitted, Some("a"), Some(1), None, 0.25, "");
    rec.record(EventKind::StageCommitted, Some("a"), Some(1), Some(3), 7.5, "java.streams");
    rec.record(EventKind::JobCompleted, Some("a\"quote"), Some(1), None, 7.5, "done \"ok\"");

    let dump = rec.dump_json(None);
    assert_eq!(dump, rec.dump_json(None), "dump is deterministic");
    let doc = json::parse(&dump).expect("dump parses with the repo's own parser");
    let obj = doc.as_obj("dump").unwrap();
    assert_eq!(json::get(obj, "recorded").unwrap().as_f64("recorded").unwrap(), 3.0);
    assert_eq!(json::get(obj, "dropped").unwrap().as_f64("dropped").unwrap(), 0.0);
    let events = json::get(obj, "events").unwrap().as_arr("events").unwrap();
    assert_eq!(events.len(), 3);
    let ev = events[1].as_obj("event").unwrap();
    assert_eq!(json::get(ev, "kind").unwrap().as_str("kind").unwrap(), "stage.committed");
    assert_eq!(json::get(ev, "stage").unwrap().as_f64("stage").unwrap(), 3.0);
    assert_eq!(json::get(ev, "detail").unwrap().as_str("detail").unwrap(), "java.streams");
    // Quotes in tenant/detail strings survive the round trip.
    let last = events[2].as_obj("event").unwrap();
    assert_eq!(json::get(last, "tenant").unwrap().as_str("tenant").unwrap(), "a\"quote");
    // The `n` limit keeps the most recent events.
    let tail = json::parse(&rec.dump_json(Some(1))).unwrap();
    let tail_events =
        json::get(tail.as_obj("dump").unwrap(), "events").unwrap().as_arr("events").unwrap();
    assert_eq!(tail_events.len(), 1);
    let t0 = tail_events[0].as_obj("event").unwrap();
    assert_eq!(json::get(t0, "seq").unwrap().as_f64("seq").unwrap(), 2.0);
}

// ---- 2. golden exposition over a real multi-tenant run -------------------

#[test]
fn prometheus_exposition_invariants_hold_after_multi_tenant_run() {
    let mut ctx = rheem::default_context();
    ctx.set_cache(Some(Arc::new(ResultCache::new(64 << 20))));
    let tenants = vec![
        TenantSpec::new("alpha").with_max_in_flight(16).with_cache_quota(8 << 20),
        TenantSpec::new("beta").with_max_in_flight(16),
    ];
    let service = JobService::new(ctx, ServiceConfig::default(), tenants).unwrap();
    let mut handles = Vec::new();
    for j in 0..6 {
        handles.push(service.submit("alpha", regular_plan(j)).unwrap());
        handles.push(service.submit("beta", regular_plan(j + 100)).unwrap());
    }
    for h in handles {
        h.wait().unwrap();
    }

    let prom = service.context().metrics().snapshot_prometheus();
    validate_exposition(&prom).expect("exposition invariants hold");
    // Deterministic: a second snapshot of the same registry is identical.
    assert_eq!(prom, service.context().metrics().snapshot_prometheus());
    // The labeled SLO histogram family appears exactly once as a TYPE and
    // merges its labels before `le` (the PR 8 exposition fix).
    let type_lines: Vec<&str> =
        prom.lines().filter(|l| l.starts_with("# TYPE rheem_tenant_job_phase_ms ")).collect();
    assert_eq!(type_lines, vec!["# TYPE rheem_tenant_job_phase_ms histogram"]);
    assert!(
        prom.contains("rheem_tenant_job_phase_ms_bucket{phase=\"exec\",tenant=\"alpha\",le=\""),
        "labels merge before le:\n{prom}"
    );
    assert!(!prom.contains("}_bucket"), "no suffix-after-labels keys:\n{prom}");
    // Both tenants observed all four phases.
    for tenant in ["alpha", "beta"] {
        for phase in rheem_core::obs::slo::PHASES {
            let key = format!("rheem_tenant_job_phase_ms{{phase=\"{phase}\",tenant=\"{tenant}\"}}");
            let h = service.context().metrics().histogram(&key).unwrap();
            assert_eq!(h.count, 6, "{key}");
        }
    }
}

// ---- 3. watchdog end-to-end under live TCP scrapes -----------------------

#[test]
fn watchdog_flags_starved_tenant_and_straggler_over_live_scrapes() {
    let mut ctx = rheem::default_context();
    ctx.set_cache(None); // keep stage timings independent of the cache leg
    let config = ServiceConfig {
        runners: 1, // serialize so the heavy backlog actually queues
        watchdog: WatchdogConfig {
            cadence_ms: 0.0, // sweep on every completion
            starvation_lag_ms: 200.0,
            straggler_factor: 4.0,
            straggler_min_ms: 60.0,
            ..Default::default()
        },
        ..Default::default()
    };
    let tenants = vec![
        TenantSpec::new("heavy").with_max_in_flight(32),
        TenantSpec::new("starved").with_weight(0.001).with_max_in_flight(4),
    ];
    let service = JobService::new(ctx, config, tenants).unwrap();
    let addr = service.serve("127.0.0.1:0").unwrap().to_string();
    assert!(service.obs_addr().is_some());
    assert!(service.serve("127.0.0.1:0").is_err(), "double serve is a typed error");

    // Scrape all routes concurrently with the run, over real TCP.
    // Throttled: an unthrottled loop exhausts ephemeral ports/fds and
    // starves the service itself. Transient errors are tolerated (counted),
    // sustained success is asserted after the run.
    let stop = Arc::new(AtomicBool::new(false));
    let scrapers: Vec<_> = ["/metrics", "/healthz", "/flight?n=64"]
        .into_iter()
        .map(|path| {
            let addr = addr.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut ok = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    if let Ok(body) = scrape(&addr, path) {
                        // `/metrics` is legitimately empty before the first
                        // sample; the JSON routes always have a body.
                        if path == "/healthz" {
                            assert!(body.contains("\"status\":\"ok\""));
                        }
                        ok += 1;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
                ok
            })
        })
        .collect();

    // Phase 1: one solo mid-sized job charges the featherweight tenant a
    // huge normalized vtime (cost / 0.001) that activation re-flooring
    // keeps in place across its later idle -> backlogged transition.
    service.submit("starved", sized_plan(4_000, 0)).unwrap().wait().unwrap();

    // Phase 2: a heavy backlog (first job carries the straggler stage)
    // with one starved job queued behind it. Fair share keeps serving
    // heavy — every completion sweep sees starved backlogged and lagging.
    let mut handles = vec![service.submit("heavy", straggler_plan()).unwrap()];
    for j in 1..8 {
        handles.push(service.submit("heavy", regular_plan(j)).unwrap());
    }
    let starved_tail = service.submit("starved", regular_plan(99)).unwrap();
    for h in handles {
        h.wait().unwrap();
    }
    starved_tail.wait().unwrap();

    stop.store(true, Ordering::Relaxed);
    for s in scrapers {
        assert!(s.join().unwrap() > 0, "every route was scraped during the run");
    }

    // Write the artifacts CI uploads on failure *before* asserting.
    let flight = scrape(&addr, "/flight?n=4096").unwrap();
    let prom = scrape(&addr, "/metrics").unwrap();
    std::fs::create_dir_all("target/obs").unwrap();
    std::fs::write("target/obs/flight_dump.json", &flight).unwrap();
    std::fs::write("target/obs/metrics_snapshot.txt", &prom).unwrap();

    let m = service.context().metrics();
    assert!(
        m.counter("rheem_watchdog_starvation_total{tenant=\"starved\"}") >= 1,
        "the starved tenant is flagged:\n{prom}"
    );
    assert_eq!(
        m.counter("rheem_watchdog_starvation_total{tenant=\"heavy\"}"),
        0,
        "the well-served tenant is not"
    );
    assert_eq!(
        m.counter("rheem_watchdog_straggler_total{tenant=\"heavy\"}"),
        1,
        "exactly the injected straggler stage is flagged:\n{prom}"
    );
    assert_eq!(m.counter("rheem_watchdog_straggler_total{tenant=\"starved\"}"), 0);
    assert!(m.counter("rheem_watchdog_sweeps_total") >= 1);

    // The scraped exposition satisfies the Prometheus invariants and the
    // flight dump parses and contains the lifecycle events.
    validate_exposition(&prom).expect("scraped exposition is well-formed");
    assert!(prom.contains("rheem_watchdog_straggler_total{tenant=\"heavy\"} 1"));
    let doc = json::parse(&flight).unwrap();
    let obj = doc.as_obj("flight").unwrap();
    let events = json::get(obj, "events").unwrap().as_arr("events").unwrap();
    assert!(!events.is_empty());
    let kinds: Vec<&str> = events
        .iter()
        .map(|e| json::get(e.as_obj("event").unwrap(), "kind").unwrap().as_str("kind").unwrap())
        .collect();
    for expected in ["job.admitted", "job.queued", "job.started", "job.completed", "watchdog"] {
        assert!(kinds.contains(&expected), "flight dump has {expected}: {kinds:?}");
    }

    // /jobs and /tenants serve coherent JSON.
    let jobs = scrape(&addr, "/jobs").unwrap();
    let jobs_doc = json::parse(&jobs).unwrap();
    let jobs_obj = jobs_doc.as_obj("jobs").unwrap();
    assert_eq!(json::get(jobs_obj, "in_flight").unwrap().as_f64("in_flight").unwrap(), 0.0);
    assert_eq!(json::get(jobs_obj, "completed").unwrap().as_f64("completed").unwrap(), 10.0);
    let tenants_body = scrape(&addr, "/tenants").unwrap();
    let tenants_doc = json::parse(&tenants_body).unwrap();
    let arr = json::get(tenants_doc.as_obj("tenants").unwrap(), "tenants")
        .unwrap()
        .as_arr("tenants")
        .unwrap();
    assert_eq!(arr.len(), 2);
    let starved = arr
        .iter()
        .map(|t| t.as_obj("tenant").unwrap())
        .find(|t| {
            json::get(t, "name").map(|n| n.as_str("name").unwrap() == "starved").unwrap_or(false)
        })
        .expect("starved tenant is listed");
    // SLO quantiles for the starved tenant's exec phase are served.
    let slo = json::get(starved, "slo").unwrap().as_obj("slo").unwrap();
    let exec = json::get(slo, "exec").unwrap().as_obj("exec").unwrap();
    assert!(json::get(exec, "p50_ms").unwrap().as_f64("p50").unwrap() > 0.0);

    // Unknown routes 404 at the transport level (scrape surfaces an error).
    assert!(scrape(&addr, "/nope").is_err());
}
