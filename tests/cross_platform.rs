//! Cross-crate integration tests for the headline behaviours of §2/§6:
//! platform independence (the optimizer picks the right engine per input
//! size), opportunistic mixing, mandatory movement out of the store, and
//! agreement of results across platforms.

use rheem::prelude::*;
use rheem_core::plan::{PlanBuilder, RheemPlan};
use rheem_core::value::Value;

fn wordcount_plan(lines: Vec<Value>) -> (RheemPlan, rheem_core::plan::OperatorId) {
    let mut b = PlanBuilder::new();
    let sink = b
        .collection(lines)
        .flat_map(FlatMapUdf::new("split", |v| {
            v.as_str().unwrap_or("").split_whitespace().map(Value::from).collect()
        }))
        .map(MapUdf::new("pair", |w| Value::pair(w.clone(), Value::from(1))))
        .reduce_by_key(
            KeyUdf::field(0),
            ReduceUdf::new("sum", |a, b| {
                Value::pair(
                    a.field(0).clone(),
                    Value::from(a.field(1).as_int().unwrap() + b.field(1).as_int().unwrap()),
                )
            }),
        )
        .collect();
    (b.build().unwrap(), sink)
}

fn corpus(lines: usize) -> Vec<Value> {
    rheem_datagen::generate_text(lines, 10, 5_000, 7).into_iter().map(Value::from).collect()
}

#[test]
fn small_input_prefers_javastreams() {
    let ctx = rheem::default_context();
    let (plan, _) = wordcount_plan(corpus(50));
    let opt = ctx.optimize(&plan).unwrap();
    assert_eq!(
        opt.platforms,
        vec![ids::JAVA_STREAMS],
        "small inputs must avoid distributed-engine overhead"
    );
}

#[test]
fn large_input_prefers_a_distributed_engine() {
    // Datasets live on HDFS as in §6.1; a distributed engine reads splits
    // in parallel while the JavaStreams driver reads one stream.
    let path = std::path::PathBuf::from("hdfs://tests/xplat/corpus_large.txt");
    rheem_datagen::text::write_corpus(&path, 60_000, 7).unwrap(); // ≈60 MB
    let ctx = rheem::default_context();
    let mut b = PlanBuilder::new();
    b.read_text_file(&path)
        .flat_map(FlatMapUdf::new("split", |v| {
            v.as_str().unwrap_or("").split_whitespace().map(Value::from).collect()
        }))
        .map(MapUdf::new("pair", |w| Value::pair(w.clone(), Value::from(1))))
        .reduce_by_key(KeyUdf::field(0), ReduceUdf::sum())
        .collect();
    let plan = b.build().unwrap();
    let opt = ctx.optimize(&plan).unwrap();
    assert!(
        opt.platforms.contains(&ids::SPARK) || opt.platforms.contains(&ids::FLINK),
        "large inputs should go distributed, got {:?}",
        opt.platforms
    );
}

#[test]
fn all_platforms_agree_on_wordcount_result() {
    let mut results = Vec::new();
    for forced in [ids::JAVA_STREAMS, ids::SPARK, ids::FLINK] {
        let mut ctx = rheem::default_context();
        ctx.forced_platform = Some(forced);
        let (plan, sink) = wordcount_plan(corpus(300));
        let result = ctx.execute(&plan).unwrap();
        let mut data: Vec<(String, i64)> = result
            .sink(sink)
            .unwrap()
            .iter()
            .map(|v| (v.field(0).as_str().unwrap().to_string(), v.field(1).as_int().unwrap()))
            .collect();
        data.sort();
        results.push((forced, data));
    }
    for w in results.windows(2) {
        assert_eq!(w[0].1, w[1].1, "{} and {} disagree", w[0].0, w[1].0);
    }
}

#[test]
fn forced_platform_is_respected() {
    for forced in [ids::JAVA_STREAMS, ids::SPARK, ids::FLINK] {
        let mut ctx = rheem::default_context();
        ctx.forced_platform = Some(forced);
        let (plan, _) = wordcount_plan(corpus(500));
        let result = ctx.execute(&plan).unwrap();
        assert_eq!(result.metrics.platforms, vec![forced]);
    }
}

#[test]
fn sgd_shape_mixes_platforms_on_large_data() {
    // Fig. 3's plan shape: big point set, tiny weights, loop over
    // sample→compute→reduce→update with the weights broadcast into the body.
    let points = rheem_datagen::generate_points(60_000, 4, 0.1, 3).points;
    let mut b = PlanBuilder::new();
    let data = b.collection(points);
    let weights = b.collection(vec![Value::tuple(vec![
        Value::from(0.0),
        Value::from(0.0),
        Value::from(0.0),
        Value::from(0.0),
    ])]);
    let final_w = weights.repeat(3, |w| {
        let grad = data
            .sample(rheem_core::plan::SampleMethod::Random, rheem_core::plan::SampleSize::Count(16))
            .map(MapUdf::with_ctx("gradient", |p, ctx| {
                let w = ctx.get_or_empty("weights");
                let wf = w.first().cloned().unwrap_or(Value::Null);
                let f = p.fields().unwrap();
                let label = f[0].as_f64().unwrap();
                let margin: f64 = f[1..]
                    .iter()
                    .enumerate()
                    .map(|(i, x)| x.as_f64().unwrap() * wf.field(i).as_f64().unwrap_or(0.0))
                    .sum();
                let scale = if label * margin < 1.0 { -label } else { 0.0 };
                Value::Tuple(
                    f[1..]
                        .iter()
                        .map(|x| Value::from(scale * x.as_f64().unwrap()))
                        .collect::<Vec<_>>()
                        .into(),
                )
            }))
            .broadcast("weights", w)
            .reduce(ReduceUdf::new("sumgrad", |a, b| {
                Value::Tuple(
                    (0..4)
                        .map(|i| {
                            Value::from(
                                a.field(i).as_f64().unwrap_or(0.0)
                                    + b.field(i).as_f64().unwrap_or(0.0),
                            )
                        })
                        .collect::<Vec<_>>()
                        .into(),
                )
            }));
        w.map(MapUdf::with_ctx("update", |wv, ctx| {
            let g = ctx.get_or_empty("grad");
            let gv = g.first().cloned().unwrap_or(Value::Null);
            Value::Tuple(
                (0..4)
                    .map(|i| {
                        Value::from(
                            wv.field(i).as_f64().unwrap_or(0.0)
                                - 0.01 * gv.field(i).as_f64().unwrap_or(0.0),
                        )
                    })
                    .collect::<Vec<_>>()
                    .into(),
            )
        }))
        .broadcast("grad", &grad)
    });
    let sink = final_w.collect();
    let plan = b.build().unwrap();

    let ctx = rheem::default_context();
    let result = ctx.execute(&plan).unwrap();
    let w = result.sink(sink).unwrap();
    assert_eq!(w.len(), 1);
    // the weights moved
    assert!(w[0].fields().unwrap().iter().any(|f| f.as_f64().unwrap() != 0.0));
}

#[test]
fn mandatory_movement_out_of_postgres() {
    // Data lives in Postgres; the task (PageRank) is not executable there:
    // the optimizer must move it to a graph-capable platform (§2.3).
    let db = std::sync::Arc::new(platform_postgres::PgDatabase::new());
    let edges = rheem_datagen::generate_graph(500, 4, 3);
    db.load_table(
        "links",
        vec!["src".to_string(), "dst".to_string()],
        rheem_datagen::graph::edges_to_values(&edges),
    );
    let ctx = rheem::full_context(std::sync::Arc::clone(&db));

    let mut b = PlanBuilder::new();
    let sink = b.read_table("links").page_rank(5, 0.85).collect();
    let plan = b.build().unwrap();
    let result = ctx.execute(&plan).unwrap();
    assert!(!result.sink(sink).unwrap().is_empty());
    assert!(
        result.metrics.platforms.contains(&ids::POSTGRES),
        "scan should stay in the store: {:?}",
        result.metrics.platforms
    );
    assert!(
        result.metrics.platforms.iter().any(|p| *p != ids::POSTGRES),
        "pagerank must leave the store: {:?}",
        result.metrics.platforms
    );
}

#[test]
fn explain_describes_stages() {
    let ctx = rheem::default_context();
    let (plan, _) = wordcount_plan(corpus(100));
    let out = ctx.explain(&plan).unwrap();
    assert!(out.contains("stage 0"), "{out}");
    assert!(out.contains("estimated cost"), "{out}");
}
