//! End-to-end cost-model learning workflow (§4.5): generate execution logs
//! over the three plan topologies, fit the GA learner, persist/reload the
//! logs, and verify the learned model actually changes optimizer behaviour
//! inputs (parameters are picked up by the cost estimates).

use rheem_core::learner::{read_samples, write_samples, CostLearner, LogGenerator};

#[test]
fn log_generator_covers_three_topologies() {
    let ctx = rheem::default_context();
    let generator = LogGenerator { sizes: vec![500, 5_000], udf_costs: vec![1.0], iterations: 3 };
    let samples = generator.generate(&ctx).unwrap();
    // pipeline + merge + iterative plans, several stages each, 2 sizes
    assert!(samples.len() >= 10, "{}", samples.len());
    let ops: std::collections::HashSet<String> =
        samples.iter().flat_map(|s| s.ops.iter().map(|o| o.op.clone())).collect();
    // evidence of all three topologies in the logs
    assert!(ops.iter().any(|o| o.contains("ReduceBy")), "{ops:?}");
    assert!(ops.iter().any(|o| o.contains("Join")), "{ops:?}");
    assert!(ops.iter().any(|o| o.contains("Reduce") && !o.contains("ReduceBy")), "{ops:?}");
}

#[test]
fn learned_model_beats_defaults_and_roundtrips() {
    let ctx = rheem::default_context();
    let generator =
        LogGenerator { sizes: vec![1_000, 20_000], udf_costs: vec![1.0, 8.0], iterations: 3 };
    let samples = generator.generate(&ctx).unwrap();

    // Persist + reload the execution log (the offline workflow).
    let dir = std::env::temp_dir().join("rheem_learner_workflow");
    std::fs::create_dir_all(&dir).unwrap();
    let log = dir.join("exec_log.tsv");
    write_samples(&log, &samples).unwrap();
    let reloaded = read_samples(&log).unwrap();
    assert_eq!(reloaded.len(), samples.len());

    let learner = CostLearner { generations: 80, ..Default::default() };
    let model = learner.fit(&reloaded, ctx.profiles());
    let fitted = learner.evaluate(&model, &reloaded, ctx.profiles());
    let default = learner.evaluate(&rheem_core::cost::CostModel::new(), &reloaded, ctx.profiles());
    assert!(fitted <= default, "fitted {fitted} vs default {default}");

    // The learned parameters flow into the optimizer's estimates.
    let mut tuned = rheem::default_context();
    tuned.cost_model_mut().merge(&model);
    assert!(!tuned.cost_model().params().is_empty());
}
