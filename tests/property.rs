//! Property-based tests over core invariants: every platform computes the
//! same results as the single-threaded kernels, fused chains are
//! indistinguishable from the unfused operator-at-a-time path, the
//! optimizer's pruning is lossless, IEJoin equals the nested loop, and the
//! movement planner's trees are valid and minimal-ish.
//!
//! Cases are generated with the repo's own deterministic `SplitMix64` so the
//! suite needs no external property-testing dependency and every failure is
//! reproducible from its case number.

use std::sync::Arc;

use rheem_core::kernels::{self, SplitMix64};
use rheem_core::plan::{IneqCond, PlanBuilder};
use rheem_core::udf::{CmpOp, KeyUdf, MapUdf, PredicateUdf, ReduceUdf};
use rheem_core::value::Value;

fn int_rows(rng: &mut SplitMix64) -> Vec<(i64, i64)> {
    let len = rng.range_usize(120);
    (0..len).map(|_| (rng.range_usize(40) as i64, rng.range_usize(200) as i64 - 100)).collect()
}

fn rows_to_values(rows: &[(i64, i64)]) -> Vec<Value> {
    rows.iter().map(|&(k, v)| Value::pair(Value::from(k), Value::from(v))).collect()
}

fn sum_udf() -> ReduceUdf {
    ReduceUdf::new("sum", |a, b| {
        Value::pair(
            a.field(0).clone(),
            Value::from(a.field(1).as_int().unwrap_or(0) + b.field(1).as_int().unwrap_or(0)),
        )
    })
}

/// Every registered platform produces the same multiset of results for
/// a map→filter→reduce_by pipeline.
#[test]
fn platforms_agree_on_pipelines() {
    use rheem_core::platform::ids;
    for case in 0u64..12 {
        let mut rng = SplitMix64(0xA11CE ^ case);
        let data = rows_to_values(&int_rows(&mut rng));
        let mut outputs: Vec<Vec<Value>> = Vec::new();
        for forced in [ids::JAVA_STREAMS, ids::SPARK, ids::FLINK] {
            let mut ctx = rheem::default_context();
            ctx.forced_platform = Some(forced);
            let mut b = PlanBuilder::new();
            let sink = b
                .collection(data.clone())
                .map(MapUdf::new("inc", |v| {
                    Value::pair(v.field(0).clone(), Value::from(v.field(1).as_int().unwrap() + 1))
                }))
                .filter(PredicateUdf::new("pos", |v| v.field(1).as_int().unwrap() > 0))
                .reduce_by_key(KeyUdf::field(0), sum_udf())
                .collect();
            let plan = b.build().unwrap();
            let result = ctx.execute(&plan).unwrap();
            let mut out = result.sink(sink).unwrap().to_vec();
            out.sort();
            outputs.push(out);
        }
        assert_eq!(outputs[0], outputs[1], "case {case}: streams vs spark");
        assert_eq!(outputs[1], outputs[2], "case {case}: spark vs flink");
    }
}

/// A fused narrow chain produces *identical* output (same values, same
/// order) to the unfused operator-at-a-time path on every platform.
#[test]
fn fused_chain_matches_unfused_on_all_platforms() {
    use rheem_core::platform::ids;
    for case in 0u64..8 {
        let mut rng = SplitMix64(0xF05E ^ case);
        let data = rows_to_values(&int_rows(&mut rng));
        for forced in [ids::JAVA_STREAMS, ids::SPARK, ids::FLINK] {
            let run = |fusion: bool| -> Vec<Value> {
                let mut ctx = rheem::default_context().with_fusion(fusion);
                ctx.forced_platform = Some(forced);
                let mut b = PlanBuilder::new();
                let sink = b
                    .collection(data.clone())
                    .map(MapUdf::new("inc", |v| {
                        Value::pair(
                            v.field(0).clone(),
                            Value::from(v.field(1).as_int().unwrap() + 1),
                        )
                    }))
                    .filter(PredicateUdf::new("pos", |v| v.field(1).as_int().unwrap() > 0))
                    .flat_map(rheem_core::udf::FlatMapUdf::new("dup", |v| {
                        vec![v.clone(), v.clone()]
                    }))
                    .project(vec![1])
                    .collect();
                let plan = b.build().unwrap();
                ctx.execute(&plan).unwrap().sink(sink).unwrap().to_vec()
            };
            let fused = run(true);
            let unfused = run(false);
            assert_eq!(fused, unfused, "case {case} on {forced:?}");
        }
    }
}

/// Fused terminal aggregation — a narrow chain streaming straight into a
/// ReduceBy's hash accumulator — produces identical output to the unfused
/// operator-at-a-time path on every platform (the combined cover never
/// materializes the pair dataset, but the result must not change).
#[test]
fn fused_terminal_aggregation_matches_unfused() {
    use rheem_core::platform::ids;
    for case in 0u64..8 {
        let mut rng = SplitMix64(0xA66 ^ case);
        let data = rows_to_values(&int_rows(&mut rng));
        for forced in [ids::JAVA_STREAMS, ids::SPARK, ids::FLINK] {
            let run = |fusion: bool| -> Vec<Value> {
                let mut ctx = rheem::default_context().with_fusion(fusion);
                ctx.forced_platform = Some(forced);
                let mut b = PlanBuilder::new();
                let sink = b
                    .collection(data.clone())
                    .flat_map(rheem_core::udf::FlatMapUdf::new("dup", |v| {
                        vec![v.clone(), v.clone()]
                    }))
                    .filter(PredicateUdf::new("pos", |v| v.field(1).as_int().unwrap() > -50))
                    .map(MapUdf::new("tag", |v| Value::pair(v.field(0).clone(), Value::from(1))))
                    .reduce_by_key(KeyUdf::field(0), sum_udf())
                    .collect();
                let plan = b.build().unwrap();
                ctx.execute(&plan).unwrap().sink(sink).unwrap().to_vec()
            };
            let fused = run(true);
            let unfused = run(false);
            assert_eq!(fused, unfused, "case {case} on {forced:?}");
        }
    }
}

/// Columnar batch execution is observationally identical to row execution:
/// the same spec'd pipeline produces byte-identical output (same values,
/// same order) with `RHEEM_BATCH` on and off, on every platform.
#[test]
fn batch_mode_matches_row_mode_on_all_platforms() {
    use rheem_core::udf::{FlatMapUdf, Sarg};
    for case in 0u64..8 {
        let mut rng = SplitMix64(0xBA7C ^ case);
        let data = rows_to_values(&int_rows(&mut rng));
        let lit = rng.range_usize(100) as i64 - 50;
        for forced in [
            rheem_core::platform::ids::JAVA_STREAMS,
            rheem_core::platform::ids::SPARK,
            rheem_core::platform::ids::FLINK,
        ] {
            let run = |batch: bool| -> Vec<Value> {
                let mut ctx = rheem::default_context().with_batch(batch);
                ctx.forced_platform = Some(forced);
                let sarg = Sarg { field: 1, op: CmpOp::Gt, literal: Value::from(lit) };
                let sp = PredicateUdf::from_sarg("gt", sarg);
                let mut b = PlanBuilder::new();
                let sink = b
                    .collection(data.clone())
                    .filter_sarg(sp.pred, sp.sarg)
                    .map(MapUdf::field_add_int("bump", 1, 3))
                    .project(vec![1, 0])
                    .collect();
                let plan = b.build().unwrap();
                ctx.execute(&plan).unwrap().sink(sink).unwrap().to_vec()
            };
            assert_eq!(run(true), run(false), "case {case} on {forced:?}");
        }
        // Tokenizing flat-map into a dictionary-keyed word count.
        let lines: Vec<Value> =
            rheem_datagen::generate_text(40, 6, 60, case).into_iter().map(Value::from).collect();
        let run = |batch: bool| -> Vec<Value> {
            let ctx = rheem::default_context().with_batch(batch);
            let mut b = PlanBuilder::new();
            let sink = b
                .collection(lines.clone())
                .flat_map(FlatMapUdf::split_whitespace("split"))
                .map(MapUdf::pair_with_int("pair", 1))
                .reduce_by_key(KeyUdf::field(0), ReduceUdf::pair_int_sum("sum"))
                .collect();
            let plan = b.build().unwrap();
            ctx.execute(&plan).unwrap().sink(sink).unwrap().to_vec()
        };
        assert_eq!(run(true), run(false), "case {case}: wordcount diverged across batch modes");
    }
}

/// The vector kernel agrees with the row interpreter on arbitrarily typed
/// data — and refuses (returns `None`, falling back) rather than computing
/// wrong answers when runtime types don't columnize.
#[test]
fn vector_kernel_matches_row_pipeline_on_random_typed_data() {
    use rheem_core::batch::VectorKernel;
    use rheem_core::fused::{FusedPipeline, FusedStep};
    use rheem_core::udf::Sarg;
    let bc = rheem_core::udf::BroadcastCtx::new();
    let mut vectorized = 0usize;
    let mut refused = 0usize;
    for case in 0u64..32 {
        let mut rng = SplitMix64(0x7B1D ^ case);
        let len = rng.range_usize(80);
        // Mix types per case: uniform int pairs columnize; per-row type
        // mixtures and scalars must make the kernel refuse.
        let flavor = rng.range_usize(4);
        let data: Vec<Value> = (0..len)
            .map(|_| match flavor {
                0 => Value::pair(
                    Value::from(rng.range_usize(10) as i64),
                    Value::from(rng.range_usize(100) as i64 - 50),
                ),
                1 => Value::pair(
                    Value::from(rng.range_usize(10) as i64),
                    Value::from(rng.range_f64(-5.0, 5.0)),
                ),
                2 => {
                    // per-row type mixture in field 1
                    if rng.chance(0.5) {
                        Value::pair(Value::from(1i64), Value::from(2i64))
                    } else {
                        Value::pair(Value::from(1i64), Value::from("str"))
                    }
                }
                _ => Value::from(rng.range_usize(50) as i64), // scalar rows
            })
            .collect();
        let sarg = Sarg { field: 1, op: CmpOp::Gt, literal: Value::from(0i64) };
        let sp = PredicateUdf::from_sarg("gt", sarg);
        let pipeline = FusedPipeline::new(vec![
            FusedStep::Filter(sp.pred),
            FusedStep::Map(MapUdf::field_add_int("bump", 1, 7)),
            FusedStep::Project(vec![1, 0]),
        ]);
        let vk = VectorKernel::compile(&pipeline).expect("spec'd steps must compile");
        let row_out = pipeline.run(&data, &bc);
        match vk.run_values(&data) {
            Some(b) => {
                vectorized += 1;
                assert_eq!(b.to_values(), row_out, "case {case} flavor {flavor}");
            }
            None => refused = refused.saturating_add(1),
        }
    }
    assert!(vectorized > 0, "no case exercised the vector path");
    assert!(refused > 0, "no case exercised the refusal/fallback path");
}

/// `partition_batch` routes every row to exactly the bucket the row
/// shuffle would pick (`bucket_of_key` on the key field) and preserves
/// intra-bucket input order — for int and dictionary (string) keys.
#[test]
fn partition_batch_matches_row_shuffle_routing() {
    use rheem_core::batch::{self, Batch};
    use rheem_core::udf::KeySpec;
    for case in 0u64..24 {
        let mut rng = SplitMix64(0x9A27 ^ case);
        // Non-empty: an empty slice columnizes as an (untyped) scalar batch
        // and legitimately refuses to partition.
        let data: Vec<Value> = if case % 2 == 0 {
            (0..1 + rng.range_usize(119))
                .map(|_| {
                    Value::pair(
                        Value::from(rng.range_usize(40) as i64),
                        Value::from(rng.range_usize(200) as i64 - 100),
                    )
                })
                .collect()
        } else {
            (0..1 + rng.range_usize(119))
                .map(|_| {
                    Value::pair(
                        Value::from(format!("k{}", rng.range_usize(12))),
                        Value::from(rng.range_usize(200) as i64 - 100),
                    )
                })
                .collect()
        };
        let n = 1 + rng.range_usize(6);
        let b = Batch::from_values(&data);
        let buckets = batch::partition_batch(&b, &KeySpec::Field(0), n)
            .expect("typed pairs must partition columnar");
        assert_eq!(buckets.len(), n, "case {case}: bucket count");
        let mut want: Vec<Vec<Value>> = vec![Vec::new(); n];
        for v in &data {
            want[kernels::bucket_of_key(v.field(0), n)].push(v.clone());
        }
        for (j, bucket) in buckets.iter().enumerate() {
            assert_eq!(bucket.to_values(), want[j], "case {case} bucket {j}");
        }
    }
}

/// The columnar two-phase reduce — `combine_batch` → `partition_batch` →
/// `merge_batches` — agrees byte-for-byte (values *and* first-occurrence
/// order, per reduce partition) with the row path `combine_by` → `shuffle`
/// → `merge_by`.
#[test]
fn columnar_reduce_exchange_matches_row_exchange() {
    use rheem_core::batch::{self, Batch};
    use rheem_core::udf::KeySpec;
    for case in 0u64..24 {
        let mut rng = SplitMix64(0xC0B1 ^ case);
        let data = rows_to_values(&int_rows(&mut rng));
        let parts_n = 1 + rng.range_usize(5);
        let chunks: Vec<Vec<Value>> =
            data.chunks(data.len().div_ceil(parts_n).max(1)).map(|c| c.to_vec()).collect();
        let n = chunks.len().max(1);
        let agg = ReduceUdf::pair_int_sum("sum");
        // Row reference: keyed partials, hash exchange, carried-key merge.
        let combined: Vec<Arc<Vec<Value>>> = chunks
            .iter()
            .map(|c| Arc::new(kernels::combine_by(c, &KeyUdf::field(0), &agg)))
            .collect();
        let (ex, _) = platform_spark::shuffle(&combined, &KeyUdf::field(0), n);
        let row_out: Vec<Vec<Value>> = ex.iter().map(|p| kernels::merge_by(p, &agg)).collect();
        // Columnar path: slot-array combine, batch partition, slot merge.
        let spec = agg.spec.clone().expect("pair_int_sum is spec'd");
        let mut contribs: Vec<Vec<Batch>> = vec![Vec::new(); n];
        for c in &chunks {
            let cb = batch::combine_batch(&Batch::from_values(c), &spec)
                .expect("int pairs must combine columnar");
            let parts = batch::partition_batch(&cb, &KeySpec::Field(0), n)
                .expect("combined batch must partition");
            for (j, part) in parts.into_iter().enumerate() {
                contribs[j].push(part);
            }
        }
        for (j, bucket) in contribs.iter().enumerate() {
            let merged = batch::merge_batches(bucket).expect("uniform int contributions merge");
            assert_eq!(merged.to_values(), row_out[j], "case {case} reduce partition {j} (of {n})");
        }
    }
}

/// Batched sort — per-partition `sort_batch` plus the k-way `merge_sorted`
/// re-chunk — produces exactly the row path's partitions: per-partition
/// sort, global merge-sort, contiguous `div_ceil` re-chunk.
#[test]
fn sort_batch_merge_matches_row_sort() {
    use rheem_core::batch::{self, Batch};
    use rheem_core::udf::KeySpec;
    for case in 0u64..24 {
        let mut rng = SplitMix64(0x50B7 ^ case);
        let data = rows_to_values(&int_rows(&mut rng));
        let parts_n = 1 + rng.range_usize(5);
        let chunks: Vec<Vec<Value>> =
            data.chunks(data.len().div_ceil(parts_n).max(1)).map(|c| c.to_vec()).collect();
        let n = chunks.len().max(1);
        let key = KeyUdf::field(0);
        // Row reference: local sorts, one global stable sort, re-chunk.
        let mut all: Vec<Value> = chunks.iter().flat_map(|c| kernels::sort_by(c, &key)).collect();
        all = kernels::sort_by(&all, &key);
        let chunk = all.len().div_ceil(n).max(1);
        let mut want: Vec<Vec<Value>> = all.chunks(chunk).map(|c| c.to_vec()).collect();
        if want.is_empty() {
            want.push(Vec::new());
        }
        // Columnar path.
        let sorted: Vec<Batch> = chunks
            .iter()
            .map(|c| {
                batch::sort_batch(&Batch::from_values(c), &KeySpec::Field(0))
                    .expect("int pairs must sort columnar")
            })
            .collect();
        let merged = batch::merge_sorted(&sorted, &KeySpec::Field(0), n)
            .expect("sorted int batches must merge");
        assert_eq!(merged.len(), want.len(), "case {case}: partition count");
        for (j, b) in merged.iter().enumerate() {
            assert_eq!(b.to_values(), want[j], "case {case} sort partition {j}");
        }
    }
}

/// `join_buckets` (batched build/probe over co-partitioned buckets) emits
/// exactly what the row `shuffle` + `hash_join` pipeline does — same pairs,
/// same left-major/right-input order — for int and string keys.
#[test]
fn join_buckets_matches_row_hash_join() {
    use rheem_core::batch::{self, Batch};
    use rheem_core::udf::KeySpec;
    for case in 0u64..24 {
        let mut rng = SplitMix64(0x701A ^ case);
        let gen = |rng: &mut SplitMix64, strings: bool| -> Vec<Value> {
            (0..rng.range_usize(80))
                .map(|_| {
                    let k = rng.range_usize(8);
                    Value::pair(
                        if strings { Value::from(format!("k{k}")) } else { Value::from(k as i64) },
                        Value::from(rng.range_usize(100) as i64),
                    )
                })
                .collect()
        };
        let strings = case % 2 == 1;
        let left = gen(&mut rng, strings);
        let right = gen(&mut rng, strings);
        let n = 1 + rng.range_usize(5);
        let lchunks: Vec<Arc<Vec<Value>>> =
            left.chunks(left.len().div_ceil(n).max(1)).map(|c| Arc::new(c.to_vec())).collect();
        let rchunks: Vec<Arc<Vec<Value>>> =
            right.chunks(right.len().div_ceil(n).max(1)).map(|c| Arc::new(c.to_vec())).collect();
        let key = KeyUdf::field(0);
        // Row reference: hash exchange both sides, per-partition hash join.
        let (le, _) = platform_spark::shuffle(&lchunks, &key, n);
        let (re, _) = platform_spark::shuffle(&rchunks, &key, n);
        let row_out: Vec<Vec<Value>> =
            le.iter().zip(&re).map(|(l, r)| kernels::hash_join(l, r, &key, &key)).collect();
        // Columnar path: partition each input batch, join per bucket.
        let ks = KeySpec::Field(0);
        let mut lb: Vec<Vec<Batch>> = vec![Vec::new(); n];
        let mut rb: Vec<Vec<Batch>> = vec![Vec::new(); n];
        for (chunks, buckets) in [(&lchunks, &mut lb), (&rchunks, &mut rb)] {
            for c in chunks.iter() {
                let parts = batch::partition_batch(&Batch::from_values(c), &ks, n)
                    .expect("typed pairs must partition");
                for (j, p) in parts.into_iter().enumerate() {
                    buckets[j].push(p);
                }
            }
        }
        for j in 0..n {
            let out = batch::join_buckets(&lb[j], &rb[j], &ks, &ks)
                .expect("typed key columns must join columnar");
            assert_eq!(out, row_out[j], "case {case} join bucket {j} (strings={strings})");
        }
    }
}

/// Float arithmetic, conjunctive sargs, and string-predicate kernels agree
/// with the row closures they mirror, element for element — and refuse
/// (fall back) rather than diverge on untyped data.
#[test]
fn float_and_string_kernels_match_row_closures() {
    use rheem_core::batch::VectorKernel;
    use rheem_core::fused::{FusedPipeline, FusedStep};
    use rheem_core::udf::{Sarg, StrOp};
    let bc = rheem_core::udf::BroadcastCtx::new();
    let mut vectorized = 0usize;
    for case in 0u64..24 {
        let mut rng = SplitMix64(0xF10A ^ case);
        // (word, float) pairs: string predicate on field 0, float math on 1.
        let words = ["alpha", "beta", "axiom", "gamma", "apex", "delta"];
        let data: Vec<Value> = (0..rng.range_usize(100))
            .map(|_| {
                Value::pair(
                    Value::from(words[rng.range_usize(words.len())]),
                    Value::from(rng.range_f64(-10.0, 10.0)),
                )
            })
            .collect();
        let pipeline = FusedPipeline::new(vec![
            FusedStep::Filter(PredicateUdf::str_match("pre", 0, StrOp::StartsWith, "a")),
            FusedStep::Map(MapUdf::field_add_float("fadd", 1, 0.25)),
            FusedStep::Map(MapUdf::field_mul_float("fmul", 1, 1.5)),
            FusedStep::Filter(PredicateUdf::from_sargs(
                "band",
                vec![Sarg { field: 1, op: CmpOp::Gt, literal: Value::from(-9.0f64) }],
            )),
        ]);
        let vk = VectorKernel::compile(&pipeline).expect("spec'd steps must compile");
        let row_out = pipeline.run(&data, &bc);
        if let Some(b) = vk.run_values(&data) {
            vectorized += 1;
            assert_eq!(b.to_values(), row_out, "case {case}: float/string kernels diverged");
        }
        // Conjunctive sargs over int pairs (both conditions must apply).
        let ints = rows_to_values(&int_rows(&mut rng));
        let conj = FusedPipeline::new(vec![FusedStep::Filter(PredicateUdf::from_sargs(
            "band2",
            vec![
                Sarg { field: 1, op: CmpOp::Gt, literal: Value::from(-20i64) },
                Sarg { field: 1, op: CmpOp::Le, literal: Value::from(40i64) },
            ],
        ))]);
        let vk2 = VectorKernel::compile(&conj).expect("conjunctive sargs must compile");
        let row_out2 = conj.run(&ints, &bc);
        if let Some(b) = vk2.run_values(&ints) {
            vectorized += 1;
            assert_eq!(b.to_values(), row_out2, "case {case}: conjunctive sarg diverged");
        }
    }
    assert!(vectorized > 0, "no case exercised the float/string vector kernels");
}

/// The distributed reduce_by kernel path (partition + shuffle + merge)
/// agrees with the sequential kernel for any associative combiner.
#[test]
fn shuffle_reduce_matches_sequential() {
    for case in 0u64..24 {
        let mut rng = SplitMix64(0x5AFF1E ^ case);
        let data = rows_to_values(&int_rows(&mut rng));
        let parts = 1 + rng.range_usize(5);
        let mut seq = kernels::reduce_by(&data, &KeyUdf::field(0), &sum_udf());
        // partitioned: local combine, hash exchange, final combine
        let chunks: Vec<Arc<Vec<Value>>> =
            data.chunks(data.len().div_ceil(parts).max(1)).map(|c| Arc::new(c.to_vec())).collect();
        let combined: Vec<Arc<Vec<Value>>> = chunks
            .iter()
            .map(|c| Arc::new(kernels::reduce_by(c, &KeyUdf::field(0), &sum_udf())))
            .collect();
        let (exchanged, _) = platform_spark::shuffle(&combined, &KeyUdf::field(0), parts);
        let mut dist: Vec<Value> = exchanged
            .iter()
            .flat_map(|p| kernels::reduce_by(p, &KeyUdf::field(0), &sum_udf()))
            .collect();
        seq.sort();
        dist.sort();
        assert_eq!(seq, dist, "case {case} with {parts} partitions");
    }
}

/// IEJoin equals the nested loop for arbitrary data and operators.
#[test]
fn iejoin_equals_nested_loop() {
    let cmp_ops = [CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge];
    for case in 0u64..24 {
        let mut rng = SplitMix64(0x1E101 ^ case);
        let l = rows_to_values(&int_rows(&mut rng));
        let r = rows_to_values(&int_rows(&mut rng));
        let op1 = cmp_ops[rng.range_usize(cmp_ops.len())];
        let op2 = cmp_ops[rng.range_usize(cmp_ops.len())];
        let c1 = IneqCond { left_field: 0, op: op1, right_field: 0 };
        let c2 = IneqCond { left_field: 1, op: op2, right_field: 1 };
        let mut fast = bigdansing::iejoin::iejoin(&l, &r, &c1, &c2);
        let mut slow = kernels::ineq_join_nested(&l, &r, &[c1, c2]);
        fast.sort();
        slow.sort();
        assert_eq!(fast, slow, "case {case} ops {op1:?}/{op2:?}");
    }
}

/// Lossless pruning: the pruned enumeration finds a plan with exactly
/// the exhaustive enumeration's optimal cost.
#[test]
fn pruning_is_lossless() {
    for case in 0u64..12 {
        let mut rng = SplitMix64(0x10551E55 ^ case);
        let len = 1 + rng.range_usize(39);
        let data: Vec<Value> =
            (0..len).map(|_| Value::from(rng.range_usize(100) as i64 - 50)).collect();
        let mut b = PlanBuilder::new();
        let s = b.collection(data);
        let m = s.map(MapUdf::new("m", |v| v.clone()));
        let f = m.filter(PredicateUdf::new("f", |_| true));
        f.distinct().collect();
        m.count().collect(); // second branch forces a shared producer
        let plan = b.build().unwrap();
        let ctx = rheem::default_context();
        let pruned = ctx.optimize(&plan).unwrap();
        let optimizer =
            rheem_core::optimizer::Optimizer::new(ctx.registry(), ctx.profiles(), ctx.cost_model());
        let full = optimizer
            .optimize_exhaustive(&plan, &rheem_core::cardinality::Estimator::new())
            .unwrap();
        assert!(
            (pruned.est_ms - full.est_ms).abs() < 1e-6,
            "case {case}: pruned {} vs exhaustive {}",
            pruned.est_ms,
            full.est_ms
        );
        assert!(pruned.stats.partials_created <= full.stats.partials_created);
    }
}

/// Values survive ordering laws: sort is idempotent and total.
#[test]
fn value_order_is_total() {
    for case in 0u64..24 {
        let mut rng = SplitMix64(0x07DE7 ^ case);
        let mut v = rows_to_values(&int_rows(&mut rng));
        v.sort();
        let once = v.clone();
        v.sort();
        assert_eq!(once, v, "case {case}: sort not idempotent");
        for w in v.windows(2) {
            assert!(w[0] <= w[1], "case {case}: order not total");
        }
    }
}

/// Movement trees deliver every consumer exactly once.
#[test]
fn movement_tree_serves_all_consumers() {
    use rheem_core::channel::kinds;
    use rheem_core::movement::ConversionGraph;
    for case in 0u64..12 {
        let mut rng = SplitMix64(0x30BE ^ case);
        let card = rng.range_f64(1.0, 1e6);
        let ctx = rheem::default_context();
        let graph = ConversionGraph::from_registry(ctx.registry());
        let consumers = vec![
            vec![kinds::COLLECTION],
            vec![platform_spark::RDD, platform_spark::RDD_CACHED],
            vec![platform_flink::DATASET],
        ];
        let plan = graph
            .best_tree(
                platform_spark::RDD,
                &consumers,
                card,
                64.0,
                ctx.profiles(),
                ctx.cost_model(),
            )
            .unwrap();
        let mut served: Vec<usize> = Vec::new();
        collect_deliveries(&plan.tree, &mut served);
        served.sort_unstable();
        assert_eq!(served, vec![0, 1, 2], "case {case} card {card}");
        assert!(plan.cost_ms >= 0.0);
    }
}

fn collect_deliveries(node: &rheem_core::movement::ConvNode, out: &mut Vec<usize>) {
    out.extend(node.deliver.iter().copied());
    for (_, child) in &node.children {
        collect_deliveries(child, out);
    }
}

/// Fair-share invariant at the granularity the gate actually schedules —
/// one stage-job per grant: with every tenant continuously backlogged, the
/// weighted virtual times of all tenants stay within one grant's normalized
/// cost of each other, for any seeded weight vector and cost sequence.
#[test]
fn fair_share_virtual_times_stay_within_one_grant() {
    use rheem_core::service::FairShare;

    for case in 0u64..24 {
        let mut rng = SplitMix64(0xFA17 ^ case.wrapping_mul(0x9E37_79B9));
        let tenants = 2 + rng.range_usize(3); // 2..=4
        let weights: Vec<f64> = (0..tenants).map(|_| [1.0, 2.0, 4.0][rng.range_usize(3)]).collect();
        let mut fair = FairShare::new(rng.next_u64());
        for (i, w) in weights.iter().enumerate() {
            fair.add_tenant(&format!("t{i}"), *w);
        }
        let all: Vec<usize> = (0..tenants).collect();
        // The spread of an always-backlogged min-pick schedule is bounded by
        // the largest single normalized increment ever applied.
        let mut max_step = 0.0f64;
        for _ in 0..200 {
            let t = fair.pick(&all).expect("backlogged set is non-empty");
            let cost = 1.0 + rng.next_f64() * 9.0;
            max_step = max_step.max(cost / weights[t]);
            fair.charge(t, cost);
            for a in 0..tenants {
                for b in 0..tenants {
                    let spread = fair.vtime(a) - fair.vtime(b);
                    assert!(
                        spread.abs() <= max_step + 1e-9,
                        "case {case}: tenants {a}/{b} drifted {spread:.3} share-ms \
                         apart (max grant {max_step:.3}) — fairness broken"
                    );
                }
            }
        }
    }
}

/// Fair-share invariant of the end-to-end schedule: for any seeded arrival
/// sequence, weight vector, and lane count, each tenant's *completed*
/// virtual-time share stays within its configured weight ratio up to
/// in-flight-job granularity (completions credit whole jobs, so up to one
/// job per lane is legitimately uncredited at any instant). Also pins
/// conservation (served time equals submitted work) and bitwise determinism.
#[test]
fn fair_share_respects_weight_ratios_with_stage_granularity() {
    use rheem_core::service::{simulate_fair_share, SimJob};

    for case in 0u64..24 {
        let mut rng = SplitMix64(0xFA15 ^ case.wrapping_mul(0x9E37_79B9));
        let tenants = 2 + rng.range_usize(3); // 2..=4
        let weights: Vec<f64> = (0..tenants).map(|_| [1.0, 2.0, 4.0][rng.range_usize(3)]).collect();
        let lanes = 1 + rng.range_usize(3); // 1..=3
        let seed = rng.next_u64();

        // Saturating workload: every tenant has all its work queued at t=0,
        // with plenty of stage-jobs, so all tenants stay backlogged until
        // near the end of the run.
        let mut jobs = Vec::new();
        let mut submitted = vec![0.0f64; tenants];
        let mut max_job = 0.0f64;
        for t in 0..tenants {
            for _ in 0..6 {
                let stages: Vec<f64> =
                    (0..1 + rng.range_usize(4)).map(|_| 1.0 + rng.next_f64() * 9.0).collect();
                let total: f64 = stages.iter().sum();
                submitted[t] += total;
                max_job = max_job.max(total);
                jobs.push(SimJob { tenant: t, arrival_ms: 0.0, stages });
            }
        }

        let outcome = simulate_fair_share(&jobs, &weights, lanes, seed);
        let replay = simulate_fair_share(&jobs, &weights, lanes, seed);
        assert_eq!(
            outcome.completion_ms, replay.completion_ms,
            "case {case}: simulator is nondeterministic"
        );
        assert_eq!(outcome.served_ms, replay.served_ms);
        assert_eq!(outcome.makespan_ms, replay.makespan_ms);

        // Conservation: each tenant is served exactly the work it submitted.
        for t in 0..tenants {
            assert!(
                (outcome.served_ms[t] - submitted[t]).abs() < 1e-6,
                "case {case}: tenant {t} served {} of submitted {}",
                outcome.served_ms[t],
                submitted[t]
            );
        }
        let last = outcome.completion_ms.iter().cloned().fold(0.0f64, f64::max);
        assert!(
            (outcome.makespan_ms - last).abs() < 1e-9,
            "case {case}: makespan disagrees with the last completion"
        );

        // Weight-proportional progress at every prefix of the run: walk
        // completion events in time order and compare each pair of tenants'
        // cumulative completed virtual time against their weight ratio, with
        // one in-flight job of slack per lane (completions credit whole
        // jobs, so that much service is legitimately invisible here).
        let mut events: Vec<(f64, usize, f64)> = jobs
            .iter()
            .enumerate()
            .map(|(i, job)| (outcome.completion_ms[i], job.tenant, job.stages.iter().sum::<f64>()))
            .collect();
        events.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut done = vec![0.0f64; tenants];
        let slack = max_job * (lanes as f64 + 1.0) + 1e-6;
        for (now, tenant, served_ms) in events {
            done[tenant] += served_ms;
            // Only check while every tenant is still backlogged (has work
            // left); after a tenant drains, its share legitimately stops.
            let all_backlogged = (0..tenants).all(|t| submitted[t] - done[t] > slack);
            if !all_backlogged {
                continue;
            }
            for a in 0..tenants {
                for b in 0..tenants {
                    if a == b {
                        continue;
                    }
                    // done[a]/w[a] may lead done[b]/w[b] by at most the
                    // uncredited in-flight service (one job per lane),
                    // normalized by the smaller weight.
                    let lead = done[a] / weights[a] - done[b] / weights[b];
                    assert!(
                        lead <= slack / weights[a].min(weights[b]),
                        "case {case} t={now:.2}: tenant {a} (w={}) leads tenant {b} (w={}) \
                         by {lead:.3} share-ms — starvation beyond in-flight granularity",
                        weights[a],
                        weights[b]
                    );
                }
            }
        }
    }
}
