//! Property-based tests over core invariants: every platform computes the
//! same results as the single-threaded kernels, the optimizer's pruning is
//! lossless, IEJoin equals the nested loop, and the movement planner's
//! trees are valid and minimal-ish.

use proptest::prelude::*;
use std::sync::Arc;

use rheem_core::kernels;
use rheem_core::plan::{IneqCond, PlanBuilder};
use rheem_core::udf::{CmpOp, KeyUdf, MapUdf, PredicateUdf, ReduceUdf};
use rheem_core::value::Value;

fn int_rows() -> impl Strategy<Value = Vec<(i64, i64)>> {
    prop::collection::vec((0i64..40, -100i64..100), 0..120)
}

fn rows_to_values(rows: &[(i64, i64)]) -> Vec<Value> {
    rows.iter()
        .map(|&(k, v)| Value::pair(Value::from(k), Value::from(v)))
        .collect()
}

fn sum_udf() -> ReduceUdf {
    ReduceUdf::new("sum", |a, b| {
        Value::pair(
            a.field(0).clone(),
            Value::from(a.field(1).as_int().unwrap_or(0) + b.field(1).as_int().unwrap_or(0)),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every registered platform produces the same multiset of results for
    /// a map→filter→reduce_by pipeline.
    #[test]
    fn platforms_agree_on_pipelines(rows in int_rows()) {
        use rheem_core::platform::ids;
        let data = rows_to_values(&rows);
        let mut outputs: Vec<Vec<Value>> = Vec::new();
        for forced in [ids::JAVA_STREAMS, ids::SPARK, ids::FLINK] {
            let mut ctx = rheem::default_context();
            ctx.forced_platform = Some(forced);
            let mut b = PlanBuilder::new();
            let sink = b
                .collection(data.clone())
                .map(MapUdf::new("inc", |v| {
                    Value::pair(v.field(0).clone(), Value::from(v.field(1).as_int().unwrap() + 1))
                }))
                .filter(PredicateUdf::new("pos", |v| v.field(1).as_int().unwrap() > 0))
                .reduce_by_key(KeyUdf::field(0), sum_udf())
                .collect();
            let plan = b.build().unwrap();
            let result = ctx.execute(&plan).unwrap();
            let mut out = result.sink(sink).unwrap().to_vec();
            out.sort();
            outputs.push(out);
        }
        prop_assert_eq!(&outputs[0], &outputs[1]);
        prop_assert_eq!(&outputs[1], &outputs[2]);
    }

    /// The distributed reduce_by kernel path (partition + shuffle + merge)
    /// agrees with the sequential kernel for any associative combiner.
    #[test]
    fn shuffle_reduce_matches_sequential(rows in int_rows(), parts in 1usize..6) {
        let data = rows_to_values(&rows);
        let mut seq = kernels::reduce_by(&data, &KeyUdf::field(0), &sum_udf());
        // partitioned: local combine, hash exchange, final combine
        let chunks: Vec<Arc<Vec<Value>>> = data
            .chunks(data.len().div_ceil(parts).max(1))
            .map(|c| Arc::new(c.to_vec()))
            .collect();
        let combined: Vec<Arc<Vec<Value>>> = chunks
            .iter()
            .map(|c| Arc::new(kernels::reduce_by(c, &KeyUdf::field(0), &sum_udf())))
            .collect();
        let (exchanged, _) = platform_spark::shuffle(&combined, &KeyUdf::field(0), parts);
        let mut dist: Vec<Value> = exchanged
            .iter()
            .flat_map(|p| kernels::reduce_by(p, &KeyUdf::field(0), &sum_udf()))
            .collect();
        seq.sort();
        dist.sort();
        prop_assert_eq!(seq, dist);
    }

    /// IEJoin equals the nested loop for arbitrary data and operators.
    #[test]
    fn iejoin_equals_nested_loop(
        left in int_rows(),
        right in int_rows(),
        op1 in prop::sample::select(vec![CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge]),
        op2 in prop::sample::select(vec![CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge]),
    ) {
        let l = rows_to_values(&left);
        let r = rows_to_values(&right);
        let c1 = IneqCond { left_field: 0, op: op1, right_field: 0 };
        let c2 = IneqCond { left_field: 1, op: op2, right_field: 1 };
        let mut fast = bigdansing::iejoin::iejoin(&l, &r, &c1, &c2);
        let mut slow = kernels::ineq_join_nested(&l, &r, &[c1, c2]);
        fast.sort();
        slow.sort();
        prop_assert_eq!(fast, slow);
    }

    /// Lossless pruning: the pruned enumeration finds a plan with exactly
    /// the exhaustive enumeration's optimal cost.
    #[test]
    fn pruning_is_lossless(rows in prop::collection::vec(-50i64..50, 1..40)) {
        let data: Vec<Value> = rows.iter().map(|&v| Value::from(v)).collect();
        let mut b = PlanBuilder::new();
        let s = b.collection(data);
        let m = s.map(MapUdf::new("m", |v| v.clone()));
        let f = m.filter(PredicateUdf::new("f", |_| true));
        f.distinct().collect();
        m.count().collect(); // second branch forces a shared producer
        let plan = b.build().unwrap();
        let ctx = rheem::default_context();
        let pruned = ctx.optimize(&plan).unwrap();
        let optimizer = rheem_core::optimizer::Optimizer::new(
            ctx.registry(),
            ctx.profiles(),
            ctx.cost_model(),
        );
        let full = optimizer
            .optimize_exhaustive(&plan, &rheem_core::cardinality::Estimator::new())
            .unwrap();
        prop_assert!((pruned.est_ms - full.est_ms).abs() < 1e-6,
            "pruned {} vs exhaustive {}", pruned.est_ms, full.est_ms);
        prop_assert!(pruned.stats.partials_created <= full.stats.partials_created);
    }

    /// Values survive ordering laws: sort is idempotent and total.
    #[test]
    fn value_order_is_total(a in int_rows()) {
        let mut v = rows_to_values(&a);
        v.sort();
        let once = v.clone();
        v.sort();
        prop_assert_eq!(once, v.clone());
        for w in v.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }

    /// Movement trees deliver every consumer exactly once.
    #[test]
    fn movement_tree_serves_all_consumers(card in 1f64..1e6) {
        use rheem_core::channel::kinds;
        use rheem_core::movement::ConversionGraph;
        let ctx = rheem::default_context();
        let graph = ConversionGraph::from_registry(ctx.registry());
        let consumers = vec![
            vec![kinds::COLLECTION],
            vec![platform_spark::RDD, platform_spark::RDD_CACHED],
            vec![platform_flink::DATASET],
        ];
        let plan = graph
            .best_tree(
                platform_spark::RDD,
                &consumers,
                card,
                64.0,
                ctx.profiles(),
                ctx.cost_model(),
            )
            .unwrap();
        let mut served: Vec<usize> = Vec::new();
        collect_deliveries(&plan.tree, &mut served);
        served.sort_unstable();
        prop_assert_eq!(served, vec![0, 1, 2]);
        prop_assert!(plan.cost_ms >= 0.0);
    }
}

fn collect_deliveries(node: &rheem_core::movement::ConvNode, out: &mut Vec<usize>) {
    out.extend(node.deliver.iter().copied());
    for (_, child) in &node.children {
        collect_deliveries(child, out);
    }
}
