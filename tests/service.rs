//! Concurrency stress suite for the multi-tenant `JobService` (PR 7).
//!
//! The load-bearing claims, each locked down here under real OS-thread
//! concurrency:
//!
//! 1. **Per-job byte-identity**: a job submitted to a busy service returns
//!    exactly what the same plan returns alone on a fresh context — the
//!    commit-in-order executor makes concurrency invisible per job.
//! 2. **Admission control**: saturation (global or per-tenant) surfaces as
//!    the typed [`RheemError::Rejected`], deterministically.
//! 3. **Cache quotas**: a tenant's resident cache bytes never exceed its
//!    quota (polled through the `rheem_cache_*{tenant=...}` gauges), and a
//!    quota-thrashing tenant cannot evict a quoted neighbour's entries.
//! 4. **No starvation**: a 1-stage job submitted behind a long
//!    critical-path job of another tenant completes while the long job is
//!    still running.
//! 5. **Chaos determinism**: under the fixed chaos-seed matrix, every job's
//!    outcome (answer or typed error, and its retry count) is
//!    byte-reproducible under concurrent load.
//! 6. **Monitor/metrics isolation** (regression): concurrent jobs can no
//!    longer cross-contaminate per-job retry counts — each scoped job runs
//!    on a private monitor merged in at completion.

use std::sync::{Arc, Condvar, Mutex};

use rheem::prelude::*;
use rheem_core::cache::ResultCache;
use rheem_core::kernels::SplitMix64;

/// Fixed chaos-seed matrix (mirrors `tests/differential.rs` and CI).
const CHAOS_SEEDS: [u64; 3] = [0xC0FFEE, 42, 7];

/// A service context: general-purpose platforms, cache explicitly off so
/// results do not depend on the `RHEEM_CACHE` leg of the CI matrix.
fn ctx_without_cache() -> RheemContext {
    let mut ctx = rheem::default_context();
    ctx.set_cache(None);
    ctx
}

// ---- seeded job generator ------------------------------------------------

/// Deterministic per-(tenant, job) plan: map/filter chain over int pairs,
/// with an optional keyed reduction. Returns the plan and its sink.
fn gen_job(tenant: usize, job: usize) -> (RheemPlan, OperatorId) {
    let mut rng = SplitMix64(0x5E41 ^ ((tenant as u64) << 32) ^ (job as u64).wrapping_mul(0x9E37));
    let data: Vec<Value> = (0..40 + rng.range_usize(80))
        .map(|_| {
            Value::pair(
                Value::from(rng.range_usize(8) as i64),
                Value::from(rng.range_usize(200) as i64 - 100),
            )
        })
        .collect();
    let mut b = PlanBuilder::new();
    let mut q = b.collection(data);
    for _ in 0..1 + rng.range_usize(3) {
        q = match rng.range_usize(3) {
            0 => q.map(MapUdf::new("inc", |v| {
                Value::pair(v.field(0).clone(), Value::from(v.field(1).as_int().unwrap_or(0) + 1))
            })),
            1 => q.filter(PredicateUdf::new("even", |v| v.field(1).as_int().unwrap_or(0) % 2 == 0)),
            _ => q.map(MapUdf::new("rekey", |v| {
                Value::pair(
                    Value::from(
                        (v.field(0).as_int().unwrap_or(0) + v.field(1).as_int().unwrap_or(0))
                            .rem_euclid(5),
                    ),
                    v.field(1).clone(),
                )
            })),
        };
    }
    if rng.chance(0.5) {
        q = q.reduce_by_key(
            KeyUdf::field(0),
            ReduceUdf::new("sum", |a, b| {
                Value::pair(
                    a.field(0).clone(),
                    Value::from(
                        a.field(1).as_int().unwrap_or(0) + b.field(1).as_int().unwrap_or(0),
                    ),
                )
            }),
        );
    }
    let sink = q.collect();
    (b.build().unwrap(), sink)
}

fn tenant_name(t: usize) -> String {
    format!("tenant{t}")
}

// ---- 1. per-job byte-identity under concurrent load ----------------------

/// N tenants × M jobs, submitted from one OS thread per tenant: every job's
/// sink output is byte-identical (same values, same order) to the same plan
/// executed alone on a fresh single-tenant context.
#[test]
fn concurrent_jobs_match_isolated_runs_byte_for_byte() {
    const TENANTS: usize = 4;
    const JOBS: usize = 5;

    // Isolated baselines: fresh context per job, nothing shared.
    let mut baselines: Vec<Vec<Vec<Value>>> = Vec::new();
    for t in 0..TENANTS {
        let mut per_tenant = Vec::new();
        for j in 0..JOBS {
            let (plan, sink) = gen_job(t, j);
            let result = ctx_without_cache().execute(&plan).unwrap();
            per_tenant.push(result.sink(sink).unwrap().to_vec());
        }
        baselines.push(per_tenant);
    }

    let tenants: Vec<TenantSpec> =
        (0..TENANTS).map(|t| TenantSpec::new(&tenant_name(t)).with_max_in_flight(JOBS)).collect();
    let service = JobService::new(ctx_without_cache(), ServiceConfig::default(), tenants).unwrap();

    let outputs: Vec<Vec<Vec<Value>>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..TENANTS)
            .map(|t| {
                let service = &service;
                s.spawn(move || {
                    let name = tenant_name(t);
                    let submitted: Vec<(JobHandle, OperatorId)> = (0..JOBS)
                        .map(|j| {
                            let (plan, sink) = gen_job(t, j);
                            (service.submit(&name, plan).unwrap(), sink)
                        })
                        .collect();
                    submitted
                        .into_iter()
                        .map(|(h, sink)| h.wait().unwrap().sink(sink).unwrap().to_vec())
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for t in 0..TENANTS {
        for j in 0..JOBS {
            assert_eq!(
                outputs[t][j], baselines[t][j],
                "tenant {t} job {j}: concurrent submission changed the answer"
            );
        }
    }
    assert_eq!(service.in_flight(), 0, "all jobs must have drained");
    assert_eq!(service.completions().len(), TENANTS * JOBS);
}

// ---- 2. admission control -------------------------------------------------

/// A plan whose single map UDF blocks until the test releases it — pins a
/// job "running" deterministically so in-flight counts are controllable.
fn blocking_plan(latch: &Arc<(Mutex<bool>, Condvar)>) -> (RheemPlan, OperatorId) {
    let latch = Arc::clone(latch);
    let mut b = PlanBuilder::new();
    let sink = b
        .collection(vec![Value::from(1i64)])
        .map(MapUdf::new("block", move |v| {
            let (lock, cv) = &*latch;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
            v.clone()
        }))
        .collect();
    (b.build().unwrap(), sink)
}

fn trivial_plan() -> (RheemPlan, OperatorId) {
    let mut b = PlanBuilder::new();
    let sink = b.collection(vec![Value::from(7i64)]).collect();
    (b.build().unwrap(), sink)
}

/// Saturation is typed and deterministic: per-tenant caps and the global
/// in-flight cap reject at submission time with [`RheemError::Rejected`];
/// unknown tenants are rejected outright; draining the blocker completes
/// every admitted job.
#[test]
fn admission_control_rejects_typed_at_caps() {
    let latch = Arc::new((Mutex::new(false), Condvar::new()));
    let tenants = vec![
        TenantSpec::new("a").with_max_in_flight(2),
        TenantSpec::new("b").with_max_in_flight(8),
    ];
    let config =
        ServiceConfig { max_in_flight: 3, runners: 1, gate: false, ..ServiceConfig::default() };
    let service = JobService::new(ctx_without_cache(), config, tenants).unwrap();

    // Unknown tenant: rejected before any capacity is consumed.
    let (plan, _) = trivial_plan();
    match service.submit("nobody", plan) {
        Err(RheemError::Rejected { tenant, .. }) => assert_eq!(tenant, "nobody"),
        other => panic!("unknown tenant must be rejected, got ok={}", other.is_ok()),
    }

    // Fill tenant a to its cap: one blocker + one queued job. The blocker
    // UDF parks the single runner, so nothing drains underneath us.
    let (bplan, bsink) = blocking_plan(&latch);
    let h_block = service.submit("a", bplan).unwrap();
    let (p2, s2) = trivial_plan();
    let h2 = service.submit("a", p2).unwrap();
    let (p3, _) = trivial_plan();
    match service.submit("a", p3) {
        Err(RheemError::Rejected { tenant, reason }) => {
            assert_eq!(tenant, "a");
            assert!(reason.contains("tenant saturated"), "unexpected reason: {reason}");
        }
        other => panic!("tenant cap must reject, got ok={}", other.is_ok()),
    }

    // One more job fills the global cap (3 in flight), then tenant b — well
    // under its own cap — is rejected on service saturation.
    let (p4, s4) = trivial_plan();
    let h4 = service.submit("b", p4).unwrap();
    let (p5, _) = trivial_plan();
    match service.submit("b", p5) {
        Err(RheemError::Rejected { tenant, reason }) => {
            assert_eq!(tenant, "b");
            assert!(reason.contains("service saturated"), "unexpected reason: {reason}");
        }
        other => panic!("global cap must reject, got ok={}", other.is_ok()),
    }

    // Release the blocker: every admitted job completes.
    {
        let (lock, cv) = &*latch;
        *lock.lock().unwrap() = true;
        cv.notify_all();
    }
    assert_eq!(h_block.wait().unwrap().sink(bsink).unwrap().len(), 1);
    assert_eq!(h2.wait().unwrap().sink(s2).unwrap().len(), 1);
    assert_eq!(h4.wait().unwrap().sink(s4).unwrap().len(), 1);
    // Capacity freed: the same tenant is admitted again.
    let (p6, s6) = trivial_plan();
    let h6 = service.submit("a", p6).unwrap();
    assert_eq!(h6.wait().unwrap().sink(s6).unwrap().len(), 1);
}

// ---- 3. cache quotas -------------------------------------------------------

/// A cache-churning wordcount over a per-(tenant, job) corpus: distinct
/// fingerprints per job, so every job publishes fresh entries.
fn corpus_job(tenant: &str, job: usize) -> (RheemPlan, OperatorId) {
    let path = std::path::PathBuf::from(format!("hdfs://tests/service/{tenant}_{job}.txt"));
    rheem_datagen::text::write_corpus(&path, 160, 7 + job as u64).unwrap();
    corpus_plan(&path)
}

/// The wordcount plan alone — for warm reruns over an *unchanged* corpus
/// (re-writing the file would advance its version and miss on staleness).
fn corpus_plan(path: &std::path::Path) -> (RheemPlan, OperatorId) {
    let mut b = PlanBuilder::new();
    let sink = b
        .read_text_file(path)
        .flat_map(FlatMapUdf::new("split", |v| {
            v.as_str().unwrap_or("").split_whitespace().map(Value::from).collect()
        }))
        .map(MapUdf::new("pair", |w| Value::pair(w.clone(), Value::from(1))))
        .reduce_by_key(KeyUdf::field(0), ReduceUdf::sum())
        .collect();
    (b.build().unwrap(), sink)
}

/// Tenant quotas hold at every observation point: the `rheem_cache_bytes`
/// gauge for a quoted tenant never exceeds its quota while job after job
/// churns the namespace, and the churn cannot evict a quoted neighbour's
/// entries (its namespace sees zero evictions).
#[test]
fn cache_quotas_hold_and_do_not_cross_namespaces() {
    let cache = Arc::new(ResultCache::new(64 << 20));

    // Calibrate the quota in units of what one corpus job actually
    // publishes, so the test is robust to channel/Value representation
    // changes: 2.5 jobs' worth admits every individual entry but cannot
    // hold six jobs resident.
    let calib_ns = rheem_core::cache::Namespace::tenant("calib");
    {
        let mut ctx = rheem::default_context();
        ctx.set_cache(Some(Arc::clone(&cache)));
        let (plan, sink) = corpus_job("calib", 0);
        let scope =
            JobScope { tenant: Some("calib".into()), cache_ns: calib_ns, ..JobScope::default() };
        let r = ctx.execute_scoped(&plan, &scope).unwrap();
        assert!(!r.sink(sink).unwrap().is_empty());
    }
    let per_job = cache.stats_of(calib_ns).bytes;
    assert!(per_job > 0, "calibration job must publish cacheable channels");
    let quota = per_job * 5 / 2;

    let mut ctx = rheem::default_context();
    ctx.set_cache(Some(Arc::clone(&cache)));
    let churn_ns = rheem_core::cache::Namespace::tenant("churn");
    let neighbour_ns = rheem_core::cache::Namespace::tenant("neighbour");
    let tenants = vec![
        TenantSpec::new("churn").with_cache_quota(quota),
        TenantSpec::new("neighbour").with_cache_quota(quota * 4),
    ];
    let service = JobService::new(ctx, ServiceConfig::default(), tenants).unwrap();
    assert_eq!(cache.quota_of(churn_ns), Some(quota), "service must register quotas");

    // The neighbour publishes once, then stays idle.
    let (nplan, nsink) = corpus_job("neighbour", 0);
    let nh = service.submit("neighbour", nplan).unwrap();
    let nout = nh.wait().unwrap().sink(nsink).unwrap().to_vec();
    let neighbour_resident = cache.stats_of(neighbour_ns).bytes;
    assert!(neighbour_resident > 0, "neighbour job must publish into its namespace");

    // The churner runs 6 distinct jobs; after each, poll the exported
    // metrics — the quota gauge must hold at every observation point.
    for job in 0..6 {
        let (plan, sink) = corpus_job("churn", job);
        let h = service.submit("churn", plan).unwrap();
        assert!(!h.wait().unwrap().sink(sink).unwrap().is_empty());
        let metrics = service.context().metrics();
        let resident = metrics.gauge("rheem_cache_bytes{tenant=\"churn\"}").unwrap();
        let quota_gauge = metrics.gauge("rheem_cache_quota_bytes{tenant=\"churn\"}").unwrap();
        assert_eq!(quota_gauge as u64, quota);
        assert!(
            resident as u64 <= quota,
            "job {job}: churn tenant resident {resident} exceeds quota {quota}"
        );
    }

    // The churner was actually constrained (its namespace evicted), while
    // the quoted neighbour lost nothing to the churn.
    let churn = cache.stats_of(churn_ns);
    assert!(churn.inserts >= 6, "churn jobs must publish: {churn:?}");
    assert!(churn.evictions > 0, "quota must force within-namespace eviction: {churn:?}");
    let neighbour = cache.stats_of(neighbour_ns);
    assert_eq!(neighbour.evictions, 0, "churn evicted a quoted neighbour: {neighbour:?}");
    assert_eq!(neighbour.bytes, neighbour_resident, "neighbour residency changed");

    // And the neighbour still replays from its untouched namespace. Build
    // the plan over the *unchanged* corpus: re-writing the file would
    // advance its version and the stale fingerprint would (correctly) miss.
    let (nplan, nsink) = corpus_plan(std::path::Path::new("hdfs://tests/service/neighbour_0.txt"));
    let hits_before = cache.stats_of(neighbour_ns).hits;
    let nh = service.submit("neighbour", nplan).unwrap();
    assert_eq!(nh.wait().unwrap().sink(nsink).unwrap().to_vec(), nout);
    assert!(cache.stats_of(neighbour_ns).hits > hits_before, "warm rerun must hit");
}

// ---- 4. no starvation ------------------------------------------------------

/// A short 1-stage job submitted behind another tenant's long critical-path
/// job completes while the long job is still running: the fair-share stage
/// gate grants the newly backlogged tenant the very next slot instead of
/// letting the long job's stages monopolize the service.
#[test]
fn short_job_is_not_starved_behind_long_critical_path() {
    // Long job: a deep chain of keyed reductions over a large collection —
    // many dependent stages, so it holds the service for a while.
    let long_plan = || {
        let mut rng = SplitMix64(0x10A11CE);
        let data: Vec<Value> = (0..60_000)
            .map(|_| {
                Value::pair(
                    Value::from(rng.range_usize(512) as i64),
                    Value::from(rng.range_usize(100) as i64),
                )
            })
            .collect();
        let mut b = PlanBuilder::new();
        let mut q = b.collection(data);
        for round in 0..6 {
            q = q
                .map(MapUdf::new("fold", move |v| {
                    Value::pair(
                        Value::from(v.field(0).as_int().unwrap_or(0) / 2),
                        v.field(1).clone(),
                    )
                }))
                .reduce_by_key(
                    KeyUdf::field(0),
                    ReduceUdf::new("sum", |a, b| {
                        Value::pair(
                            a.field(0).clone(),
                            Value::from(
                                a.field(1).as_int().unwrap_or(0) + b.field(1).as_int().unwrap_or(0),
                            ),
                        )
                    }),
                );
            let _ = round;
        }
        let sink = q.collect();
        (b.build().unwrap(), sink)
    };

    let tenants = vec![TenantSpec::new("long"), TenantSpec::new("short")];
    let config = ServiceConfig { runners: 2, ..ServiceConfig::default() };
    // The deep reduce chain compounds cardinality mis-estimates; keep the
    // job long rather than replanned by disabling progressive reopt here.
    let mut ctx = ctx_without_cache();
    ctx.config_mut().progressive = false;
    let service = JobService::new(ctx, config, tenants).unwrap();

    let (lp, _) = long_plan();
    let lh = service.submit("long", lp).unwrap();
    let (sp, ssink) = trivial_plan();
    let sh = service.submit("short", sp).unwrap();

    // The short job completes correctly...
    assert_eq!(sh.wait().unwrap().sink(ssink).unwrap().len(), 1);
    // ...and strictly before the long job in the service's completion log.
    lh.wait().unwrap();
    let completions = service.completions();
    let short_pos = completions.iter().position(|(_, t)| t == "short").unwrap();
    let long_pos = completions.iter().position(|(_, t)| t == "long").unwrap();
    assert!(short_pos < long_pos, "short job starved: completions ran {completions:?}");
}

// ---- 5. chaos determinism under concurrent load ---------------------------

/// Under the fixed chaos-seed matrix, each job's outcome — the answer (or
/// the typed error) and its retry count — is byte-reproducible when the
/// same jobs run concurrently on a busy service: fault plans resolve once
/// per job, so concurrency cannot re-deal the fault schedule.
#[test]
fn chaos_outcomes_reproduce_under_concurrent_load() {
    const TENANTS: usize = 3;
    const JOBS: usize = 3;
    for &chaos_seed in &CHAOS_SEEDS {
        // Isolated baselines: outcome + per-job retry count.
        let mut baseline: Vec<Vec<Result<(Vec<Value>, u32)>>> = Vec::new();
        for t in 0..TENANTS {
            let mut per_tenant = Vec::new();
            for j in 0..JOBS {
                let (plan, sink) = gen_job(t, j);
                let mut ctx = ctx_without_cache();
                ctx.config_mut().chaos_seed = Some(chaos_seed);
                per_tenant.push(
                    ctx.execute(&plan).map(|r| (r.sink(sink).unwrap().to_vec(), r.metrics.retries)),
                );
            }
            baseline.push(per_tenant);
        }

        let mut ctx = ctx_without_cache();
        ctx.config_mut().chaos_seed = Some(chaos_seed);
        let tenants: Vec<TenantSpec> =
            (0..TENANTS).map(|t| TenantSpec::new(&tenant_name(t))).collect();
        let service = JobService::new(ctx, ServiceConfig::default(), tenants).unwrap();

        let outcomes: Vec<Vec<Result<(Vec<Value>, u32)>>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..TENANTS)
                .map(|t| {
                    let service = &service;
                    s.spawn(move || {
                        let name = tenant_name(t);
                        let submitted: Vec<(JobHandle, OperatorId)> = (0..JOBS)
                            .map(|j| {
                                let (plan, sink) = gen_job(t, j);
                                (service.submit(&name, plan).unwrap(), sink)
                            })
                            .collect();
                        submitted
                            .into_iter()
                            .map(|(h, sink)| {
                                h.wait()
                                    .map(|r| (r.sink(sink).unwrap().to_vec(), r.metrics.retries))
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        for t in 0..TENANTS {
            for j in 0..JOBS {
                match (&baseline[t][j], &outcomes[t][j]) {
                    (Ok((bout, bretries)), Ok((out, retries))) => {
                        assert_eq!(
                            out, bout,
                            "seed {chaos_seed:#x} tenant {t} job {j}: answer changed under load"
                        );
                        assert_eq!(
                            retries, bretries,
                            "seed {chaos_seed:#x} tenant {t} job {j}: retry count changed \
                             (monitor isolation regression)"
                        );
                    }
                    (Err(be), Err(e)) => assert_eq!(
                        e.to_string(),
                        be.to_string(),
                        "seed {chaos_seed:#x} tenant {t} job {j}: error changed under load"
                    ),
                    (b, o) => panic!(
                        "seed {chaos_seed:#x} tenant {t} job {j}: outcome flipped under load \
                         (isolated ok={}, service ok={})",
                        b.is_ok(),
                        o.is_ok()
                    ),
                }
            }
        }
    }
}

// ---- 6. monitor/metrics isolation regression -------------------------------

/// Before PR 7, `execute` computed per-job retries as a before/after delta
/// on the context-shared monitor — racing jobs bled retries into each
/// other's metrics. `execute_scoped` runs each job on a private monitor:
/// per-job counts match isolated runs exactly (asserted per job in the
/// chaos test above); here we assert the merge side — the shared monitor
/// and metrics registry still account for *everything*, exactly once.
#[test]
fn scoped_jobs_merge_into_shared_monitor_exactly_once() {
    const THREADS: usize = 4;
    const JOBS: usize = 3;
    let mut ctx = ctx_without_cache();
    ctx.config_mut().chaos_seed = Some(0xC0FFEE);
    let ctx = Arc::new(ctx);

    let per_job: Vec<(u32, u32, usize)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let ctx = Arc::clone(&ctx);
                s.spawn(move || {
                    let mut acc = Vec::new();
                    for j in 0..JOBS {
                        let (plan, _) = gen_job(t, j);
                        let scope =
                            JobScope { tenant: Some(tenant_name(t)), ..JobScope::default() };
                        match ctx.execute_scoped(&plan, &scope) {
                            Ok(r) => acc.push((
                                r.metrics.retries,
                                r.metrics.failovers,
                                r.trace.map(|t| t.runs.len()).unwrap_or(0),
                            )),
                            Err(_) => acc.push((0, 0, 0)),
                        }
                    }
                    acc
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
    });

    // Isolated reruns agree per job (determinism), and the shared monitor
    // holds exactly the sum of the per-job records.
    let total_retries: u32 = per_job.iter().map(|(r, _, _)| r).sum();
    let total_failovers: u32 = per_job.iter().map(|(_, f, _)| f).sum();
    let total_runs: usize = per_job.iter().map(|(_, _, n)| n).sum();
    assert_eq!(ctx.monitor().retries(), total_retries, "shared monitor lost/duplicated retries");
    assert_eq!(ctx.monitor().failovers(), total_failovers);
    assert_eq!(
        ctx.monitor().stage_runs().len(),
        total_runs,
        "merged stage-run records must equal the sum of per-job traces"
    );
    // Per-tenant job counters each saw exactly JOBS completions.
    let metrics = ctx.metrics();
    for t in 0..THREADS {
        let key = format!("rheem_jobs_total{{tenant=\"{}\"}}", tenant_name(t));
        assert_eq!(metrics.counter(&key), JOBS as u64, "mislabelled tenant counter {key}");
    }
    // The Prometheus snapshot stays well-formed with labelled families: one
    // TYPE line per family, label sets intact.
    let prom = metrics.snapshot_prometheus();
    assert_eq!(
        prom.matches("# TYPE rheem_jobs_total counter").count(),
        1,
        "labelled counters must share one TYPE line:\n{prom}"
    );
    assert!(prom.contains("rheem_jobs_total{tenant=\"tenant0\"}"));
}
