//! Chaos sweep (§7.1): an exhaustive matrix of injection points over the
//! WordCount and SGD (Listing 1) plans. Every `(stage, fault kind, fail
//! count)` cell must either recover within the retry budget (byte-identical
//! answer, zero failovers) or escalate cleanly — fail over to a surviving
//! platform or die with a *typed* error. Alongside each cell we check that
//! the monitor's retry/fault annotations match the injected plan exactly:
//! chaos without bookkeeping honesty would hide exactly the bugs it is
//! supposed to find.

use std::collections::HashSet;
use std::sync::Arc;

use rheem::prelude::*;
use rheem_core::builtin::CONTROL;
use rheem_core::fault::{FaultKind, FaultPlan, FaultRule, PERSISTENT};
use rheem_core::plan::{OperatorId, RheemPlan};
use rheem_core::udf::FlatMapUdf;

/// Fixed chaos-seed matrix (mirrored in CI and `tests/differential.rs`).
const CHAOS_SEEDS: [u64; 3] = [0xC0FFEE, 42, 7];
/// Retry budget used by every cell — small enough that `failing(3)` spills
/// over into the failover path.
const BUDGET: u32 = 2;
const KINDS: [FaultKind; 3] = [FaultKind::Transient, FaultKind::StageCrash, FaultKind::Transfer];

fn chaos_seeds() -> Vec<u64> {
    let mut seeds = CHAOS_SEEDS.to_vec();
    if let Some(extra) = std::env::var("CHAOS_SEED").ok().and_then(|s| s.parse().ok()) {
        if !seeds.contains(&extra) {
            seeds.push(extra);
        }
    }
    seeds
}

// ---- the two workloads --------------------------------------------------

fn corpus() -> Vec<Value> {
    rheem_datagen::generate_text(60, 10, 5_000, 7).into_iter().map(Value::from).collect()
}

fn wordcount_chain(q: rheem_core::plan::DataQuanta) -> rheem_core::plan::DataQuanta {
    q.flat_map(FlatMapUdf::new("split", |v| {
        v.as_str().unwrap_or("").split_whitespace().map(Value::from).collect()
    }))
    .map(MapUdf::new("pair", |w| Value::pair(w.clone(), Value::from(1))))
    .reduce_by_key(
        KeyUdf::field(0),
        ReduceUdf::new("sum", |a, b| {
            Value::pair(
                a.field(0).clone(),
                Value::from(a.field(1).as_int().unwrap_or(0) + b.field(1).as_int().unwrap_or(0)),
            )
        }),
    )
}

/// WordCount with free platform choice.
fn wordcount_plan() -> (RheemPlan, OperatorId) {
    let mut b = PlanBuilder::new();
    let sink = wordcount_chain(b.collection(corpus())).collect();
    (b.build().unwrap(), sink)
}

/// WordCount spanning two pinned platforms, so the plan must cross channel
/// boundaries — this is what puts `Transfer` fault sites on the map.
fn hybrid_wordcount_plan() -> (RheemPlan, OperatorId) {
    let mut b = PlanBuilder::new();
    let sink = wordcount_chain(
        b.collection(corpus())
            .map(MapUdf::new("lower", |v| Value::from(v.as_str().unwrap_or("").to_lowercase())))
            .with_target_platform(ids::SPARK),
    )
    .with_target_platform(ids::FLINK)
    .collect();
    (b.build().unwrap(), sink)
}

/// Listing 1's SGD shape over integers (batch gradient, no sampling), so the
/// learned weight is exactly reproducible: the loop head, the broadcast of
/// the weights into the gradient map, and the broadcast of the gradient sum
/// into the update map are all there — only the arithmetic is made exact.
fn sgd_plan() -> (RheemPlan, OperatorId) {
    let mut b = PlanBuilder::new();
    let points: Vec<Value> = (0..24i64)
        .map(|i| {
            let x = i % 5 - 2;
            Value::pair(Value::from(x), Value::from(3 * x + 1))
        })
        .collect();
    let points = b.collection(points);
    let winit = b.collection(vec![Value::from(0i64)]);
    let sink = winit
        .repeat(3, |w| {
            let grad = points
                .map(MapUdf::with_ctx("gradient", |p, ctx| {
                    let wv =
                        ctx.get_or_empty("weights").first().and_then(Value::as_int).unwrap_or(0);
                    let x = p.field(0).as_int().unwrap_or(0);
                    let y = p.field(1).as_int().unwrap_or(0);
                    Value::from(x * (x * wv - y))
                }))
                .broadcast("weights", w)
                .reduce(ReduceUdf::new("gsum", |a, b| {
                    Value::from(a.as_int().unwrap_or(0) + b.as_int().unwrap_or(0))
                }));
            w.map(MapUdf::with_ctx("update", |w, ctx| {
                let g =
                    ctx.get_or_empty("gradient_sum").first().and_then(Value::as_int).unwrap_or(0);
                Value::from(w.as_int().unwrap_or(0) - g / 64)
            }))
            .broadcast("gradient_sum", &grad)
        })
        .collect();
    (b.build().unwrap(), sink)
}

type PlanFn = fn() -> (RheemPlan, OperatorId);
const PLANS: [(&str, PlanFn); 3] =
    [("wordcount", wordcount_plan), ("hybrid-wordcount", hybrid_wordcount_plan), ("sgd", sgd_plan)];

// ---- harness ------------------------------------------------------------

/// Fault-free reference run: canonical (sorted) output plus the stage ids
/// the optimizer actually scheduled — those are the sweep's injection axis.
fn baseline(make: PlanFn) -> (Vec<Value>, Vec<usize>) {
    let ctx = rheem::default_context();
    let (plan, sink) = make();
    let result = ctx.execute(&plan).unwrap();
    let mut out = result.sink(sink).unwrap().to_vec();
    out.sort();
    let mut stages: Vec<usize> = ctx.monitor().stage_runs().iter().map(|r| r.stage).collect();
    stages.sort_unstable();
    stages.dedup();
    (out, stages)
}

fn run_sorted(ctx: &RheemContext, make: PlanFn) -> Result<(Vec<Value>, u32, u32)> {
    let (plan, sink) = make();
    let result = ctx.execute(&plan)?;
    let mut out = result.sink(sink)?.to_vec();
    out.sort();
    Ok((out, result.metrics.retries, result.metrics.failovers))
}

/// Effective (non-superseded) stage runs must account every loop iteration
/// exactly once per phase — the monitor invariant behind the learner's
/// sample extraction, and the regression guard for the replayed-iteration
/// accounting bug fixed in this PR.
fn assert_no_duplicate_iteration_accounting(ctx: &RheemContext, what: &str) {
    let mut seen = HashSet::new();
    for r in ctx.monitor().stage_runs_effective() {
        assert!(
            seen.insert((r.phase, r.stage, r.iteration)),
            "{what}: stage {} iteration {} recorded twice in phase {}",
            r.stage,
            r.iteration,
            r.phase
        );
    }
}

#[derive(Default)]
struct Tally {
    transient: usize,
    crash: usize,
    transfer: usize,
}

impl Tally {
    fn bump(&mut self, kind: FaultKind, n: usize) {
        match kind {
            FaultKind::Transient => self.transient += n,
            FaultKind::StageCrash => self.crash += n,
            FaultKind::Transfer => self.transfer += n,
        }
    }
}

// ---- the matrix ---------------------------------------------------------

/// Sweep every `(stage, kind, fail count)` cell of every workload. Cells
/// inside the budget must recover in place with the exact baseline answer;
/// cells beyond it must fail over or surface a typed error. In every
/// surviving cell the monitor's annotations are reconciled against the
/// injected plan: all records carry the injected kind and stage, and the
/// global retry counter, the per-run `StageRun::retries` sums and the
/// recovered fault records all agree.
#[test]
fn fault_matrix_recovers_in_budget_or_escalates_cleanly() {
    let mut tally = Tally::default();
    for (name, make) in PLANS {
        let (expected, stages) = baseline(make);
        for &stage in &stages {
            for kind in KINDS {
                for fail_n in [1u32, BUDGET + 1] {
                    let cell = format!("{name}: stage {stage}, {kind} x{fail_n}");
                    let mut ctx = rheem::default_context();
                    ctx.config_mut().retry_budget = BUDGET;
                    ctx.config_mut().fault_plan = Some(Arc::new(
                        FaultPlan::none()
                            .with_rule(FaultRule::new(kind).on_stage(stage).failing(fail_n)),
                    ));
                    match run_sorted(&ctx, make) {
                        Ok((out, retries, failovers)) => {
                            assert_eq!(out, expected, "{cell}: wrong answer");
                            let recs = ctx.monitor().fault_records();
                            for r in &recs {
                                assert_eq!(r.kind, Some(kind), "{cell}: alien fault {r:?}");
                                assert_eq!(r.stage, stage, "{cell}: strayed to {r:?}");
                            }
                            let recovered = recs.iter().filter(|r| r.recovered).count() as u32;
                            assert_eq!(
                                ctx.monitor().retries(),
                                recovered,
                                "{cell}: retry counter out of sync with fault records"
                            );
                            let per_run: u32 =
                                ctx.monitor().stage_runs().iter().map(|r| r.retries).sum();
                            assert_eq!(per_run, recovered, "{cell}: StageRun retries drifted");
                            assert_eq!(retries, recovered, "{cell}: JobMetrics retries drifted");
                            assert_eq!(
                                failovers,
                                ctx.monitor().failovers(),
                                "{cell}: JobMetrics failovers drifted"
                            );
                            if fail_n <= BUDGET {
                                assert!(
                                    recs.iter().all(|r| r.recovered),
                                    "{cell}: in-budget fault not recovered"
                                );
                                assert_eq!(failovers, 0, "{cell}: needless failover");
                            } else if recs.iter().any(|r| !r.recovered) {
                                assert!(
                                    failovers >= 1,
                                    "{cell}: exhausted budget but no failover recorded"
                                );
                            }
                            tally.bump(kind, recs.len());
                        }
                        // Beyond the budget a cell may legitimately run out of
                        // platforms (pinned operators, repeated exhaustion) —
                        // but only with a *typed* error, and never in budget.
                        Err(
                            e @ (RheemError::Fault(_)
                            | RheemError::Exhausted(_)
                            | RheemError::Optimizer(_)),
                        ) => {
                            assert!(fail_n > BUDGET, "{cell}: in-budget cell died: {e}");
                        }
                        Err(other) => panic!("{cell}: untyped error {other}"),
                    }
                }
            }
        }
    }
    // The matrix must actually hit all three kinds of site (deterministic,
    // so this cannot flake): transient + crash everywhere, transfer via the
    // hybrid plan's cross-platform channels.
    assert!(tally.transient > 0, "matrix never injected a transient fault");
    assert!(tally.crash > 0, "matrix never injected a stage crash");
    assert!(tally.transfer > 0, "matrix never injected a transfer fault");
}

/// Kill the platform that actually ran each workload's first stage,
/// persistently: the job must complete on a surviving platform with the
/// baseline answer, and both the monitor and the job metrics must report
/// the failover.
#[test]
fn exhausted_stage_fails_over_and_completes() {
    for (name, make) in [("wordcount", wordcount_plan as PlanFn), ("sgd", sgd_plan as PlanFn)] {
        let (expected, _) = baseline(make);
        let victim = {
            let ctx = rheem::default_context();
            let (plan, _) = make();
            ctx.execute(&plan).unwrap();
            // The driver pseudo-platform is never injected; kill the first
            // real engine the job touched.
            ctx.monitor()
                .stage_runs()
                .iter()
                .map(|r| r.platform)
                .find(|&p| p != CONTROL)
                .expect("job must touch a real platform")
        };
        let mut ctx = rheem::default_context();
        ctx.config_mut().retry_budget = BUDGET;
        ctx.config_mut().fault_plan = Some(Arc::new(FaultPlan::none().with_rule(
            FaultRule::new(FaultKind::Transient).on_platform(victim).failing(PERSISTENT),
        )));
        let (out, retries, failovers) = run_sorted(&ctx, make).unwrap();
        assert_eq!(out, expected, "{name}: failover from {victim:?} changed the answer");
        assert!(failovers >= 1, "{name}: JobMetrics must report the failover");
        assert!(ctx.monitor().failovers() >= 1, "{name}: monitor must count the failover");
        assert!(retries >= BUDGET, "{name}: the budget must be consumed before failing over");
        assert!(
            ctx.monitor().fault_records().iter().any(|r| !r.recovered),
            "{name}: the exhaustion must be recorded"
        );
        // Work finished on the victim *before* the exhaustion survives via
        // the checkpoint, but the re-planned final phase must avoid it.
        let runs = ctx.monitor().stage_runs();
        let last_phase = runs.iter().map(|r| r.phase).max().unwrap();
        assert!(
            runs.iter().filter(|r| r.phase == last_phase).all(|r| r.platform != victim),
            "{name}: re-planned phase still scheduled the blacklisted platform"
        );
    }
}

/// Persistent failure *inside the SGD loop body*: the failover checkpoint
/// must restart the loop cleanly — same final weights, and no loop
/// iteration double-counted in the effective stage runs (the learner feeds
/// on those).
#[test]
fn mid_loop_failover_replays_without_duplicate_iteration_accounting() {
    let (expected, _) = baseline(sgd_plan);
    // Find a stage that actually iterates, and the platform it ran on.
    let (loop_stage, victim) = {
        let ctx = rheem::default_context();
        let (plan, _) = sgd_plan();
        ctx.execute(&plan).unwrap();
        let runs = ctx.monitor().stage_runs();
        let r = runs
            .iter()
            .find(|r| r.iteration > 0 && r.platform != CONTROL)
            .expect("sgd must iterate on a real platform");
        (r.stage, r.platform)
    };
    let mut ctx = rheem::default_context();
    ctx.config_mut().retry_budget = BUDGET;
    ctx.config_mut().fault_plan = Some(Arc::new(
        FaultPlan::none().with_rule(
            FaultRule::new(FaultKind::Transient)
                .on_platform(victim)
                .on_stage(loop_stage)
                .failing(PERSISTENT),
        ),
    ));
    let (out, _, failovers) = run_sorted(&ctx, sgd_plan).unwrap();
    assert_eq!(out, expected, "mid-loop failover changed the learned weights");
    assert!(failovers >= 1, "expected a mid-loop failover");
    assert_no_duplicate_iteration_accounting(&ctx, "sgd mid-loop failover");
}

/// Seeded chaos over both workloads for the fixed CI seed matrix: survive
/// with the exact baseline answer or die typed; surviving runs keep the
/// monitor's iteration accounting duplicate-free.
#[test]
fn seeded_chaos_on_wordcount_and_sgd_is_survivable_or_typed() {
    let mut survived = 0usize;
    let mut injected = 0usize;
    for seed in chaos_seeds() {
        for (name, make) in PLANS {
            let (expected, _) = baseline(make);
            let mut ctx = rheem::default_context();
            ctx.config_mut().chaos_seed = Some(seed);
            match run_sorted(&ctx, make) {
                Ok((out, _, _)) => {
                    assert_eq!(out, expected, "seed {seed:#x} on {name}: wrong answer");
                    assert_no_duplicate_iteration_accounting(&ctx, name);
                    survived += 1;
                }
                Err(RheemError::Fault(_) | RheemError::Exhausted(_) | RheemError::Optimizer(_)) => {
                }
                Err(other) => panic!("seed {seed:#x} on {name}: untyped error {other}"),
            }
            injected += ctx.monitor().fault_records().len();
        }
    }
    assert!(injected > 0, "seed matrix injected nothing");
    assert!(survived > 0, "seed matrix never survived a run");
}
