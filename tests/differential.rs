//! Differential test suite: seeded random plans must compute *identical*
//! results on every platform simulacrum — with and without fusion, with and
//! without an active fault plan. Heterogeneous backends only stay
//! trustworthy under exactly this kind of harness (cf. Calcite's experience
//! with differential testing): an injected fault may be survived (retry or
//! failover) or surfaced as a typed error, but it must never produce a
//! wrong answer.
//!
//! Plans are generated from the repo's own deterministic `SplitMix64`, so
//! every failure reproduces from its case number. The chaos seeds below are
//! the fixed CI matrix; set `CHAOS_SEED=<n>` to add one more.

use std::sync::Arc;

use rheem::prelude::*;
use rheem_core::fault::{FaultKind, FaultPlan, FaultRule, PERSISTENT};
use rheem_core::kernels::SplitMix64;
use rheem_core::udf::{CmpOp, FlatMapUdf, Sarg};

const PLATFORMS: [PlatformId; 3] = [ids::JAVA_STREAMS, ids::SPARK, ids::FLINK];
/// Fixed chaos-seed matrix (mirrored in CI).
const CHAOS_SEEDS: [u64; 3] = [0xC0FFEE, 42, 7];

fn chaos_seeds() -> Vec<u64> {
    let mut seeds = CHAOS_SEEDS.to_vec();
    if let Some(extra) = std::env::var("CHAOS_SEED").ok().and_then(|s| s.parse().ok()) {
        if !seeds.contains(&extra) {
            seeds.push(extra);
        }
    }
    seeds
}

// ---- seeded plan generator ---------------------------------------------

/// One randomly generated plan: one or two op chains over (key, value)
/// pairs, optionally joined, with an optional terminal aggregation.
#[derive(Clone, Debug)]
struct Spec {
    chain_a: Vec<u8>,
    chain_b: Option<Vec<u8>>, // joined on field(0) when present
    terminal: u8,             // 0 = none, 1 = reduce_by_key, 2 = distinct, 3 = count
    data_a: Vec<Value>,
    data_b: Vec<Value>,
}

fn pairs(rng: &mut SplitMix64, max_len: usize) -> Vec<Value> {
    let len = rng.range_usize(max_len);
    (0..len)
        .map(|_| {
            Value::pair(
                Value::from(rng.range_usize(8) as i64),
                Value::from(rng.range_usize(200) as i64 - 100),
            )
        })
        .collect()
}

fn gen_spec(case: u64) -> Spec {
    let mut rng = SplitMix64(0xD1FF ^ case.wrapping_mul(0x9E37_79B9));
    let chain = |rng: &mut SplitMix64| -> Vec<u8> {
        let len = 2 + rng.range_usize(3);
        (0..len).map(|_| rng.range_usize(7) as u8).collect()
    };
    let chain_a = chain(&mut rng);
    let chain_b = rng.chance(0.4).then(|| chain(&mut rng));
    Spec {
        chain_a,
        chain_b,
        terminal: rng.range_usize(4) as u8,
        data_a: pairs(&mut rng, 60),
        data_b: pairs(&mut rng, 40),
    }
}

fn apply_op(q: rheem_core::plan::DataQuanta, code: u8) -> rheem_core::plan::DataQuanta {
    let k = |v: &Value| v.field(0).as_int().unwrap_or(0);
    let x = |v: &Value| v.field(1).as_int().unwrap_or(0);
    match code {
        0 => q.map(MapUdf::new("inc", move |v| {
            Value::pair(v.field(0).clone(), Value::from(x(v) + 1))
        })),
        1 => q.map(MapUdf::new("scale", move |v| {
            Value::pair(v.field(0).clone(), Value::from(x(v) * 3))
        })),
        2 => q.map(MapUdf::new("rekey", move |v| {
            Value::pair(Value::from((k(v) + x(v)).rem_euclid(7)), v.field(1).clone())
        })),
        3 => q.filter(PredicateUdf::new("pos", move |v| x(v) > 0)),
        4 => q.filter(PredicateUdf::new("even", move |v| x(v) % 2 == 0)),
        5 => q.flat_map(FlatMapUdf::new("dup", |v| vec![v.clone(), v.clone()])),
        _ => q.flat_map(FlatMapUdf::new("split", move |v| {
            vec![v.clone(), Value::pair(Value::from(k(v) + 1), Value::from(x(v) - 1))]
        })),
    }
}

fn sum_udf() -> ReduceUdf {
    ReduceUdf::new("sum", |a, b| {
        Value::pair(
            a.field(0).clone(),
            Value::from(a.field(1).as_int().unwrap_or(0) + b.field(1).as_int().unwrap_or(0)),
        )
    })
}

fn build_plan(spec: &Spec) -> (rheem_core::plan::RheemPlan, rheem_core::plan::OperatorId) {
    let mut b = PlanBuilder::new();
    let mut q = b.collection(spec.data_a.clone());
    for &code in &spec.chain_a {
        q = apply_op(q, code);
    }
    if let Some(chain_b) = &spec.chain_b {
        let mut r = b.collection(spec.data_b.clone());
        for &code in chain_b {
            r = apply_op(r, code);
        }
        // Join on key, then flatten (l, r) pairs back into (key, sum) shape
        // so terminals compose.
        q = q.join(&r, KeyUdf::field(0), KeyUdf::field(0)).map(MapUdf::new("flatten", |v| {
            let (l, r) = (v.field(0), v.field(1));
            Value::pair(
                l.field(0).clone(),
                Value::from(l.field(1).as_int().unwrap_or(0) + r.field(1).as_int().unwrap_or(0)),
            )
        }));
    }
    q = match spec.terminal {
        1 => q.reduce_by_key(KeyUdf::field(0), sum_udf()),
        2 => q.distinct(),
        3 => q.count(),
        _ => q,
    };
    let sink = q.collect();
    (b.build().unwrap(), sink)
}

/// Execute the spec and return the sink output in canonical (sorted) order.
fn run_spec(spec: &Spec, ctx: &RheemContext) -> Result<Vec<Value>> {
    let (plan, sink) = build_plan(spec);
    let result = ctx.execute(&plan)?;
    let mut out = result.sink(sink)?.to_vec();
    out.sort();
    Ok(out)
}

// ---- cross-platform agreement ------------------------------------------

/// Every random plan computes identical results on all three general-purpose
/// platforms, fused and unfused (6 executions per case).
#[test]
fn random_plans_agree_across_platforms_and_fusion() {
    for case in 0u64..10 {
        let spec = gen_spec(case);
        let reference = run_spec(&spec, &rheem::default_context()).unwrap();
        for forced in PLATFORMS {
            for fusion in [true, false] {
                let mut ctx = rheem::default_context().with_fusion(fusion);
                ctx.forced_platform = Some(forced);
                let out = run_spec(&spec, &ctx).unwrap();
                assert_eq!(
                    out, reference,
                    "case {case} diverged on {forced:?} (fusion={fusion}): {spec:?}"
                );
            }
        }
    }
}

// ---- chaos: seeded random faults ---------------------------------------

/// Under a seeded fault plan every run either survives (identical answer via
/// retry/failover) or dies with a *typed* error — never a wrong answer.
#[test]
fn seeded_chaos_never_produces_wrong_answers() {
    let mut injected_total = 0usize;
    let mut survived = 0usize;
    for chaos_seed in chaos_seeds() {
        for case in 0u64..6 {
            let spec = gen_spec(case);
            let baseline = run_spec(&spec, &rheem::default_context()).unwrap();
            let mut ctx = rheem::default_context();
            ctx.config_mut().chaos_seed = Some(chaos_seed);
            match run_spec(&spec, &ctx) {
                Ok(out) => {
                    assert_eq!(
                        out, baseline,
                        "chaos seed {chaos_seed:#x} case {case} changed the answer: {spec:?}"
                    );
                    survived += 1;
                }
                Err(RheemError::Fault(_) | RheemError::Exhausted(_) | RheemError::Optimizer(_)) => {
                } // typed failure: acceptable
                Err(other) => {
                    panic!("chaos seed {chaos_seed:#x} case {case}: untyped error {other}")
                }
            }
            injected_total += ctx.monitor().fault_records().len();
        }
    }
    // The fixed seeds must actually exercise the machinery (deterministic,
    // so this can never flake).
    assert!(injected_total > 0, "chaos matrix injected nothing");
    assert!(survived > 0, "chaos matrix never survived a run");
}

// ---- scheduler modes ----------------------------------------------------

/// Run the spec under one scheduler mode; returns the canonical (sorted)
/// sink output and the deterministic span-tree structure.
fn run_spec_mode(
    spec: &Spec,
    concurrent: bool,
    chaos_seed: Option<u64>,
) -> Result<(Vec<Value>, String)> {
    let mut ctx = rheem::default_context();
    // Force the mode (`Some`) so the concurrent dispatcher is exercised even
    // on single-CPU hosts, where the adaptive default would walk in-line.
    ctx.config_mut().concurrent = Some(concurrent);
    ctx.config_mut().chaos_seed = chaos_seed;
    let (plan, sink) = build_plan(spec);
    let result = ctx.execute(&plan)?;
    let mut out = result.sink(sink)?.to_vec();
    out.sort();
    let structure = result.trace.as_ref().map(|t| t.render_structure()).unwrap_or_default();
    Ok((out, structure))
}

/// The concurrent DAG scheduler must be invisible in every observable:
/// multi-branch random plans produce byte-identical sink outputs *and*
/// byte-identical span trees (same spans, same order, same lane
/// assignments) as the sequential stage walk.
#[test]
fn scheduler_modes_agree_on_results_and_traces() {
    for case in 0u64..10 {
        let spec = gen_spec(case);
        let (seq_out, seq_trace) = run_spec_mode(&spec, false, None).unwrap();
        let (conc_out, conc_trace) = run_spec_mode(&spec, true, None).unwrap();
        assert_eq!(
            conc_out, seq_out,
            "case {case}: concurrent scheduler changed the answer: {spec:?}"
        );
        assert_eq!(
            conc_trace, seq_trace,
            "case {case}: concurrent scheduler changed the span tree: {spec:?}"
        );
    }
}

/// Mode-agreement must also hold under seeded chaos: retry/failover of one
/// stage while others are in flight may not corrupt a concurrent lane. Both
/// modes must survive identically (same answer, same trace) or die with the
/// same typed error.
#[test]
fn scheduler_modes_agree_under_chaos() {
    for chaos_seed in chaos_seeds() {
        for case in 0u64..6 {
            let spec = gen_spec(case);
            let seq = run_spec_mode(&spec, false, Some(chaos_seed));
            let conc = run_spec_mode(&spec, true, Some(chaos_seed));
            match (seq, conc) {
                (Ok((so, st)), Ok((co, ct))) => {
                    assert_eq!(
                        co, so,
                        "chaos seed {chaos_seed:#x} case {case}: modes disagree on the answer"
                    );
                    assert_eq!(
                        ct, st,
                        "chaos seed {chaos_seed:#x} case {case}: modes disagree on the span tree"
                    );
                }
                (Err(se), Err(ce)) => assert_eq!(
                    se.to_string(),
                    ce.to_string(),
                    "chaos seed {chaos_seed:#x} case {case}: modes fail differently"
                ),
                (seq, conc) => panic!(
                    "chaos seed {chaos_seed:#x} case {case}: one mode survived, the other \
                     failed (seq ok={}, conc ok={})",
                    seq.is_ok(),
                    conc.is_ok()
                ),
            }
        }
    }
}

// ---- batch modes ---------------------------------------------------------

/// Run the spec with columnar batch execution forced on or off; returns the
/// canonical (sorted) sink output and the deterministic span-tree structure.
fn run_spec_batch(
    spec: &Spec,
    batch: bool,
    forced: Option<PlatformId>,
    chaos_seed: Option<u64>,
) -> Result<(Vec<Value>, String)> {
    let mut ctx = rheem::default_context().with_batch(batch);
    ctx.forced_platform = forced;
    ctx.config_mut().chaos_seed = chaos_seed;
    let (plan, sink) = build_plan(spec);
    let result = ctx.execute(&plan)?;
    let mut out = result.sink(sink)?.to_vec();
    out.sort();
    let structure = result.trace.as_ref().map(|t| t.render_structure()).unwrap_or_default();
    Ok((out, structure))
}

/// A plan built entirely from spec'd builtins, so every fused segment
/// compiles to a vector kernel: WordCount over tokenized lines.
fn vectorizable_wordcount() -> (rheem_core::plan::RheemPlan, rheem_core::plan::OperatorId) {
    let lines: Vec<Value> =
        rheem_datagen::generate_text(300, 8, 500, 11).into_iter().map(Value::from).collect();
    let mut b = PlanBuilder::new();
    let sink = b
        .collection(lines)
        .flat_map(FlatMapUdf::split_whitespace("split"))
        .map(MapUdf::pair_with_int("pair", 1))
        .reduce_by_key(KeyUdf::field(0), ReduceUdf::pair_int_sum("sum"))
        .collect();
    (b.build().unwrap(), sink)
}

/// A sargable scan + arithmetic + projection chain over int pairs.
fn vectorizable_scan() -> (rheem_core::plan::RheemPlan, rheem_core::plan::OperatorId) {
    let mut rng = SplitMix64(0xBA7C4);
    let data: Vec<Value> = (0..400)
        .map(|_| {
            Value::pair(
                Value::from(rng.range_usize(64) as i64),
                Value::from(rng.range_usize(200) as i64 - 100),
            )
        })
        .collect();
    let sarg = Sarg { field: 1, op: CmpOp::Gt, literal: Value::from(0i64) };
    let sp = PredicateUdf::from_sarg("pos", sarg);
    let mut b = PlanBuilder::new();
    let sink = b
        .collection(data)
        .filter_sarg(sp.pred, sp.sarg)
        .map(MapUdf::field_add_int("bump", 1, 5))
        .project([1usize, 0])
        .collect();
    (b.build().unwrap(), sink)
}

/// Batched and row execution must be observationally identical on every
/// engine: byte-identical sink outputs and byte-identical span trees, for
/// random (opaque, fallback-exercising) plans.
#[test]
fn batch_modes_agree_on_random_plans_and_traces() {
    for case in 0u64..8 {
        let spec = gen_spec(case);
        for forced in PLATFORMS {
            let (row_out, row_trace) = run_spec_batch(&spec, false, Some(forced), None).unwrap();
            let (bat_out, bat_trace) = run_spec_batch(&spec, true, Some(forced), None).unwrap();
            assert_eq!(
                bat_out, row_out,
                "case {case}: batch mode changed the answer on {forced:?}: {spec:?}"
            );
            assert_eq!(
                bat_trace, row_trace,
                "case {case}: batch mode changed the span tree on {forced:?}: {spec:?}"
            );
        }
    }
}

/// Fully vectorizable plans (WordCount, sargable scan) agree across modes on
/// every engine — this is the path that actually runs the column kernels.
#[test]
fn batch_modes_agree_on_vectorizable_plans() {
    for (label, build) in [
        ("wordcount", vectorizable_wordcount as fn() -> _),
        ("scan", vectorizable_scan as fn() -> _),
    ] {
        for forced in PLATFORMS {
            let run = |batch: bool| -> (Vec<Value>, String) {
                let mut ctx = rheem::default_context().with_batch(batch);
                ctx.forced_platform = Some(forced);
                let (plan, sink) = build();
                let result = ctx.execute(&plan).unwrap();
                let mut out = result.sink(sink).unwrap().to_vec();
                out.sort();
                let structure =
                    result.trace.as_ref().map(|t| t.render_structure()).unwrap_or_default();
                (out, structure)
            };
            let (row_out, row_trace) = run(false);
            let (bat_out, bat_trace) = run(true);
            assert!(!row_out.is_empty(), "{label} on {forced:?} produced nothing");
            assert_eq!(bat_out, row_out, "{label}: batch mode changed the answer on {forced:?}");
            assert_eq!(bat_trace, row_trace, "{label}: batch mode changed the trace on {forced:?}");
        }
    }
}

/// The vectorized path must actually engage on vectorizable plans (guards
/// against silently falling back to the row interpreter everywhere) and must
/// stay fully dormant in row mode.
#[test]
fn vectorizable_plans_report_vectorized_steps() {
    for (label, build) in [
        ("wordcount", vectorizable_wordcount as fn() -> _),
        ("scan", vectorizable_scan as fn() -> _),
    ] {
        let (plan, _) = build();
        let analysis = rheem::default_context().with_batch(true).explain_analyze(&plan).unwrap();
        assert!(
            analysis.rows.iter().any(|r| r.vec_steps > 0),
            "{label}: no operator reported vectorized steps"
        );
        let analysis = rheem::default_context().with_batch(false).explain_analyze(&plan).unwrap();
        assert!(
            analysis.rows.iter().all(|r| r.vec_steps == 0 && r.row_steps == 0),
            "{label}: row mode reported batch statistics"
        );
    }
}

// ---- shuffle/join/sort axis ---------------------------------------------

/// One randomly generated *shuffle-heavy* plan: vectorizable (spec'd builtin)
/// or opaque (closure) narrow chains feeding a wide exchange — Join, SortBy,
/// ReduceBy, or a composition. Vectorizable cases drive the columnar
/// exchange; opaque cases drive its row fallback. Both must be invisible.
#[derive(Clone, Debug)]
struct ShuffleSpec {
    pre_a: Vec<u8>,
    pre_b: Vec<u8>,
    wide: u8, // 0 join, 1 sort, 2 reduce_by, 3 join+reduce_by, 4 reduce_by+sort
    opaque: bool,
    data_a: Vec<Value>,
    data_b: Vec<Value>,
}

fn gen_shuffle_spec(case: u64) -> ShuffleSpec {
    let mut rng = SplitMix64(0x5AFE ^ case.wrapping_mul(0x9E37_79B9));
    let chain = |rng: &mut SplitMix64| -> Vec<u8> {
        let len = 1 + rng.range_usize(3);
        (0..len).map(|_| rng.range_usize(4) as u8).collect()
    };
    ShuffleSpec {
        pre_a: chain(&mut rng),
        pre_b: chain(&mut rng),
        wide: rng.range_usize(5) as u8,
        opaque: rng.chance(0.3),
        data_a: pairs(&mut rng, 80),
        data_b: pairs(&mut rng, 50),
    }
}

/// Narrow ops drawn entirely from spec'd builtins, so the whole pre-exchange
/// segment compiles to a vector kernel and partitions arrive columnar at the
/// wide operator.
fn apply_vec_op(q: rheem_core::plan::DataQuanta, code: u8) -> rheem_core::plan::DataQuanta {
    match code {
        0 => q.map(MapUdf::field_add_int("vbump", 1, 3)),
        1 => q.filter(PredicateUdf::from_sargs(
            "vpos",
            vec![Sarg { field: 1, op: CmpOp::Gt, literal: Value::from(-50i64) }],
        )),
        2 => q.map(MapUdf::field_add_float("vfadd", 1, 0.5)),
        _ => q.map(MapUdf::field_mul_float("vfmul", 1, 2.0)),
    }
}

fn build_shuffle_plan(
    spec: &ShuffleSpec,
) -> (rheem_core::plan::RheemPlan, rheem_core::plan::OperatorId) {
    let apply = |mut q: rheem_core::plan::DataQuanta, chain: &[u8]| {
        for &code in chain {
            q = if spec.opaque { apply_op(q, code) } else { apply_vec_op(q, code) };
        }
        q
    };
    let mut b = PlanBuilder::new();
    let mut q = apply(b.collection(spec.data_a.clone()), &spec.pre_a);
    let join = |q: rheem_core::plan::DataQuanta, b: &mut PlanBuilder| {
        let r = apply(b.collection(spec.data_b.clone()), &spec.pre_b);
        // Flatten the (l, r) join pairs back into (key, combined) shape so
        // downstream wide ops compose.
        q.join(&r, KeyUdf::field(0), KeyUdf::field(0)).map(MapUdf::new("flat", |v| {
            let (l, r) = (v.field(0), v.field(1));
            Value::pair(
                l.field(0).clone(),
                Value::from(l.field(1).as_int().unwrap_or(0) + r.field(1).as_int().unwrap_or(0)),
            )
        }))
    };
    q = match spec.wide {
        0 => join(q, &mut b),
        1 => q.sort_by(KeyUdf::field(0)),
        2 => q.reduce_by_key(KeyUdf::field(0), ReduceUdf::pair_int_sum("vsum")),
        3 => join(q, &mut b).reduce_by_key(KeyUdf::field(0), ReduceUdf::pair_int_sum("vsum")),
        _ => q
            .reduce_by_key(KeyUdf::field(0), ReduceUdf::pair_int_sum("vsum"))
            .sort_by(KeyUdf::field(0)),
    };
    let sink = q.collect();
    (b.build().unwrap(), sink)
}

/// Run a shuffle spec under explicit batch/scheduler modes; returns the
/// *unsorted* sink output (order is part of the contract for SortBy) and the
/// span-tree structure.
fn run_shuffle_spec(
    spec: &ShuffleSpec,
    batch: bool,
    concurrent: bool,
    forced: Option<PlatformId>,
    chaos_seed: Option<u64>,
) -> Result<(Vec<Value>, String)> {
    let mut ctx = rheem::default_context().with_batch(batch);
    ctx.forced_platform = forced;
    ctx.config_mut().concurrent = Some(concurrent);
    ctx.config_mut().chaos_seed = chaos_seed;
    let (plan, sink) = build_shuffle_plan(spec);
    let result = ctx.execute(&plan)?;
    let out = result.sink(sink)?.to_vec();
    let structure = result.trace.as_ref().map(|t| t.render_structure()).unwrap_or_default();
    Ok((out, structure))
}

/// Shuffle-heavy random plans (Join / SortBy / ReduceBy over typed key
/// columns) must be byte-identical — including output *order* — between the
/// columnar exchange and the row exchange, on every engine and under both
/// scheduler modes.
#[test]
fn shuffle_plans_agree_across_batch_and_scheduler_modes() {
    for case in 0u64..10 {
        let spec = gen_shuffle_spec(case);
        for forced in PLATFORMS {
            let (row_out, row_trace) =
                run_shuffle_spec(&spec, false, false, Some(forced), None).unwrap();
            for (batch, concurrent) in [(true, false), (false, true), (true, true)] {
                let (out, trace) =
                    run_shuffle_spec(&spec, batch, concurrent, Some(forced), None).unwrap();
                assert_eq!(
                    out, row_out,
                    "case {case} on {forced:?} (batch={batch}, conc={concurrent}) \
                     changed the answer: {spec:?}"
                );
                assert_eq!(
                    trace, row_trace,
                    "case {case} on {forced:?} (batch={batch}, conc={concurrent}) \
                     changed the span tree: {spec:?}"
                );
            }
        }
    }
}

/// The shuffle axis must also survive the chaos matrix: batched and row
/// exchanges either recover to identical answers and traces or die with the
/// same typed error — across all chaos seeds.
#[test]
fn shuffle_plans_agree_under_chaos() {
    for chaos_seed in chaos_seeds() {
        for case in 0u64..6 {
            let spec = gen_shuffle_spec(case);
            let row = run_shuffle_spec(&spec, false, false, None, Some(chaos_seed));
            let bat = run_shuffle_spec(&spec, true, false, None, Some(chaos_seed));
            match (row, bat) {
                (Ok((ro, rt)), Ok((bo, bt))) => {
                    assert_eq!(
                        bo, ro,
                        "chaos seed {chaos_seed:#x} case {case}: shuffle modes disagree on the \
                         answer: {spec:?}"
                    );
                    assert_eq!(
                        bt, rt,
                        "chaos seed {chaos_seed:#x} case {case}: shuffle modes disagree on the \
                         trace: {spec:?}"
                    );
                }
                (Err(re), Err(be)) => assert_eq!(
                    re.to_string(),
                    be.to_string(),
                    "chaos seed {chaos_seed:#x} case {case}: shuffle modes fail differently"
                ),
                (row, bat) => panic!(
                    "chaos seed {chaos_seed:#x} case {case}: one shuffle mode survived, the \
                     other failed (row ok={}, batch ok={})",
                    row.is_ok(),
                    bat.is_ok()
                ),
            }
        }
    }
}

/// Vectorizable shuffle plans must actually ship batches across the exchange
/// (guards against the columnar path silently falling back to rows), and
/// opaque plans must report the fallback instead.
#[test]
fn shuffle_plans_report_columnar_exchange() {
    // Deterministic fully-vectorizable specs, one per wide-op shape: an
    // all-int chain (float maps would knock the int-sum combine back to
    // rows) feeding each exchange. Every one must ship batches.
    for wide in 0u8..5 {
        let mut spec = gen_shuffle_spec(wide as u64);
        spec.pre_a = vec![0, 1];
        spec.pre_b = vec![1, 0];
        spec.wide = wide;
        spec.opaque = false;
        let (plan, _) = build_shuffle_plan(&spec);
        // Force a distributed engine: only spark/flink run a real exchange.
        let mut ctx = rheem::default_context().with_batch(true);
        ctx.forced_platform = Some(ids::SPARK);
        let analysis = ctx.explain_analyze(&plan).unwrap();
        assert!(
            analysis.rows.iter().any(|r| r.exch_batches > 0),
            "wide op {wide}: columnar exchange never shipped a batch"
        );
        // Row mode must stay fully dormant.
        let mut ctx = rheem::default_context().with_batch(false);
        ctx.forced_platform = Some(ids::SPARK);
        let analysis = ctx.explain_analyze(&plan).unwrap();
        assert!(
            analysis.rows.iter().all(|r| r.exch_batches == 0 && r.exch_row_rows == 0),
            "wide op {wide}: row mode reported exchange batch statistics"
        );
    }
    // Opaque random specs must instead surface the row-exchange fallback
    // (and its reason) in the analyze output.
    let mut fallback_cases = 0usize;
    for case in 0u64..10 {
        let mut spec = gen_shuffle_spec(case);
        spec.opaque = true;
        let (plan, _) = build_shuffle_plan(&spec);
        let mut ctx = rheem::default_context().with_batch(true);
        ctx.forced_platform = Some(ids::SPARK);
        let analysis = ctx.explain_analyze(&plan).unwrap();
        fallback_cases +=
            usize::from(analysis.rows.iter().any(|r| r.exch_row_rows > 0 && r.fallback.is_some()));
    }
    assert!(fallback_cases > 0, "no opaque case reported a row-exchange fallback");
}

/// Mode agreement must survive the chaos matrix: with an active fault plan,
/// batched and row execution either survive with identical answers and span
/// trees or die with the same typed error.
#[test]
fn batch_modes_agree_under_chaos() {
    for chaos_seed in chaos_seeds() {
        for case in 0u64..6 {
            let spec = gen_spec(case);
            let row = run_spec_batch(&spec, false, None, Some(chaos_seed));
            let bat = run_spec_batch(&spec, true, None, Some(chaos_seed));
            match (row, bat) {
                (Ok((ro, rt)), Ok((bo, bt))) => {
                    assert_eq!(
                        bo, ro,
                        "chaos seed {chaos_seed:#x} case {case}: batch modes disagree on the answer"
                    );
                    assert_eq!(
                        bt, rt,
                        "chaos seed {chaos_seed:#x} case {case}: batch modes disagree on the trace"
                    );
                }
                (Err(re), Err(be)) => assert_eq!(
                    re.to_string(),
                    be.to_string(),
                    "chaos seed {chaos_seed:#x} case {case}: batch modes fail differently"
                ),
                (row, bat) => panic!(
                    "chaos seed {chaos_seed:#x} case {case}: one batch mode survived, the other \
                     failed (row ok={}, batch ok={})",
                    row.is_ok(),
                    bat.is_ok()
                ),
            }
        }
    }
}

// ---- targeted faults ---------------------------------------------------

/// Recoverable transient faults on every platform's operators leave results
/// byte-identical to the fault-free baseline.
#[test]
fn recoverable_transient_faults_keep_answers_identical() {
    for case in 0u64..4 {
        let spec = gen_spec(case);
        for forced in PLATFORMS {
            let baseline = {
                let mut ctx = rheem::default_context();
                ctx.forced_platform = Some(forced);
                run_spec(&spec, &ctx).unwrap()
            };
            let mut ctx = rheem::default_context();
            ctx.forced_platform = Some(forced);
            // Every operator site fails once; a generous budget keeps all
            // recovery in place (no failover possible under forcing).
            ctx.config_mut().retry_budget = 16;
            ctx.config_mut().fault_plan = Some(Arc::new(
                FaultPlan::none()
                    .with_rule(FaultRule::new(FaultKind::Transient).on_platform(forced).failing(1)),
            ));
            let out = run_spec(&spec, &ctx).unwrap();
            assert_eq!(out, baseline, "case {case} on {forced:?} changed under faults");
            assert!(
                ctx.monitor().retries() >= 1,
                "case {case} on {forced:?}: no fault was injected"
            );
        }
    }
}

/// Recoverable channel-transfer faults (collect/parallelize conversions)
/// likewise never change answers.
#[test]
fn recoverable_transfer_faults_keep_answers_identical() {
    for case in 0u64..4 {
        let spec = gen_spec(case);
        for forced in [ids::SPARK, ids::FLINK] {
            let baseline = {
                let mut ctx = rheem::default_context();
                ctx.forced_platform = Some(forced);
                run_spec(&spec, &ctx).unwrap()
            };
            let mut ctx = rheem::default_context();
            ctx.forced_platform = Some(forced);
            ctx.config_mut().retry_budget = 16;
            ctx.config_mut().fault_plan = Some(Arc::new(
                FaultPlan::none()
                    .with_rule(FaultRule::new(FaultKind::Transfer).on_platform(forced).failing(1)),
            ));
            let out = run_spec(&spec, &ctx).unwrap();
            assert_eq!(out, baseline, "case {case} on {forced:?} changed under transfer faults");
        }
    }
}

/// A persistent fault on a *forced* platform cannot fail over: it must
/// surface as a typed budget-exhaustion error, never as a wrong answer.
#[test]
fn persistent_fault_on_forced_platform_surfaces_typed() {
    let spec = gen_spec(1);
    for forced in PLATFORMS {
        let mut ctx = rheem::default_context();
        ctx.forced_platform = Some(forced);
        ctx.config_mut().fault_plan = Some(Arc::new(FaultPlan::none().with_rule(
            FaultRule::new(FaultKind::Transient).on_platform(forced).failing(PERSISTENT),
        )));
        match run_spec(&spec, &ctx) {
            Ok(_) => panic!("persistent fault on {forced:?} must not succeed"),
            Err(RheemError::Exhausted(x)) => assert_eq!(x.platform, forced),
            Err(other) => panic!("expected typed exhaustion on {forced:?}, got {other}"),
        }
    }
}

/// A persistent fault on the preferred platform *with free platform choice*
/// completes via failover and still matches the baseline byte-for-byte.
#[test]
fn persistent_fault_fails_over_and_matches_baseline() {
    for case in 0u64..4 {
        let spec = gen_spec(case);
        let baseline = run_spec(&spec, &rheem::default_context()).unwrap();
        // Whichever platform the optimizer prefers first, kill it for good.
        let preferred = {
            let ctx = rheem::default_context();
            let (plan, _) = build_plan(&spec);
            *ctx.optimize(&plan)
                .unwrap()
                .platforms
                .iter()
                .find(|p| PLATFORMS.contains(p))
                .expect("plan uses a general-purpose platform")
        };
        let mut ctx = rheem::default_context();
        ctx.config_mut().fault_plan = Some(Arc::new(FaultPlan::none().with_rule(
            FaultRule::new(FaultKind::Transient).on_platform(preferred).failing(PERSISTENT),
        )));
        let out = run_spec(&spec, &ctx).unwrap();
        assert_eq!(out, baseline, "case {case}: failover from {preferred:?} changed the answer");
        assert!(ctx.monitor().failovers() >= 1, "case {case}: expected a failover");
    }
}

// ---- service mode ---------------------------------------------------------

/// Run a seeded batch of specs through a [`JobService`], round-robined over
/// three tenants; returns per-job (sorted output, span-tree structure).
/// `concurrent_service` picks the submission style: the sequential reference
/// runs one runner and waits for each job before submitting the next, the
/// concurrent run submits everything up front against four runners. The
/// cross-job cache stays off so answers cannot depend on inter-job reuse.
fn run_specs_service(
    specs: &[Spec],
    concurrent_service: bool,
    sched_concurrent: bool,
    batch: bool,
) -> Vec<(Vec<Value>, String)> {
    let mut ctx = rheem::default_context().with_batch(batch);
    ctx.set_cache(None);
    ctx.config_mut().concurrent = Some(sched_concurrent);
    let tenants: Vec<TenantSpec> = (0..3)
        .map(|t| TenantSpec::new(&format!("t{t}")).with_max_in_flight(specs.len().max(1)))
        .collect();
    let config = ServiceConfig {
        runners: if concurrent_service { 4 } else { 1 },
        ..ServiceConfig::default()
    };
    let service = JobService::new(ctx, config, tenants).unwrap();

    let collect = |handle: JobHandle, sink: rheem_core::plan::OperatorId| {
        let result = handle.wait().unwrap();
        let mut out = result.sink(sink).unwrap().to_vec();
        out.sort();
        let structure = result.trace.as_ref().map(|t| t.render_structure()).unwrap_or_default();
        (out, structure)
    };

    if concurrent_service {
        let handles: Vec<_> = specs
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let (plan, sink) = build_plan(spec);
                (service.submit(&format!("t{}", i % 3), plan).unwrap(), sink)
            })
            .collect();
        handles.into_iter().map(|(h, sink)| collect(h, sink)).collect()
    } else {
        specs
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let (plan, sink) = build_plan(spec);
                let h = service.submit(&format!("t{}", i % 3), plan).unwrap();
                collect(h, sink)
            })
            .collect()
    }
}

/// The job service must be invisible per job: a seeded batch of random
/// plans submitted concurrently (4 runners, fair-share gate active) returns
/// exactly the outputs and span-tree structures of strictly sequential
/// submission — under both scheduler modes and with batch execution on and
/// off.
#[test]
fn service_concurrent_submission_matches_sequential() {
    let specs: Vec<Spec> = (0..6).map(|case| gen_spec(0x5E51 ^ (case * 31))).collect();
    for sched_concurrent in [false, true] {
        for batch in [false, true] {
            let seq = run_specs_service(&specs, false, sched_concurrent, batch);
            let conc = run_specs_service(&specs, true, sched_concurrent, batch);
            for (i, (s, c)) in seq.iter().zip(&conc).enumerate() {
                assert!(!s.0.is_empty(), "case {i}: sequential reference produced nothing");
                assert_eq!(
                    c.0, s.0,
                    "case {i} (sched={sched_concurrent}, batch={batch}): \
                     concurrent submission changed the answer"
                );
                assert_eq!(
                    c.1, s.1,
                    "case {i} (sched={sched_concurrent}, batch={batch}): \
                     concurrent submission changed the span tree"
                );
            }
        }
    }
}
