//! Golden tests for the tracing subsystem: EXPLAIN / EXPLAIN ANALYZE
//! snapshots on WordCount and SGD, learner-sample parity between the trace
//! and the monitor, and byte-identical span-tree structure for seeded chaos
//! runs (the determinism guarantee of `rheem_core::trace`).

use std::sync::Arc;

use rheem::prelude::*;
use rheem_core::fault::{FaultKind, FaultPlan, FaultRule, PERSISTENT};
use rheem_core::learner::{samples_from_monitor, samples_from_trace};
use rheem_core::plan::{OperatorId, PlanBuilder, RheemPlan};
use rheem_core::trace::SpanKind;
use rheem_core::udf::FlatMapUdf;

fn corpus() -> Vec<Value> {
    rheem_datagen::generate_text(60, 10, 5_000, 7).into_iter().map(Value::from).collect()
}

fn wordcount_chain(q: rheem_core::plan::DataQuanta) -> rheem_core::plan::DataQuanta {
    q.flat_map(FlatMapUdf::new("split", |v| {
        v.as_str().unwrap_or("").split_whitespace().map(Value::from).collect()
    }))
    .map(MapUdf::new("pair", |w| Value::pair(w.clone(), Value::from(1))))
    .reduce_by_key(
        KeyUdf::field(0),
        ReduceUdf::new("sum", |a, b| {
            Value::pair(
                a.field(0).clone(),
                Value::from(a.field(1).as_int().unwrap_or(0) + b.field(1).as_int().unwrap_or(0)),
            )
        }),
    )
}

fn wordcount_plan() -> (RheemPlan, OperatorId) {
    let mut b = PlanBuilder::new();
    let sink = wordcount_chain(b.collection(corpus())).collect();
    (b.build().unwrap(), sink)
}

/// WordCount pinned across two platforms, so conversion operators and more
/// than one execution platform show up in the analysis. The shuffle-bearing
/// ReduceBy lands on Spark; the narrow preprocessing on Flink.
fn hybrid_wordcount_plan() -> (RheemPlan, OperatorId) {
    let mut b = PlanBuilder::new();
    let sink = wordcount_chain(
        b.collection(corpus())
            .map(MapUdf::new("lower", |v| Value::from(v.as_str().unwrap_or("").to_lowercase())))
            .with_target_platform(ids::FLINK),
    )
    .with_target_platform(ids::SPARK)
    .collect();
    (b.build().unwrap(), sink)
}

/// Listing 1's SGD shape over integers (exact arithmetic, 3 iterations).
fn sgd_plan() -> (RheemPlan, OperatorId) {
    let mut b = PlanBuilder::new();
    let points: Vec<Value> = (0..24i64)
        .map(|i| {
            let x = i % 5 - 2;
            Value::pair(Value::from(x), Value::from(3 * x + 1))
        })
        .collect();
    let points = b.collection(points);
    let winit = b.collection(vec![Value::from(0i64)]);
    let sink = winit
        .repeat(3, |w| {
            let grad = points
                .map(MapUdf::with_ctx("gradient", |p, ctx| {
                    let wv =
                        ctx.get_or_empty("weights").first().and_then(Value::as_int).unwrap_or(0);
                    let x = p.field(0).as_int().unwrap_or(0);
                    let y = p.field(1).as_int().unwrap_or(0);
                    Value::from(x * (x * wv - y))
                }))
                .broadcast("weights", w)
                .reduce(ReduceUdf::new("gsum", |a, b| {
                    Value::from(a.as_int().unwrap_or(0) + b.as_int().unwrap_or(0))
                }));
            w.map(MapUdf::with_ctx("update", |w, ctx| {
                let g =
                    ctx.get_or_empty("gradient_sum").first().and_then(Value::as_int).unwrap_or(0);
                Value::from(w.as_int().unwrap_or(0) - g / 64)
            }))
            .broadcast("gradient_sum", &grad)
        })
        .collect();
    (b.build().unwrap(), sink)
}

// ---- EXPLAIN golden -----------------------------------------------------

#[test]
fn explain_wordcount_golden() {
    let (plan, _) = wordcount_plan();
    let ctx = rheem::default_context();
    let explain = ctx.explain(&plan).unwrap();
    let expected = "\
estimated cost: 1.7 ms (virtual)
platforms: [java.streams]
stage 0 [rheem.driver]:
  DriverCollectionSource#0 inputs=[]
stage 1 [java.streams]:
  JavaChain2∘ReduceBy#1 inputs=[0]
stage 2 [rheem.driver]:
  DriverCollectionSink#2 inputs=[1]
";
    assert_eq!(explain, expected);
}

// ---- EXPLAIN ANALYZE ----------------------------------------------------

/// The acceptance bar: every executed operator, on every platform in the
/// plan, reports its estimated cardinality interval, measured tuples, and
/// virtual time. (tau is raised so the ReduceBy miss does not trigger a
/// replan — rewritten plans re-number operators and lose the est join.)
#[test]
fn explain_analyze_reports_estimates_and_measurements_for_every_operator() {
    for (name, (plan, _)) in [("wordcount", wordcount_plan()), ("hybrid", hybrid_wordcount_plan())]
    {
        let mut ctx = rheem::default_context();
        ctx.config_mut().mismatch_tau = 1000.0;
        let analysis = ctx.explain_analyze(&plan).unwrap();

        // Every logical operator of the submitted plan appears as a row
        // with an estimate interval and a measured profile.
        for node in plan.operators() {
            let row = analysis
                .rows
                .iter()
                .find(|r| r.op == Some(node.id))
                .unwrap_or_else(|| panic!("{name}: no row for {}", node.label()));
            let est = row.est.unwrap_or_else(|| panic!("{name}: no estimate for {}", node.label()));
            assert!(est.lo <= est.hi, "{name}: degenerate interval on {}", node.label());
            assert!(est.conf > 0.0, "{name}: zero-confidence estimate on {}", node.label());
            assert!(!row.platform.is_empty(), "{name}: no platform on {}", node.label());
            assert!(row.virtual_ms >= 0.0 && row.virtual_ms.is_finite());
            assert!(row.runs >= 1, "{name}: unexecuted row for {}", node.label());
        }
        // Sources aside, measured cardinalities flow through the rows.
        assert!(analysis.rows.iter().any(|r| r.measured_tuples > 0), "{name}: no tuples measured");
        // The Display rendering carries the whole table.
        let text = analysis.to_string();
        assert!(text.contains("EXPLAIN ANALYZE"), "{text}");
        assert!(text.contains("est.card"), "{text}");
    }
}

#[test]
fn explain_analyze_hybrid_covers_both_platforms_and_conversions() {
    let (plan, _) = hybrid_wordcount_plan();
    let mut ctx = rheem::default_context();
    ctx.config_mut().mismatch_tau = 1000.0;
    let analysis = ctx.explain_analyze(&plan).unwrap();
    let platforms: std::collections::BTreeSet<&str> =
        analysis.rows.iter().map(|r| r.platform.as_str()).collect();
    assert!(platforms.contains("spark"), "{platforms:?}");
    assert!(platforms.contains("flink"), "{platforms:?}");
    // Pinning across platforms forces channel conversions; they appear as
    // rows without a logical operator or estimate.
    assert!(
        analysis.rows.iter().any(|r| r.op.is_none() && r.est.is_none()),
        "no conversion rows in {:#?}",
        analysis.rows
    );
    // Platform-level events (shuffles, vertex submissions) landed in the trace.
    assert!(
        analysis.trace.spans.iter().any(|s| s.kind == SpanKind::Event && s.name == "spark.shuffle"),
        "no spark.shuffle event"
    );
    assert!(
        analysis.trace.spans.iter().any(|s| s.kind == SpanKind::Event && s.name == "flink.vertex"),
        "no flink.vertex event"
    );
}

/// Default tau: the word-frequency estimate is off by >2x, so EXPLAIN
/// ANALYZE must flag the miss and the trace must show the progressive
/// replan it triggered.
#[test]
fn explain_analyze_flags_miss_and_replan() {
    let (plan, _) = wordcount_plan();
    let ctx = rheem::default_context();
    let analysis = ctx.explain_analyze(&plan).unwrap();
    assert_eq!(analysis.metrics.replans, 1);
    let miss = analysis.misses().next().expect("no miss flagged");
    assert!(miss.label.starts_with("ReduceBy"), "{}", miss.label);
    assert!(miss.chain_tail);
    let structure = analysis.trace.render_structure();
    assert!(structure.contains("[plan-rewrite] plan-rewrite cause=cardinality-mismatch"));
    // Fused chains report their membership.
    assert!(analysis.rows.iter().any(|r| r.fused > 1), "no fused rows");
    assert!(analysis.to_string().contains("MISS"));
}

#[test]
fn explain_analyze_wordcount_golden_structure() {
    let (plan, _) = wordcount_plan();
    let mut ctx = rheem::default_context();
    ctx.config_mut().mismatch_tau = 1000.0;
    let analysis = ctx.explain_analyze(&plan).unwrap();
    let expected = "\
[job] job replans=0 failovers=0
  [submit] submit
  [phase] phase 1
    [optimize] optimize operators=5
      [enumeration] enumerate candidates=17 partials_created=70 partials_pruned=32
      [costing] cost platforms=[java.streams]
    [stage] stage 0 @rheem.driver stage=0 iteration=0 phase=1 run=0
      [operator] DriverCollectionSource @rheem.driver node=0 tuples_in=0 tuples_out=60
    [stage] stage 1 @java.streams stage=1 iteration=0 phase=1 run=1 lane=0
      [operator] JavaChain2∘ReduceBy @java.streams node=1 tuples_in=60 tuples_out=306 fused=3
        [event] java.fused @java.streams steps=2 terminal_agg=1
    [stage] stage 2 @rheem.driver stage=2 iteration=0 phase=1 run=2
      [operator] DriverCollectionSink @rheem.driver node=2 tuples_in=306 tuples_out=306
";
    assert_eq!(analysis.trace.render_structure(), expected);
}

#[test]
fn sgd_trace_shows_loop_iterations_and_aggregates_rows() {
    let (plan, _) = sgd_plan();
    let mut ctx = rheem::default_context();
    ctx.config_mut().mismatch_tau = 1000.0;
    let analysis = ctx.explain_analyze(&plan).unwrap();
    let t = &analysis.trace;
    assert_eq!(t.spans.iter().filter(|s| s.kind == SpanKind::Loop).count(), 1);
    assert_eq!(t.spans.iter().filter(|s| s.kind == SpanKind::Iteration).count(), 3);
    // The loop-body gradient map executed once per iteration, and EXPLAIN
    // ANALYZE folds those runs into one row.
    let grad =
        analysis.rows.iter().find(|r| r.label.contains("gradient")).expect("no gradient row");
    assert_eq!(grad.runs, 3, "{grad:#?}");
    assert!(grad.est.is_some());
    // Structure is byte-identical across executions (determinism guarantee).
    let mut ctx2 = rheem::default_context();
    ctx2.config_mut().mismatch_tau = 1000.0;
    let again = ctx2.explain_analyze(&plan).unwrap();
    assert_eq!(t.render_structure(), again.trace.render_structure());
}

// ---- learner parity -----------------------------------------------------

#[test]
fn trace_samples_match_monitor_samples() {
    for (plan, _) in [wordcount_plan(), sgd_plan()] {
        let ctx = rheem::default_context();
        let result = ctx.execute(&plan).unwrap();
        let trace = result.trace.expect("tracing on by default");
        assert_eq!(samples_from_trace(&trace), samples_from_monitor(ctx.monitor()));
    }
}

// ---- chaos determinism --------------------------------------------------

/// The acceptance bar: a seeded chaos run produces a byte-identical span
/// tree across two executions (durations are wall-derived and excluded;
/// structure, ordering, and fault events are covered).
#[test]
fn seeded_chaos_span_tree_is_byte_identical() {
    for seed in [0xC0FFEE_u64, 42, 7] {
        for (name, (plan, _)) in [("wordcount", wordcount_plan()), ("sgd", sgd_plan())] {
            let run = || {
                let mut ctx = rheem::default_context();
                ctx.config_mut().chaos_seed = Some(seed);
                match ctx.execute(&plan) {
                    Ok(r) => r.trace.expect("tracing on").render_structure(),
                    Err(e) => format!("error: {e}"),
                }
            };
            let (a, b) = (run(), run());
            assert_eq!(a, b, "seed {seed:#x} on {name}: span tree not reproducible");
        }
    }
}

/// A persistent transient fault burns the retry budget and fails over —
/// retry and failover spans must land in the trace, the superseded work
/// must be marked, and the structure must still be reproducible.
#[test]
fn retry_and_failover_spans_recorded_and_deterministic() {
    let (plan, sink) = wordcount_plan();
    let reference = {
        let ctx = rheem::default_context();
        let r = ctx.execute(&plan).unwrap();
        let mut out = r.sink(sink).unwrap().to_vec();
        out.sort();
        out
    };
    let run = || {
        let mut ctx = rheem::default_context();
        ctx.config_mut().retry_budget = 2;
        ctx.config_mut().fault_plan = Some(Arc::new(FaultPlan::none().with_rule(
            FaultRule::new(FaultKind::Transient).on_platform(ids::JAVA_STREAMS).failing(PERSISTENT),
        )));
        let r = ctx.execute(&plan).unwrap();
        let mut out = r.sink(sink).unwrap().to_vec();
        out.sort();
        assert_eq!(out, reference, "failover changed the answer");
        let monitor_superseded = ctx.monitor().stage_runs().iter().filter(|r| r.superseded).count();
        (r.trace.expect("tracing on"), monitor_superseded)
    };
    let (t, monitor_superseded) = run();
    let retries: Vec<_> = t.spans.iter().filter(|s| s.kind == SpanKind::Retry).collect();
    assert!(retries.len() >= 2, "budget of 2 must leave >= 2 retry spans");
    assert!(
        retries.iter().any(|s| s.attr("recovered").map(|a| a.to_string()) == Some("0".into())),
        "the exhausting attempt must be marked unrecovered"
    );
    assert!(
        t.spans.iter().any(|s| s.kind == SpanKind::Failover),
        "no failover span in {}",
        t.render_structure()
    );
    // Supersede bookkeeping mirrors the monitor exactly: the same number of
    // stage runs are marked re-executed in both views.
    assert_eq!(
        t.runs.iter().filter(|r| r.superseded).count(),
        monitor_superseded,
        "trace/monitor supersede drift"
    );
    assert!(t.profiles_effective().all(|p| !p.superseded));
    // And the whole structure is reproducible.
    assert_eq!(t.render_structure(), run().0.render_structure());
}
