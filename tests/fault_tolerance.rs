//! Fault injection, concurrency and inter-platform parallelism tests —
//! the §7.1 "basic fault-tolerance mechanism at the cross-platform level"
//! and the executor's parallel-stage virtual-time composition.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use rheem::prelude::*;
use rheem_core::channel::{kinds, ChannelData, ChannelKind};
use rheem_core::cost::{CostModel, Load};
use rheem_core::exec::{ExecCtx, ExecutionOperator};
use rheem_core::mapping::{Candidate, FnMapping};
use rheem_core::plan::{LogicalOp, OpKind, PlanBuilder};
use rheem_core::udf::BroadcastCtx;

/// A map operator whose first `fail_times` executions die with a transient
/// error — the injection point for the fault-tolerance test.
struct FlakyMap {
    fails_left: AtomicU32,
}

impl ExecutionOperator for FlakyMap {
    fn name(&self) -> &str {
        "FlakyMap"
    }
    fn platform(&self) -> PlatformId {
        ids::JAVA_STREAMS
    }
    fn accepted_inputs(&self, _slot: usize) -> Vec<ChannelKind> {
        vec![kinds::COLLECTION]
    }
    fn output_kind(&self) -> ChannelKind {
        kinds::COLLECTION
    }
    fn load(&self, _in: &[f64], _b: f64, _m: &CostModel) -> Load {
        // dirt cheap so the optimizer picks it over the real JavaMap
        Load::default()
    }
    fn execute(
        &self,
        _ctx: &mut ExecCtx<'_>,
        inputs: &[ChannelData],
        _bc: &BroadcastCtx,
    ) -> rheem_core::error::Result<ChannelData> {
        if self
            .fails_left
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
            .is_ok()
        {
            return Err(rheem_core::error::RheemError::Execution(
                "injected transient failure (simulated executor loss)".into(),
            ));
        }
        let data = inputs[0].flatten()?;
        let out: Vec<Value> =
            data.iter().map(|v| Value::from(v.as_int().unwrap_or(0) * 2)).collect();
        Ok(ChannelData::Collection(Arc::new(out)))
    }
}

fn flaky_ctx(fail_times: u32) -> RheemContext {
    let mut ctx = rheem::default_context();
    let flaky = Arc::new(FlakyMap { fails_left: AtomicU32::new(fail_times) });
    ctx.registry_mut().add_mapping(Arc::new(FnMapping(
        move |_p: &rheem_core::plan::RheemPlan, n: &rheem_core::plan::OperatorNode| {
            if n.op.kind() == OpKind::Map {
                if let LogicalOp::Map(u) = &n.op {
                    if &*u.name == "double" {
                        return vec![Candidate::single(
                            n.id,
                            Arc::clone(&flaky) as Arc<dyn ExecutionOperator>,
                        )];
                    }
                }
            }
            vec![]
        },
    )));
    ctx
}

fn double_plan() -> (rheem_core::plan::RheemPlan, rheem_core::plan::OperatorId) {
    let mut b = PlanBuilder::new();
    let sink = b
        .collection((0..100i64).map(Value::from).collect::<Vec<_>>())
        .map(MapUdf::new("double", |v| Value::from(v.as_int().unwrap() * 2)))
        .collect();
    (b.build().unwrap(), sink)
}

#[test]
fn transient_failure_is_retried_and_recovers() {
    let mut ctx = flaky_ctx(1);
    ctx.config_mut().retry_budget = 2;
    // Pin to the flaky operator by making the plan choose it (it is free).
    let (plan, sink) = double_plan();
    let result = ctx.execute(&plan).unwrap();
    assert_eq!(result.sink(sink).unwrap()[0].as_int(), Some(0));
    assert_eq!(result.sink(sink).unwrap()[99].as_int(), Some(198));
    assert!(ctx.monitor().retries() >= 1);
    assert!(result.metrics.retries >= 1);
    assert_eq!(result.metrics.failovers, 0, "survived in place, no failover");
}

#[test]
fn budget_exhaustion_fails_over_to_surviving_platform() {
    // FlakyMap (java.streams) never recovers: the stage exhausts its retry
    // budget, java.streams is blacklisted, and the remainder re-plans onto a
    // surviving platform — the §7.1 "possibly on a different platform".
    let mut ctx = flaky_ctx(u32::MAX);
    ctx.config_mut().retry_budget = 2;
    let (plan, sink) = double_plan();
    let result = ctx.execute(&plan).unwrap();
    assert_eq!(result.sink(sink).unwrap()[0].as_int(), Some(0));
    assert_eq!(result.sink(sink).unwrap()[99].as_int(), Some(198));
    assert!(result.metrics.failovers >= 1, "must report the failover");
    assert!(result.metrics.retries >= 2, "budget was consumed before failover");
    assert!(
        result.metrics.platforms.iter().any(|p| *p == ids::SPARK || *p == ids::FLINK),
        "remainder must run on a surviving platform, got {:?}",
        result.metrics.platforms
    );
    let faults = ctx.monitor().fault_records();
    assert!(faults.iter().any(|f| !f.recovered), "exhaustion must be recorded");
}

#[test]
fn persistent_failure_surfaces_with_failover_disabled() {
    let mut ctx = flaky_ctx(u32::MAX);
    ctx.config_mut().retry_budget = 2;
    ctx.config_mut().failover = false;
    let (plan, _) = double_plan();
    let err = match ctx.execute(&plan) {
        Err(e) => e.to_string(),
        Ok(_) => panic!("expected failure"),
    };
    assert!(err.contains("retry budget exhausted"), "{err}");
    assert!(err.contains("injected transient failure"), "{err}");
}

#[test]
fn concurrent_jobs_share_one_context() {
    let ctx = Arc::new(rheem::default_context());
    let mut handles = Vec::new();
    for t in 0..4i64 {
        let ctx = Arc::clone(&ctx);
        handles.push(std::thread::spawn(move || {
            let mut b = PlanBuilder::new();
            let sink = b
                .collection((0..2_000).map(|i| Value::from(i + t)).collect::<Vec<_>>())
                .filter(PredicateUdf::new("even", |v| v.as_int().unwrap() % 2 == 0))
                .count()
                .collect();
            let plan = b.build().unwrap();
            let result = ctx.execute(&plan).unwrap();
            result.sink(sink).unwrap()[0].as_int().unwrap()
        }));
    }
    for h in handles {
        assert_eq!(h.join().unwrap(), 1_000);
    }
}

#[test]
fn independent_branches_overlap_in_virtual_time() {
    // Two branches pinned to different platforms: the job's virtual time
    // must be well below the sum of sequential execution (inter-platform
    // parallelism, challenge (iv) of §1).
    let mut b = PlanBuilder::new();
    let data: Vec<Value> =
        (0..400_000i64).map(|i| Value::pair(Value::from(i % 1000), Value::from(i))).collect();
    let left = b
        .collection(data.clone())
        .map(MapUdf::new("l", |v| v.clone()))
        .with_target_platform(ids::SPARK)
        .distinct()
        .with_target_platform(ids::SPARK)
        .count();
    let right = b
        .collection(data)
        .map(MapUdf::new("r", |v| v.clone()))
        .with_target_platform(ids::FLINK)
        .distinct()
        .with_target_platform(ids::FLINK)
        .count();
    left.union(&right).collect();
    let plan = b.build().unwrap();
    let ctx = rheem::default_context();
    let result = ctx.execute(&plan).unwrap();
    let total: f64 = ctx.monitor().stage_runs().iter().map(|r| r.virtual_ms).sum();
    assert!(
        result.metrics.virtual_ms < total * 0.85,
        "no overlap: job {} vs serial {}",
        result.metrics.virtual_ms,
        total
    );
}
