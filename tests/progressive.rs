//! Integration tests for the progressive optimizer (Algorithm 1, §4.4) and
//! the monitor/cost-learner loop (§4.3/§4.5).

use rheem::prelude::*;
use rheem_core::plan::PlanBuilder;
use rheem_core::udf::Sarg;

/// A filter whose user-supplied selectivity hint is wrong by 4 orders of
/// magnitude — the Fig. 10(b) scenario.
fn misestimated_plan(n: i64) -> (rheem_core::plan::RheemPlan, rheem_core::plan::OperatorId) {
    let mut b = PlanBuilder::new();
    let left = b.collection(
        (0..n).map(|i| Value::tuple(vec![Value::from(i), Value::from(i % 25)])).collect::<Vec<_>>(),
    );
    let right = b.collection(
        (0..n * 2)
            .map(|i| Value::tuple(vec![Value::from(i), Value::from(i % 25)]))
            .collect::<Vec<_>>(),
    );
    let filtered = left
        .filter_sarg(
            PredicateUdf::new("ge2", |v| v.field(0).as_int().unwrap_or(0) >= 2),
            Sarg { field: 0, op: CmpOp::Ge, literal: Value::from(2) },
        )
        .with_selectivity(0.0001); // truth ≈ 1.0
    let sink = filtered.join(&right, KeyUdf::field(1), KeyUdf::field(1)).count().collect();
    (b.build().unwrap(), sink)
}

#[test]
fn progressive_reoptimizes_on_bad_estimates() {
    let n = 5_000i64;
    let (plan, sink) = misestimated_plan(n);
    let mut ctx = rheem::default_context();
    ctx.config_mut().progressive = true;
    let with_po = ctx.execute(&plan).unwrap();
    assert!(with_po.metrics.replans >= 1, "the wrong hint must trigger a re-optimization");
    // correctness is preserved across the re-plan: compute the expected
    // join cardinality directly.
    let mut left_keys = [0i64; 25];
    for i in 2..n {
        left_keys[(i % 25) as usize] += 1;
    }
    let mut right_keys = [0i64; 25];
    for i in 0..n * 2 {
        right_keys[(i % 25) as usize] += 1;
    }
    let expected: i64 = (0..25).map(|k| left_keys[k] * right_keys[k]).sum();
    let count = with_po.sink(sink).unwrap()[0].as_int().unwrap();
    assert_eq!(count, expected);
}

#[test]
fn progressive_results_match_non_progressive() {
    let (plan, sink) = misestimated_plan(2_000);
    let mut on = rheem::default_context();
    on.config_mut().progressive = true;
    let mut off = rheem::default_context();
    off.config_mut().progressive = false;
    let a = on.execute(&plan).unwrap();
    let b = off.execute(&plan).unwrap();
    assert_eq!(a.sink(sink).unwrap()[0].as_int(), b.sink(sink).unwrap()[0].as_int());
}

#[test]
fn accurate_hints_cause_no_replan() {
    let mut b = PlanBuilder::new();
    let sink = b
        .collection((0..5_000i64).map(Value::from).collect::<Vec<_>>())
        .filter(PredicateUdf::new("half", |v| v.as_int().unwrap() % 2 == 0))
        .with_selectivity(0.5)
        .count()
        .collect();
    let plan = b.build().unwrap();
    let ctx = rheem::default_context();
    let r = ctx.execute(&plan).unwrap();
    assert_eq!(r.metrics.replans, 0);
    assert_eq!(r.sink(sink).unwrap()[0].as_int(), Some(2_500));
}

#[test]
fn exploration_mode_taps_operators_with_bounded_overhead() {
    let mut b = PlanBuilder::new();
    b.collection((0..20_000i64).map(Value::from).collect::<Vec<_>>())
        .map(MapUdf::new("x2", |v| Value::from(v.as_int().unwrap() * 2)))
        .filter(PredicateUdf::new("pos", |v| v.as_int().unwrap() > 10))
        .count()
        .collect();
    let plan = b.build().unwrap();

    let mut plain = rheem::default_context();
    plain.config_mut().exploration = false;
    let base = plain.execute(&plan).unwrap();
    assert!(base.exploration.taps.is_empty());

    let mut exploring = rheem::default_context();
    exploring.config_mut().exploration = true;
    let tapped = exploring.execute(&plan).unwrap();
    assert!(!tapped.exploration.taps.is_empty());
    // sniffer captures bounded samples
    for (_, sample) in &tapped.exploration.taps {
        assert!(sample.len() <= exploring.config().sniff_limit);
    }
    // overhead exists but stays within ~2x for this shape
    assert!(tapped.metrics.virtual_ms >= base.metrics.virtual_ms * 0.99);
    // at this tiny scale the fixed sniffer costs dominate (and virtual
    // times are wall-derived, so the ratio shifts with machine speed); the
    // fig10c harness measures the paper-scale ~36% overhead
    assert!(
        tapped.metrics.virtual_ms <= base.metrics.virtual_ms * 15.0,
        "{} vs {}",
        tapped.metrics.virtual_ms,
        base.metrics.virtual_ms
    );
}

#[test]
fn monitor_feeds_the_cost_learner() {
    use rheem_core::learner::{samples_from_monitor, CostLearner};
    let ctx = rheem::default_context();
    let mut b = PlanBuilder::new();
    b.collection((0..10_000i64).map(Value::from).collect::<Vec<_>>())
        .map(MapUdf::new("m", |v| v.clone()))
        .count()
        .collect();
    let plan = b.build().unwrap();
    for _ in 0..3 {
        ctx.execute(&plan).unwrap();
    }
    let samples = samples_from_monitor(ctx.monitor());
    assert!(samples.len() >= 3);
    let learner = CostLearner { generations: 40, ..Default::default() };
    let model = learner.fit(&samples, ctx.profiles());
    let fitted_loss = learner.evaluate(&model, &samples, ctx.profiles());
    let default_loss =
        learner.evaluate(&rheem_core::cost::CostModel::new(), &samples, ctx.profiles());
    assert!(fitted_loss <= default_loss, "{fitted_loss} vs {default_loss}");
}
