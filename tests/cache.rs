//! Cross-job result-cache suite (PR 5).
//!
//! Covers the cache's observable contract end to end: a warm rerun replays
//! published intermediates through `CachedSource` (visible in the trace and
//! cheaper in virtual time), source-file rewrites invalidate by mtime/len,
//! UDF identity participates in the fingerprint, eviction respects the byte
//! budget, and — the load-bearing invariant — results are *byte-identical*
//! with the cache on and off, cold and warm, across the fixed chaos-seed
//! matrix. Also regression-tests deterministic plan selection on exact cost
//! ties (100 in-process optimizations must agree) and NaN cost robustness.

use std::sync::Arc;
use std::time::Duration;

use rheem::prelude::*;
use rheem_core::cache::ResultCache;
use rheem_core::channel::{kinds, ChannelData, ChannelKind};
use rheem_core::cost::{CostModel, Load};
use rheem_core::exec::{ExecCtx, ExecutionOperator};
use rheem_core::kernels::SplitMix64;
use rheem_core::mapping::{Candidate, FnMapping};
use rheem_core::udf::FlatMapUdf;

/// Fixed chaos-seed matrix (mirrors `tests/differential.rs` and CI).
const CHAOS_SEEDS: [u64; 3] = [0xC0FFEE, 42, 7];

/// A context with the cache explicitly OFF, regardless of `RHEEM_CACHE` in
/// the environment (CI runs this suite under both legs of the matrix).
fn ctx_without_cache() -> RheemContext {
    let mut ctx = rheem::default_context();
    ctx.set_cache(None);
    ctx
}

/// A context sharing `cache`, regardless of the environment.
fn ctx_with(cache: &Arc<ResultCache>) -> RheemContext {
    rheem::default_context().with_shared_cache(Arc::clone(cache))
}

fn wordcount(path: &std::path::Path) -> (RheemPlan, OperatorId) {
    let mut b = PlanBuilder::new();
    let sink = b
        .read_text_file(path)
        .flat_map(FlatMapUdf::new("split", |v| {
            v.as_str().unwrap_or("").split_whitespace().map(Value::from).collect()
        }))
        .map(MapUdf::new("pair", |w| Value::pair(w.clone(), Value::from(1))))
        .reduce_by_key(KeyUdf::field(0), ReduceUdf::sum())
        .collect();
    (b.build().unwrap(), sink)
}

fn run(ctx: &RheemContext, plan: &RheemPlan, sink: OperatorId) -> Result<(Vec<Value>, JobMetrics)> {
    let result = ctx.execute(plan)?;
    let mut out = result.sink(sink)?.to_vec();
    out.sort();
    Ok((out, result.metrics))
}

// ---- hit / replay -------------------------------------------------------

/// Rerunning an identical job against a shared cache replays published
/// intermediates: the trace shows a `CachedSource`, virtual time does not
/// regress, and the answer is byte-identical to the cold run.
#[test]
fn warm_rerun_replays_from_cache() {
    let path = std::path::PathBuf::from("hdfs://tests/cache/warm_corpus.txt");
    rheem_datagen::text::write_corpus(&path, 400, 11).unwrap();
    let (plan, sink) = wordcount(&path);

    let cache = Arc::new(ResultCache::new(64 << 20));
    let ctx = ctx_with(&cache);

    let (cold, cold_m) = run(&ctx, &plan, sink).unwrap();
    let after_cold = cache.stats();
    assert_eq!(after_cold.hits, 0, "first run cannot hit");
    assert!(after_cold.inserts >= 1, "commit must publish reusable channels");

    let warm_result = ctx.execute(&plan).unwrap();
    let mut warm = warm_result.sink(sink).unwrap().to_vec();
    warm.sort();
    assert_eq!(warm, cold, "cache replay changed the answer");

    let after_warm = cache.stats();
    assert!(after_warm.hits >= 1, "identical rerun must hit: {after_warm:?}");
    let trace = warm_result.trace.as_ref().expect("tracing is on by default");
    assert!(
        trace.profiles.iter().any(|p| p.name == "CachedSource"),
        "warm plan must execute a CachedSource, got {:?}",
        trace.profiles.iter().map(|p| p.name.clone()).collect::<Vec<_>>()
    );
    assert!(
        warm_result.metrics.virtual_ms <= cold_m.virtual_ms,
        "replay may not cost more than recomputation ({} > {})",
        warm_result.metrics.virtual_ms,
        cold_m.virtual_ms
    );
}

// ---- invalidation -------------------------------------------------------

/// Rewriting the source file (same byte length, newer mtime) changes the
/// fingerprint: the rerun misses the cache and sees the new content.
#[test]
fn source_rewrite_invalidates_by_mtime() {
    let path = std::path::PathBuf::from("hdfs://tests/cache/mtime_corpus.txt");
    rheem_storage::write_lines(&path, ["alpha alpha beta"]).unwrap();
    let (plan, sink) = wordcount(&path);

    let cache = Arc::new(ResultCache::new(64 << 20));
    let ctx = ctx_with(&cache);
    let (old, _) = run(&ctx, &plan, sink).unwrap();

    // Same length, different content; sleep so the mtime visibly advances.
    std::thread::sleep(Duration::from_millis(25));
    rheem_storage::write_lines(&path, ["alpha betaa beta"]).unwrap();

    let before = cache.stats();
    let (new, _) = run(&ctx, &plan, sink).unwrap();
    assert_eq!(cache.stats().hits, before.hits, "stale fingerprint must not hit");
    assert_ne!(new, old, "rerun must reflect the rewritten file");
    let (fresh, _) = run(&ctx_without_cache(), &wordcount(&path).0, sink).unwrap();
    assert_eq!(new, fresh, "post-rewrite answer must match an uncached run");
}

/// The UDF's identity (name) is part of the fingerprint: a structurally
/// identical plan with a different UDF must not reuse the cached result.
#[test]
fn udf_identity_is_part_of_the_fingerprint() {
    let data: Vec<Value> = (0..64).map(|i| Value::from(i as i64)).collect();
    let plan_with = |name: &'static str, delta: i64| {
        let mut b = PlanBuilder::new();
        let sink = b
            .collection(data.clone())
            .map(MapUdf::new(name, move |v| Value::from(v.as_int().unwrap_or(0) + delta)))
            .collect();
        (b.build().unwrap(), sink)
    };

    let cache = Arc::new(ResultCache::new(64 << 20));
    let ctx = ctx_with(&cache);
    let (a_plan, a_sink) = plan_with("inc", 1);
    run(&ctx, &a_plan, a_sink).unwrap();

    let (b_plan, b_sink) = plan_with("inc2", 2);
    let (out, _) = run(&ctx, &b_plan, b_sink).unwrap();
    assert_eq!(cache.stats().hits, 0, "different UDF must miss");
    assert_eq!(out, (2..66).map(|i| Value::from(i as i64)).collect::<Vec<_>>());
}

// ---- eviction -----------------------------------------------------------

/// Under a small byte budget, publishing results from several distinct jobs
/// evicts LRU entries; the cache never exceeds its budget.
#[test]
fn eviction_respects_the_byte_budget() {
    let make_data = |job: i64| -> Vec<Value> {
        (0..300).map(|i| Value::from(format!("job{job}-row{i}-{}", "x".repeat(24)))).collect()
    };
    // Budget sized to the actual datasets: roomy enough for two published
    // results, too tight for a third — forcing LRU eviction, not rejection.
    let budget = (2.2 * rheem_core::exec::dataset_bytes(&make_data(0))) as u64;
    let cache = Arc::new(ResultCache::new(budget));
    let ctx = ctx_with(&cache);
    for job in 0..6i64 {
        let mut b = PlanBuilder::new();
        let sink = b
            .collection(make_data(job))
            .map(MapUdf::new(format!("tag{job}"), |v| v.clone()))
            .collect();
        let plan = b.build().unwrap();
        run(&ctx, &plan, sink).unwrap();
    }
    let stats = cache.stats();
    assert!(stats.inserts >= 2, "jobs must publish: {stats:?}");
    assert!(stats.evictions >= 1, "budget pressure must evict: {stats:?}");
    assert!(
        stats.bytes <= cache.budget_bytes(),
        "cache exceeded its budget: {} > {}",
        stats.bytes,
        cache.budget_bytes()
    );
}

// ---- differential: cache on/off, cold/warm, under chaos ------------------

/// Seeded random plan generator (same shape as `tests/differential.rs`).
fn gen_case(case: u64) -> (RheemPlan, OperatorId) {
    let mut rng = SplitMix64(0xCAC4E ^ case.wrapping_mul(0x9E37_79B9));
    let len = 20 + rng.range_usize(40);
    let data: Vec<Value> = (0..len)
        .map(|_| {
            Value::pair(
                Value::from(rng.range_usize(8) as i64),
                Value::from(rng.range_usize(200) as i64 - 100),
            )
        })
        .collect();
    let mut b = PlanBuilder::new();
    let mut q = b.collection(data);
    let n_ops = 2 + rng.range_usize(3);
    for _ in 0..n_ops {
        q = match rng.range_usize(4) {
            0 => q.map(MapUdf::new("inc", |v| {
                Value::pair(v.field(0).clone(), Value::from(v.field(1).as_int().unwrap_or(0) + 1))
            })),
            1 => q.filter(PredicateUdf::new("pos", |v| v.field(1).as_int().unwrap_or(0) > 0)),
            2 => q.flat_map(FlatMapUdf::new("dup", |v| vec![v.clone(), v.clone()])),
            _ => q.map(MapUdf::new("rekey", |v| {
                let k = v.field(0).as_int().unwrap_or(0);
                let x = v.field(1).as_int().unwrap_or(0);
                Value::pair(Value::from((k + x).rem_euclid(7)), v.field(1).clone())
            })),
        };
    }
    q = match rng.range_usize(3) {
        0 => q.reduce_by_key(KeyUdf::field(0), ReduceUdf::sum()),
        1 => q.distinct(),
        _ => q,
    };
    let sink = q.collect();
    (b.build().unwrap(), sink)
}

/// The cache must be invisible in every answer: for random plans, cache-off,
/// cache-on-cold and cache-on-warm runs are byte-identical.
#[test]
fn results_identical_with_cache_on_and_off() {
    for case in 0u64..8 {
        let (plan, sink) = gen_case(case);
        let (reference, _) = run(&ctx_without_cache(), &plan, sink).unwrap();
        let cache = Arc::new(ResultCache::new(64 << 20));
        let ctx = ctx_with(&cache);
        let (cold, _) = run(&ctx, &plan, sink).unwrap();
        assert_eq!(cold, reference, "case {case}: cold cached run diverged");
        let (warm, _) = run(&ctx, &plan, sink).unwrap();
        assert_eq!(warm, reference, "case {case}: warm cached run diverged");
    }
    // The matrix must actually exercise reuse somewhere (deterministic).
    let (plan, sink) = gen_case(0);
    let cache = Arc::new(ResultCache::new(64 << 20));
    let ctx = ctx_with(&cache);
    run(&ctx, &plan, sink).unwrap();
    run(&ctx, &plan, sink).unwrap();
    assert!(cache.stats().hits >= 1, "differential matrix never hit the cache");
}

/// Under seeded chaos, a cached run (cold or warm) either survives with the
/// exact fault-free answer or dies with a typed error — never a wrong
/// answer, exactly like the cache-off harness.
#[test]
fn chaos_with_cache_never_produces_wrong_answers() {
    let mut survived = 0usize;
    for &chaos_seed in &CHAOS_SEEDS {
        for case in 0u64..5 {
            let (plan, sink) = gen_case(case);
            let (baseline, _) = run(&ctx_without_cache(), &plan, sink).unwrap();
            let cache = Arc::new(ResultCache::new(64 << 20));
            let mut ctx = ctx_with(&cache);
            ctx.config_mut().chaos_seed = Some(chaos_seed);
            for leg in ["cold", "warm"] {
                match run(&ctx, &plan, sink) {
                    Ok((out, _)) => {
                        assert_eq!(
                            out, baseline,
                            "chaos {chaos_seed:#x} case {case} ({leg}): cached run changed the answer"
                        );
                        survived += 1;
                    }
                    Err(
                        RheemError::Fault(_) | RheemError::Exhausted(_) | RheemError::Optimizer(_),
                    ) => {}
                    Err(other) => {
                        panic!("chaos {chaos_seed:#x} case {case} ({leg}): untyped error {other}")
                    }
                }
            }
        }
    }
    assert!(survived > 0, "chaos matrix never survived a cached run");
}

// ---- deterministic tie-breaking -----------------------------------------

/// A zero-cost execution operator used to manufacture *exact* cost ties.
struct TieMap {
    udf: MapUdf,
    tag: &'static str,
}

impl ExecutionOperator for TieMap {
    fn name(&self) -> &str {
        self.tag
    }
    fn platform(&self) -> PlatformId {
        ids::JAVA_STREAMS
    }
    fn accepted_inputs(&self, _slot: usize) -> Vec<ChannelKind> {
        vec![kinds::COLLECTION]
    }
    fn output_kind(&self) -> ChannelKind {
        kinds::COLLECTION
    }
    fn load(&self, _in: &[f64], _avg: f64, _m: &CostModel) -> Load {
        Load::default()
    }
    fn execute(
        &self,
        _ctx: &mut ExecCtx<'_>,
        inputs: &[ChannelData],
        bc: &rheem_core::udf::BroadcastCtx,
    ) -> Result<ChannelData> {
        let data = inputs[0].flatten()?;
        let out: Vec<Value> = data.iter().map(|v| self.udf.call(v, bc)).collect();
        Ok(ChannelData::Collection(Arc::new(out)))
    }
}

fn register_tie_mapping(ctx: &mut RheemContext, tag: &'static str) {
    ctx.registry_mut().add_mapping(Arc::new(FnMapping(move |_plan: &RheemPlan, node: &_| {
        let rheem_core::plan::OperatorNode { id, op, .. } = node;
        match op {
            LogicalOp::Map(udf) => {
                vec![Candidate::single(*id, Arc::new(TieMap { udf: udf.clone(), tag }))]
            }
            _ => Vec::new(),
        }
    })));
}

/// Exact cost ties must break deterministically: with two identical
/// zero-cost alternatives registered for every `Map`, 100 consecutive
/// optimizations (each building fresh hash maps, hence fresh iteration
/// orders) must choose the same candidate and the same platform set.
/// Regression test for the `total_cmp` + choice-vector tie-break.
#[test]
fn cost_ties_break_deterministically_over_100_runs() {
    let mut ctx = ctx_without_cache();
    register_tie_mapping(&mut ctx, "TieMapA");
    register_tie_mapping(&mut ctx, "TieMapB");

    let mut b = PlanBuilder::new();
    let q = b
        .collection((0..128).map(|i| Value::from(i as i64)).collect::<Vec<_>>())
        .map(MapUdf::new("m1", |v| Value::from(v.as_int().unwrap_or(0) + 1)))
        .filter(PredicateUdf::new("pos", |v| v.as_int().unwrap_or(0) > 3))
        .map(MapUdf::new("m2", |v| Value::from(v.as_int().unwrap_or(0) * 2)));
    let sink = q.collect();
    let plan = b.build().unwrap();

    let fingerprint = |opt: &rheem_core::optimizer::OptimizedPlan| {
        let mut names: Vec<String> = Vec::new();
        for node in plan.operators() {
            let c = opt.candidate_of(node.id);
            names.push(format!("{}@{}", c.exec.name(), c.exec.platform()));
        }
        (names, opt.platforms.clone())
    };

    let first = fingerprint(&ctx.optimize(&plan).unwrap());
    assert!(
        first.0.iter().any(|n| n.starts_with("TieMap")),
        "tie candidates must be competitive, got {:?}",
        first.0
    );
    for run in 1..100 {
        let choice = fingerprint(&ctx.optimize(&plan).unwrap());
        assert_eq!(choice, first, "run {run}: plan selection flapped on a cost tie");
    }

    // The tied winner must also execute correctly.
    let result = ctx.execute(&plan).unwrap();
    let mut out = result.sink(sink).unwrap().to_vec();
    out.sort();
    let expect: Vec<Value> =
        (4..129).map(|i| Value::from(2 * i as i64)).collect::<Vec<_>>().into_iter().collect();
    let mut expect = expect;
    expect.sort();
    assert_eq!(out, expect);
}

/// A NaN cost hint (pathological calibration) must not panic the
/// enumerator, and selection must stay deterministic: `total_cmp` gives NaN
/// a fixed place in the order instead of poisoning comparisons.
#[test]
fn nan_costs_do_not_panic_and_stay_deterministic() {
    let ctx = ctx_without_cache();
    let mut b = PlanBuilder::new();
    let sink = b
        .collection((0..32).map(|i| Value::from(i as i64)).collect::<Vec<_>>())
        .map(MapUdf::new("poisoned", |v| Value::from(v.as_int().unwrap_or(0) + 1)).cost(f64::NAN))
        .map(MapUdf::new("sane", |v| Value::from(v.as_int().unwrap_or(0) * 3)))
        .collect();
    let plan = b.build().unwrap();

    let first = ctx.optimize(&plan).unwrap();
    let first_names: Vec<String> =
        plan.operators().iter().map(|n| first.candidate_of(n.id).exec.name().to_string()).collect();
    for _ in 0..20 {
        let opt = ctx.optimize(&plan).unwrap();
        let names: Vec<String> = plan
            .operators()
            .iter()
            .map(|n| opt.candidate_of(n.id).exec.name().to_string())
            .collect();
        assert_eq!(names, first_names, "NaN cost made selection nondeterministic");
    }
    let result = ctx.execute(&plan).unwrap();
    let mut out = result.sink(sink).unwrap().to_vec();
    out.sort();
    assert_eq!(out.len(), 32);
    assert!(out.contains(&Value::from(3i64)), "execution under NaN costs must stay correct");
}
