//! Cross-job result-cache suite (PR 5).
//!
//! Covers the cache's observable contract end to end: a warm rerun replays
//! published intermediates through `CachedSource` (visible in the trace and
//! cheaper in virtual time), source-file rewrites invalidate by mtime/len,
//! UDF identity participates in the fingerprint, eviction respects the byte
//! budget, and — the load-bearing invariant — results are *byte-identical*
//! with the cache on and off, cold and warm, across the fixed chaos-seed
//! matrix. Also regression-tests deterministic plan selection on exact cost
//! ties (100 in-process optimizations must agree) and NaN cost robustness.

use std::sync::Arc;
use std::time::Duration;

use rheem::prelude::*;
use rheem_core::cache::ResultCache;
use rheem_core::channel::{kinds, ChannelData, ChannelKind};
use rheem_core::cost::{CostModel, Load};
use rheem_core::exec::{ExecCtx, ExecutionOperator};
use rheem_core::kernels::SplitMix64;
use rheem_core::mapping::{Candidate, FnMapping};
use rheem_core::udf::FlatMapUdf;

/// Fixed chaos-seed matrix (mirrors `tests/differential.rs` and CI).
const CHAOS_SEEDS: [u64; 3] = [0xC0FFEE, 42, 7];

/// A context with the cache explicitly OFF, regardless of `RHEEM_CACHE` in
/// the environment (CI runs this suite under both legs of the matrix).
fn ctx_without_cache() -> RheemContext {
    let mut ctx = rheem::default_context();
    ctx.set_cache(None);
    ctx
}

/// A context sharing `cache`, regardless of the environment.
fn ctx_with(cache: &Arc<ResultCache>) -> RheemContext {
    rheem::default_context().with_shared_cache(Arc::clone(cache))
}

fn wordcount(path: &std::path::Path) -> (RheemPlan, OperatorId) {
    let mut b = PlanBuilder::new();
    let sink = b
        .read_text_file(path)
        .flat_map(FlatMapUdf::new("split", |v| {
            v.as_str().unwrap_or("").split_whitespace().map(Value::from).collect()
        }))
        .map(MapUdf::new("pair", |w| Value::pair(w.clone(), Value::from(1))))
        .reduce_by_key(KeyUdf::field(0), ReduceUdf::sum())
        .collect();
    (b.build().unwrap(), sink)
}

fn run(ctx: &RheemContext, plan: &RheemPlan, sink: OperatorId) -> Result<(Vec<Value>, JobMetrics)> {
    let result = ctx.execute(plan)?;
    let mut out = result.sink(sink)?.to_vec();
    out.sort();
    Ok((out, result.metrics))
}

// ---- hit / replay -------------------------------------------------------

/// Rerunning an identical job against a shared cache replays published
/// intermediates: the trace shows a `CachedSource`, virtual time does not
/// regress, and the answer is byte-identical to the cold run.
#[test]
fn warm_rerun_replays_from_cache() {
    let path = std::path::PathBuf::from("hdfs://tests/cache/warm_corpus.txt");
    rheem_datagen::text::write_corpus(&path, 400, 11).unwrap();
    let (plan, sink) = wordcount(&path);

    let cache = Arc::new(ResultCache::new(64 << 20));
    let ctx = ctx_with(&cache);

    let (cold, cold_m) = run(&ctx, &plan, sink).unwrap();
    let after_cold = cache.stats();
    assert_eq!(after_cold.hits, 0, "first run cannot hit");
    assert!(after_cold.inserts >= 1, "commit must publish reusable channels");

    let warm_result = ctx.execute(&plan).unwrap();
    let mut warm = warm_result.sink(sink).unwrap().to_vec();
    warm.sort();
    assert_eq!(warm, cold, "cache replay changed the answer");

    let after_warm = cache.stats();
    assert!(after_warm.hits >= 1, "identical rerun must hit: {after_warm:?}");
    let trace = warm_result.trace.as_ref().expect("tracing is on by default");
    assert!(
        trace.profiles.iter().any(|p| p.name == "CachedSource"),
        "warm plan must execute a CachedSource, got {:?}",
        trace.profiles.iter().map(|p| p.name.clone()).collect::<Vec<_>>()
    );
    assert!(
        warm_result.metrics.virtual_ms <= cold_m.virtual_ms,
        "replay may not cost more than recomputation ({} > {})",
        warm_result.metrics.virtual_ms,
        cold_m.virtual_ms
    );
}

// ---- invalidation -------------------------------------------------------

/// Rewriting the source file (same byte length, newer mtime) changes the
/// fingerprint: the rerun misses the cache and sees the new content.
#[test]
fn source_rewrite_invalidates_by_mtime() {
    let path = std::path::PathBuf::from("hdfs://tests/cache/mtime_corpus.txt");
    rheem_storage::write_lines(&path, ["alpha alpha beta"]).unwrap();
    let (plan, sink) = wordcount(&path);

    let cache = Arc::new(ResultCache::new(64 << 20));
    let ctx = ctx_with(&cache);
    let (old, _) = run(&ctx, &plan, sink).unwrap();

    // Same length, different content; sleep so the mtime visibly advances.
    std::thread::sleep(Duration::from_millis(25));
    rheem_storage::write_lines(&path, ["alpha betaa beta"]).unwrap();

    let before = cache.stats();
    let (new, _) = run(&ctx, &plan, sink).unwrap();
    assert_eq!(cache.stats().hits, before.hits, "stale fingerprint must not hit");
    assert_ne!(new, old, "rerun must reflect the rewritten file");
    let (fresh, _) = run(&ctx_without_cache(), &wordcount(&path).0, sink).unwrap();
    assert_eq!(new, fresh, "post-rewrite answer must match an uncached run");
}

/// The UDF's identity (name) is part of the fingerprint: a structurally
/// identical plan with a different UDF must not reuse the cached result.
#[test]
fn udf_identity_is_part_of_the_fingerprint() {
    let data: Vec<Value> = (0..64).map(|i| Value::from(i as i64)).collect();
    let plan_with = |name: &'static str, delta: i64| {
        let mut b = PlanBuilder::new();
        let sink = b
            .collection(data.clone())
            .map(MapUdf::new(name, move |v| Value::from(v.as_int().unwrap_or(0) + delta)))
            .collect();
        (b.build().unwrap(), sink)
    };

    let cache = Arc::new(ResultCache::new(64 << 20));
    let ctx = ctx_with(&cache);
    let (a_plan, a_sink) = plan_with("inc", 1);
    run(&ctx, &a_plan, a_sink).unwrap();

    let (b_plan, b_sink) = plan_with("inc2", 2);
    let (out, _) = run(&ctx, &b_plan, b_sink).unwrap();
    assert_eq!(cache.stats().hits, 0, "different UDF must miss");
    assert_eq!(out, (2..66).map(|i| Value::from(i as i64)).collect::<Vec<_>>());
}

// ---- eviction -----------------------------------------------------------

/// Under a small byte budget, publishing results from several distinct jobs
/// evicts LRU entries; the cache never exceeds its budget.
#[test]
fn eviction_respects_the_byte_budget() {
    let make_data = |job: i64| -> Vec<Value> {
        (0..300).map(|i| Value::from(format!("job{job}-row{i}-{}", "x".repeat(24)))).collect()
    };
    // Budget sized to the actual datasets: roomy enough for two published
    // results, too tight for a third — forcing LRU eviction, not rejection.
    let budget = (2.2 * rheem_core::exec::dataset_bytes(&make_data(0))) as u64;
    let cache = Arc::new(ResultCache::new(budget));
    let ctx = ctx_with(&cache);
    for job in 0..6i64 {
        let mut b = PlanBuilder::new();
        let sink = b
            .collection(make_data(job))
            .map(MapUdf::new(format!("tag{job}"), |v| v.clone()))
            .collect();
        let plan = b.build().unwrap();
        run(&ctx, &plan, sink).unwrap();
    }
    let stats = cache.stats();
    assert!(stats.inserts >= 2, "jobs must publish: {stats:?}");
    assert!(stats.evictions >= 1, "budget pressure must evict: {stats:?}");
    assert!(
        stats.bytes <= cache.budget_bytes(),
        "cache exceeded its budget: {} > {}",
        stats.bytes,
        cache.budget_bytes()
    );
}

// ---- differential: cache on/off, cold/warm, under chaos ------------------

/// Seeded random plan generator (same shape as `tests/differential.rs`).
fn gen_case(case: u64) -> (RheemPlan, OperatorId) {
    let mut rng = SplitMix64(0xCAC4E ^ case.wrapping_mul(0x9E37_79B9));
    let len = 20 + rng.range_usize(40);
    let data: Vec<Value> = (0..len)
        .map(|_| {
            Value::pair(
                Value::from(rng.range_usize(8) as i64),
                Value::from(rng.range_usize(200) as i64 - 100),
            )
        })
        .collect();
    let mut b = PlanBuilder::new();
    let mut q = b.collection(data);
    let n_ops = 2 + rng.range_usize(3);
    for _ in 0..n_ops {
        q = match rng.range_usize(4) {
            0 => q.map(MapUdf::new("inc", |v| {
                Value::pair(v.field(0).clone(), Value::from(v.field(1).as_int().unwrap_or(0) + 1))
            })),
            1 => q.filter(PredicateUdf::new("pos", |v| v.field(1).as_int().unwrap_or(0) > 0)),
            2 => q.flat_map(FlatMapUdf::new("dup", |v| vec![v.clone(), v.clone()])),
            _ => q.map(MapUdf::new("rekey", |v| {
                let k = v.field(0).as_int().unwrap_or(0);
                let x = v.field(1).as_int().unwrap_or(0);
                Value::pair(Value::from((k + x).rem_euclid(7)), v.field(1).clone())
            })),
        };
    }
    q = match rng.range_usize(3) {
        0 => q.reduce_by_key(KeyUdf::field(0), ReduceUdf::sum()),
        1 => q.distinct(),
        _ => q,
    };
    let sink = q.collect();
    (b.build().unwrap(), sink)
}

/// The cache must be invisible in every answer: for random plans, cache-off,
/// cache-on-cold and cache-on-warm runs are byte-identical.
#[test]
fn results_identical_with_cache_on_and_off() {
    for case in 0u64..8 {
        let (plan, sink) = gen_case(case);
        let (reference, _) = run(&ctx_without_cache(), &plan, sink).unwrap();
        let cache = Arc::new(ResultCache::new(64 << 20));
        let ctx = ctx_with(&cache);
        let (cold, _) = run(&ctx, &plan, sink).unwrap();
        assert_eq!(cold, reference, "case {case}: cold cached run diverged");
        let (warm, _) = run(&ctx, &plan, sink).unwrap();
        assert_eq!(warm, reference, "case {case}: warm cached run diverged");
    }
    // The matrix must actually exercise reuse somewhere (deterministic).
    let (plan, sink) = gen_case(0);
    let cache = Arc::new(ResultCache::new(64 << 20));
    let ctx = ctx_with(&cache);
    run(&ctx, &plan, sink).unwrap();
    run(&ctx, &plan, sink).unwrap();
    assert!(cache.stats().hits >= 1, "differential matrix never hit the cache");
}

/// Under seeded chaos, a cached run (cold or warm) either survives with the
/// exact fault-free answer or dies with a typed error — never a wrong
/// answer, exactly like the cache-off harness.
#[test]
fn chaos_with_cache_never_produces_wrong_answers() {
    let mut survived = 0usize;
    for &chaos_seed in &CHAOS_SEEDS {
        for case in 0u64..5 {
            let (plan, sink) = gen_case(case);
            let (baseline, _) = run(&ctx_without_cache(), &plan, sink).unwrap();
            let cache = Arc::new(ResultCache::new(64 << 20));
            let mut ctx = ctx_with(&cache);
            ctx.config_mut().chaos_seed = Some(chaos_seed);
            for leg in ["cold", "warm"] {
                match run(&ctx, &plan, sink) {
                    Ok((out, _)) => {
                        assert_eq!(
                            out, baseline,
                            "chaos {chaos_seed:#x} case {case} ({leg}): cached run changed the answer"
                        );
                        survived += 1;
                    }
                    Err(
                        RheemError::Fault(_) | RheemError::Exhausted(_) | RheemError::Optimizer(_),
                    ) => {}
                    Err(other) => {
                        panic!("chaos {chaos_seed:#x} case {case} ({leg}): untyped error {other}")
                    }
                }
            }
        }
    }
    assert!(survived > 0, "chaos matrix never survived a cached run");
}

// ---- structural subplan sharing (PR 10) ---------------------------------

/// Interior cut points of fused chains are published as additional
/// fingerprints: a *different* job sharing only a structural prefix with an
/// earlier one replays that prefix from the cache instead of recomputing.
#[test]
fn structurally_shared_prefix_hits_across_different_jobs() {
    let data: Vec<Value> = (0..120)
        .map(|i| Value::pair(Value::from(i as i64 % 9), Value::from(i as i64 - 60)))
        .collect();
    let bump = || {
        MapUdf::new("share_bump", |v| {
            Value::pair(v.field(0).clone(), Value::from(v.field(1).as_int().unwrap_or(0) + 1))
        })
    };

    // Job A: source -> bump -> square -> collect (bump ∘ square fuse).
    let mut b = PlanBuilder::new();
    let a_sink = b
        .collection(data.clone())
        .map(bump())
        .map(MapUdf::new("share_square", |v| {
            let x = v.field(1).as_int().unwrap_or(0);
            Value::pair(v.field(0).clone(), Value::from(x * x))
        }))
        .collect();
    let a_plan = b.build().unwrap();

    // Job B: source -> bump -> filter -> collect. Only the `bump` prefix is
    // shared with job A — reuse requires the interior cut-point fingerprint.
    let job_b = || {
        let mut b = PlanBuilder::new();
        let sink = b
            .collection(data.clone())
            .map(bump())
            .filter(PredicateUdf::new("share_pos", |v| v.field(1).as_int().unwrap_or(0) > 0))
            .collect();
        (b.build().unwrap(), sink)
    };

    let (b_plan, b_sink) = job_b();
    let (reference, _) = run(&ctx_without_cache(), &b_plan, b_sink).unwrap();

    let cache = Arc::new(ResultCache::new(64 << 20));
    let ctx = ctx_with(&cache);
    run(&ctx, &a_plan, a_sink).unwrap();
    assert!(cache.stats().inserts >= 2, "job A must publish interior cut points too");

    let before = cache.stats();
    let (out, _) = run(&ctx, &b_plan, b_sink).unwrap();
    assert!(
        cache.stats().hits > before.hits,
        "job B must hit job A's shared prefix: {:?}",
        cache.stats()
    );
    assert_eq!(out, reference, "prefix replay changed job B's answer");
}

// ---- disk spill (PR 10) -------------------------------------------------

/// With a disk tier configured, memory pressure spills cold entries instead
/// of evicting them: resident bytes stay within the memory budget, spilled
/// entries remain reachable, and a hit promotes back to memory.
#[test]
fn spilled_entries_replay_and_promote_within_memory_budget() {
    let make_data = |job: i64| -> Vec<Value> {
        (0..300).map(|i| Value::from(format!("spill{job}-row{i}-{}", "y".repeat(24)))).collect()
    };
    let one = rheem_core::cache::rows_unique_bytes(&Arc::new(make_data(0)));
    // Memory holds ~2 published results; disk holds the rest of the sweep.
    let cache = Arc::new(ResultCache::with_disk(2 * one + one / 2, 16 * one));
    let ctx = ctx_with(&cache);

    let job = |j: i64| {
        let mut b = PlanBuilder::new();
        let sink = b
            .collection(make_data(j))
            .map(MapUdf::new(format!("spill_tag{j}"), |v| v.clone()))
            .collect();
        (b.build().unwrap(), sink)
    };

    let (first_plan, first_sink) = job(0);
    let (cold, _) = run(&ctx, &first_plan, first_sink).unwrap();
    for j in 1..6i64 {
        let (plan, sink) = job(j);
        run(&ctx, &plan, sink).unwrap();
    }
    let st = cache.stats();
    assert!(st.spills >= 1, "memory pressure must spill, not drop: {st:?}");
    assert_eq!(st.evictions, 0, "disk budget was roomy; nothing may be evicted: {st:?}");
    assert!(st.bytes <= cache.budget_bytes(), "resident bytes exceed the memory budget: {st:?}");
    assert!(
        st.spilled_bytes <= cache.disk_budget_bytes(),
        "spill tier exceeds the disk budget: {st:?}"
    );
    assert!(st.spilled_entries >= 1, "spilled entries must stay registered: {st:?}");

    // Job 0 is the coldest entry — replaying it must hit the disk tier,
    // reproduce the cold answer exactly, and promote back to memory.
    let (warm, _) = run(&ctx, &first_plan, first_sink).unwrap();
    assert_eq!(warm, cold, "disk-tier replay changed the answer");
    let st = cache.stats();
    assert!(st.hits >= 1, "spilled entry must stay reachable: {st:?}");
    assert!(st.promotions >= 1, "disk hit must promote to memory: {st:?}");
}

// ---- unique-bytes accounting (PR 10) ------------------------------------

/// `dataset_bytes` prices every row as if it owned its payload; cache
/// accounting must charge shared `Arc` allocations (interned dictionary
/// strings) once. Regression test for the budget overstatement.
#[test]
fn interned_strings_are_accounted_once() {
    let shared = Value::from("shared-dictionary-entry-".repeat(4));
    let rows: Dataset = Arc::new((0..200).map(|_| shared.clone()).collect());
    let unique = rheem_core::cache::rows_unique_bytes(&rows);
    let naive = rheem_core::exec::dataset_bytes(&rows) as u64;
    assert!(unique < naive / 4, "shared allocation charged per row: unique={unique} naive={naive}");

    // Distinct strings of the same shape must still be charged in full.
    let distinct: Dataset = Arc::new(
        (0..200).map(|i| Value::from(format!("distinct-dictionary-entry-{i:072}"))).collect(),
    );
    let distinct_unique = rheem_core::cache::rows_unique_bytes(&distinct);
    assert!(
        distinct_unique > unique * 4,
        "distinct allocations under-charged: {distinct_unique} vs shared {unique}"
    );

    // And the cache books exactly the deduplicated size.
    let cache = ResultCache::new(64 << 20);
    cache.insert(rheem_core::cache::Fingerprint(0xACC0), Arc::clone(&rows));
    assert_eq!(cache.stats().bytes, unique, "cache must account unique bytes");
}

// ---- cache × batch differential matrix (PR 10) ---------------------------

/// The cache must stay invisible across the execution-mode matrix: for the
/// fixed seeds, cache-{off,cold,warm} × batch-{on,off} runs are all
/// byte-identical, and warm batch replays keep the columnar path engaged.
#[test]
fn results_identical_across_cache_and_batch_matrix() {
    for &seed in &CHAOS_SEEDS {
        let (plan, sink) = gen_case(seed);
        let mut reference: Option<Vec<Value>> = None;
        for batch in [false, true] {
            let mut off = ctx_without_cache();
            off.config_mut().batch = batch;
            let (base, _) = run(&off, &plan, sink).unwrap();
            let cache = Arc::new(ResultCache::new(64 << 20));
            let mut ctx = ctx_with(&cache);
            ctx.config_mut().batch = batch;
            let (cold, _) = run(&ctx, &plan, sink).unwrap();
            let (warm, _) = run(&ctx, &plan, sink).unwrap();
            assert!(cache.stats().hits >= 1, "seed {seed:#x} batch={batch}: warm leg never hit");
            let r = reference.get_or_insert_with(|| base.clone());
            assert_eq!(&base, r, "seed {seed:#x} batch={batch}: cache-off diverged");
            assert_eq!(&cold, r, "seed {seed:#x} batch={batch}: cold cached run diverged");
            assert_eq!(&warm, r, "seed {seed:#x} batch={batch}: warm cached run diverged");
        }
    }
}

/// Columnar payloads survive publish/replay: a warm run whose downstream
/// chain is vectorizable executes a `CachedSource` *and* still reports
/// vectorized steps — the replay feeds batches, not flattened rows.
#[test]
fn cached_replay_feeds_vectorized_downstream_chain() {
    let data: Vec<Value> = (0..400)
        .map(|i| Value::pair(Value::from(i as i64 % 32), Value::from(i as i64 - 200)))
        .collect();
    let sarg = Sarg { field: 1, op: CmpOp::Gt, literal: Value::from(0i64) };

    // Job A: source -> sargable filter -> collect (publishes the filter's
    // columnar output).
    let mut b = PlanBuilder::new();
    let sp = PredicateUdf::from_sarg("vec_pos", sarg.clone());
    let a_sink = b.collection(data.clone()).filter_sarg(sp.pred, sp.sarg).collect();
    let a_plan = b.build().unwrap();

    // Job B extends the shared prefix with a vectorizable arithmetic chain.
    let job_b = || {
        let mut b = PlanBuilder::new();
        let sp = PredicateUdf::from_sarg("vec_pos", sarg.clone());
        let sink = b
            .collection(data.clone())
            .filter_sarg(sp.pred, sp.sarg)
            .map(MapUdf::field_add_int("vec_bump", 1, 5))
            .project([1usize, 0])
            .collect();
        (b.build().unwrap(), sink)
    };

    let (b_plan, b_sink) = job_b();
    let (reference, _) = run(&ctx_without_cache(), &b_plan, b_sink).unwrap();

    let cache = Arc::new(ResultCache::new(64 << 20));
    let ctx = ctx_with(&cache).with_batch(true);
    run(&ctx, &a_plan, a_sink).unwrap();

    let analysis = ctx.explain_analyze(&b_plan).unwrap();
    assert!(
        analysis.rows.iter().any(|r| r.exec_name == "CachedSource"),
        "warm job B must replay the shared prefix, got {:?}",
        analysis.rows.iter().map(|r| r.exec_name.clone()).collect::<Vec<_>>()
    );
    assert!(
        analysis.rows.iter().any(|r| r.vec_steps > 0),
        "downstream of the replay must stay vectorized: {:?}",
        analysis.rows.iter().map(|r| (r.exec_name.clone(), r.vec_steps)).collect::<Vec<_>>()
    );
    let (warm, _) = run(&ctx, &b_plan, b_sink).unwrap();
    assert_eq!(warm, reference, "columnar replay changed job B's answer");
}

// ---- deterministic tie-breaking -----------------------------------------

/// A zero-cost execution operator used to manufacture *exact* cost ties.
struct TieMap {
    udf: MapUdf,
    tag: &'static str,
}

impl ExecutionOperator for TieMap {
    fn name(&self) -> &str {
        self.tag
    }
    fn platform(&self) -> PlatformId {
        ids::JAVA_STREAMS
    }
    fn accepted_inputs(&self, _slot: usize) -> Vec<ChannelKind> {
        vec![kinds::COLLECTION]
    }
    fn output_kind(&self) -> ChannelKind {
        kinds::COLLECTION
    }
    fn load(&self, _in: &[f64], _avg: f64, _m: &CostModel) -> Load {
        Load::default()
    }
    fn execute(
        &self,
        _ctx: &mut ExecCtx<'_>,
        inputs: &[ChannelData],
        bc: &rheem_core::udf::BroadcastCtx,
    ) -> Result<ChannelData> {
        let data = inputs[0].flatten()?;
        let out: Vec<Value> = data.iter().map(|v| self.udf.call(v, bc)).collect();
        Ok(ChannelData::Collection(Arc::new(out)))
    }
}

fn register_tie_mapping(ctx: &mut RheemContext, tag: &'static str) {
    ctx.registry_mut().add_mapping(Arc::new(FnMapping(move |_plan: &RheemPlan, node: &_| {
        let rheem_core::plan::OperatorNode { id, op, .. } = node;
        match op {
            LogicalOp::Map(udf) => {
                vec![Candidate::single(*id, Arc::new(TieMap { udf: udf.clone(), tag }))]
            }
            _ => Vec::new(),
        }
    })));
}

/// Exact cost ties must break deterministically: with two identical
/// zero-cost alternatives registered for every `Map`, 100 consecutive
/// optimizations (each building fresh hash maps, hence fresh iteration
/// orders) must choose the same candidate and the same platform set.
/// Regression test for the `total_cmp` + choice-vector tie-break.
#[test]
fn cost_ties_break_deterministically_over_100_runs() {
    let mut ctx = ctx_without_cache();
    register_tie_mapping(&mut ctx, "TieMapA");
    register_tie_mapping(&mut ctx, "TieMapB");

    let mut b = PlanBuilder::new();
    let q = b
        .collection((0..128).map(|i| Value::from(i as i64)).collect::<Vec<_>>())
        .map(MapUdf::new("m1", |v| Value::from(v.as_int().unwrap_or(0) + 1)))
        .filter(PredicateUdf::new("pos", |v| v.as_int().unwrap_or(0) > 3))
        .map(MapUdf::new("m2", |v| Value::from(v.as_int().unwrap_or(0) * 2)));
    let sink = q.collect();
    let plan = b.build().unwrap();

    let fingerprint = |opt: &rheem_core::optimizer::OptimizedPlan| {
        let mut names: Vec<String> = Vec::new();
        for node in plan.operators() {
            let c = opt.candidate_of(node.id);
            names.push(format!("{}@{}", c.exec.name(), c.exec.platform()));
        }
        (names, opt.platforms.clone())
    };

    let first = fingerprint(&ctx.optimize(&plan).unwrap());
    assert!(
        first.0.iter().any(|n| n.starts_with("TieMap")),
        "tie candidates must be competitive, got {:?}",
        first.0
    );
    for run in 1..100 {
        let choice = fingerprint(&ctx.optimize(&plan).unwrap());
        assert_eq!(choice, first, "run {run}: plan selection flapped on a cost tie");
    }

    // The tied winner must also execute correctly.
    let result = ctx.execute(&plan).unwrap();
    let mut out = result.sink(sink).unwrap().to_vec();
    out.sort();
    let expect: Vec<Value> =
        (4..129).map(|i| Value::from(2 * i as i64)).collect::<Vec<_>>().into_iter().collect();
    let mut expect = expect;
    expect.sort();
    assert_eq!(out, expect);
}

/// A NaN cost hint (pathological calibration) must not panic the
/// enumerator, and selection must stay deterministic: `total_cmp` gives NaN
/// a fixed place in the order instead of poisoning comparisons.
#[test]
fn nan_costs_do_not_panic_and_stay_deterministic() {
    let ctx = ctx_without_cache();
    let mut b = PlanBuilder::new();
    let sink = b
        .collection((0..32).map(|i| Value::from(i as i64)).collect::<Vec<_>>())
        .map(MapUdf::new("poisoned", |v| Value::from(v.as_int().unwrap_or(0) + 1)).cost(f64::NAN))
        .map(MapUdf::new("sane", |v| Value::from(v.as_int().unwrap_or(0) * 3)))
        .collect();
    let plan = b.build().unwrap();

    let first = ctx.optimize(&plan).unwrap();
    let first_names: Vec<String> =
        plan.operators().iter().map(|n| first.candidate_of(n.id).exec.name().to_string()).collect();
    for _ in 0..20 {
        let opt = ctx.optimize(&plan).unwrap();
        let names: Vec<String> = plan
            .operators()
            .iter()
            .map(|n| opt.candidate_of(n.id).exec.name().to_string())
            .collect();
        assert_eq!(names, first_names, "NaN cost made selection nondeterministic");
    }
    let result = ctx.execute(&plan).unwrap();
    let mut out = result.sink(sink).unwrap().to_vec();
    out.sort();
    assert_eq!(out.len(), 32);
    assert!(out.contains(&Value::from(3i64)), "execution under NaN costs must stay correct");
}
