//! Reproduction of **Listing 1**: the SGD task expressed in RheemLatin,
//! with the loop, the broadcast clause and a platform pin — parsed,
//! translated and executed end-to-end.

use rheem::lang::{Parser, UdfRegistry};
use rheem::prelude::*;

fn sgd_udfs(dims: usize) -> UdfRegistry {
    let mut udfs = UdfRegistry::new();
    udfs.map(
        "parsePoints",
        MapUdf::new("parsePoints", |line| {
            rheem_datagen::points::csv_to_point(line.as_str().unwrap_or(""))
        }),
    );
    udfs.map(
        "computeGradient",
        MapUdf::with_ctx("computeGradient", move |p, ctx| {
            let w = ctx.get_or_empty("weights");
            let wv = w.first().cloned().unwrap_or(Value::Null);
            let f = p.fields().unwrap_or(&[]);
            let label = f.first().and_then(Value::as_f64).unwrap_or(0.0);
            let margin: f64 = (0..dims)
                .map(|i| {
                    f.get(i + 1).and_then(Value::as_f64).unwrap_or(0.0)
                        * wv.field(i).as_f64().unwrap_or(0.0)
                })
                .sum();
            let scale = if label * margin < 1.0 { -label } else { 0.0 };
            Value::Tuple(
                (0..dims)
                    .map(|i| {
                        Value::from(scale * f.get(i + 1).and_then(Value::as_f64).unwrap_or(0.0))
                    })
                    .collect::<Vec<_>>()
                    .into(),
            )
        }),
    );
    udfs.reduce(
        "sumcount",
        ReduceUdf::new("sumcount", move |a, b| {
            Value::Tuple(
                (0..dims)
                    .map(|i| {
                        Value::from(
                            a.field(i).as_f64().unwrap_or(0.0) + b.field(i).as_f64().unwrap_or(0.0),
                        )
                    })
                    .collect::<Vec<_>>()
                    .into(),
            )
        }),
    );
    udfs.map(
        "average",
        MapUdf::with_ctx("average", move |w, ctx| {
            let g = ctx.get_or_empty("gradient_sum");
            let gv = g.first().cloned().unwrap_or(Value::Null);
            Value::Tuple(
                (0..dims)
                    .map(|i| {
                        Value::from(
                            w.field(i).as_f64().unwrap_or(0.0)
                                - 0.05 * gv.field(i).as_f64().unwrap_or(0.0) / 16.0,
                        )
                    })
                    .collect::<Vec<_>>()
                    .into(),
            )
        }),
    );
    udfs
}

#[test]
fn listing1_sgd_in_rheemlatin_runs_end_to_end() {
    let dims = 3;
    let set = rheem_datagen::generate_points(2_000, dims, 0.05, 21);
    let csv = std::path::PathBuf::from("hdfs://tests/listing1/points.csv");
    rheem_datagen::points::write_points(&csv, &set).unwrap();

    // Listing 1, adapted to our grammar: load → map(parse) → repeat { sample
    // → map(gradient) with broadcast weights → reduce → map(update) with
    // broadcast gradient_sum; yield }.
    let program_src = format!(
        "lines = load '{}';\n\
         points = map lines -> {{parsePoints}};\n\
         winit = values '0,0,0';\n\
         weights = map winit -> {{parsePoints}};\n\
         final_weights = repeat 50 weights {{\n\
            sample_points = sample points 16;\n\
            gradient = map sample_points -> {{computeGradient}} with broadcast weights;\n\
            gradient_sum = reduce gradient -> {{sumcount}};\n\
            weights2 = map weights -> {{average}} with broadcast gradient_sum with platform 'JavaStreams';\n\
            yield weights2;\n\
         }};\n\
         collect final_weights;",
        csv.display()
    );
    let program = Parser::new(sgd_udfs(dims)).parse(&program_src).unwrap();
    let ctx = rheem::default_context();
    let result = ctx.execute(&program.plan).unwrap();
    let w = result.sink(program.sinks["final_weights"]).unwrap();
    assert_eq!(w.len(), 1);
    let weights: Vec<f64> = (0..dims).map(|i| w[0].field(i).as_f64().unwrap()).collect();
    assert!(weights.iter().any(|&x| x != 0.0), "{weights:?}");
    // the learned weights actually classify better than zero weights
    let loss0 = ml4all::hinge_loss(&set.points, &vec![0.0; dims]);
    let loss = ml4all::hinge_loss(&set.points, &weights);
    assert!(loss < loss0, "{loss0} -> {loss}");
}
