//! Table 1 of the paper: the three §6 tasks with their Rheem-operator
//! counts and dataset kinds. We assert our plan builders produce the same
//! task shapes (operator counts in the paper's ballpark) over the
//! corresponding synthetic datasets.

use rheem_core::plan::{OpKind, PlanBuilder};
use rheem_core::udf::{FlatMapUdf, KeyUdf, MapUdf, ReduceUdf};
use rheem_core::value::Value;

fn wordcount_plan(path: &std::path::Path) -> rheem_core::plan::RheemPlan {
    let mut b = PlanBuilder::new();
    b.read_text_file(path)
        .flat_map(FlatMapUdf::new("split", |v| {
            v.as_str().unwrap_or("").split_whitespace().map(Value::from).collect()
        }))
        .map(MapUdf::new("pair", |w| Value::pair(w.clone(), Value::from(1))))
        .reduce_by_key(KeyUdf::field(0), ReduceUdf::sum())
        .collect();
    b.build().unwrap()
}

#[test]
fn wordcount_uses_about_four_operators() {
    // Paper: WordCount = 4 Rheem operators (source, flatmap, map/reduce…).
    let dir = std::env::temp_dir().join("rheem_table1");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("wc.txt");
    rheem_storage::write_lines(&path, ["a b"]).unwrap();
    let plan = wordcount_plan(&path);
    // source + flatmap + map + reduceby (+ sink)
    let non_sink = plan.operators().iter().filter(|n| !n.op.kind().is_sink()).count();
    assert_eq!(non_sink, 4);
}

#[test]
fn sgd_uses_about_nine_operators() {
    // Paper: SGD = 9 Rheem operators (Fig. 3a).
    let points = std::sync::Arc::new(rheem_datagen::generate_points(10, 2, 0.1, 1).points);
    let cfg = ml4all::SgdConfig { dims: 2, iterations: 2, ..Default::default() };
    let (plan, _) = ml4all::build_sgd_plan(ml4all::PointSource::InMemory(points), &cfg).unwrap();
    let non_sink = plan.operators().iter().filter(|n| !n.op.kind().is_sink()).count();
    // sources (points, weights), loop, sample, compute, tag, reduce, update
    assert!((7..=10).contains(&non_sink), "{non_sink} operators");
    assert!(plan.operators().iter().any(|n| n.op.kind() == OpKind::RepeatLoop));
}

#[test]
fn crocopr_is_the_biggest_plan() {
    // Paper: CrocoPR = 27 Rheem operators; ours is the same pipeline at a
    // somewhat higher abstraction (PageRank is one composite operator), so
    // we assert it is the largest of the three tasks.
    let dir = std::env::temp_dir().join("rheem_table1");
    std::fs::create_dir_all(&dir).unwrap();
    let (fa, fb) = (dir.join("a.edges"), dir.join("b.edges"));
    let edges = rheem_datagen::generate_graph(50, 3, 1);
    rheem_datagen::graph::write_graph(&fa, &edges).unwrap();
    rheem_datagen::graph::write_graph(&fb, &edges).unwrap();
    let (croco, _) = xdb::build_crocopr_plan(xdb::CrocoSource::Files(fa, fb), 3).unwrap();

    let path = dir.join("wc.txt");
    rheem_storage::write_lines(&path, ["a b"]).unwrap();
    let wc = wordcount_plan(&path);
    assert!(croco.len() > wc.len());
    assert!(croco.len() >= 12, "{}", croco.len());
}

#[test]
fn q5_spans_about_two_dozen_operators_and_three_stores() {
    let data = rheem_datagen::tpch::generate(0.02, 1);
    let p = dataciv::place(&data, "table1_q5").unwrap();
    let (plan, _) = dataciv::build_q5_plan(&p, "ASIA", 1995).unwrap();
    assert!(plan.len() >= 20, "{}", plan.len());
    let table_sources =
        plan.operators().iter().filter(|n| n.op.kind() == OpKind::TableSource).count();
    let file_sources =
        plan.operators().iter().filter(|n| n.op.kind() == OpKind::TextFileSource).count();
    assert_eq!(table_sources, 3); // region, customer, supplier in the store
    assert_eq!(file_sources, 3); // lineitem, orders (HDFS), nation (local)
}
