//! BigDansing example (§2.1): detect denial-constraint violations in tax
//! records with the plugged IEJoin operator, and compare platforms.
//!
//! ```sh
//! cargo run --release --example data_cleaning
//! ```

use std::sync::Arc;

use rheem::bigdansing::{register_iejoin, violation_ids, CleaningTask};
use rheem::prelude::*;

fn main() -> Result<()> {
    // 20k tax records; ~0.1% carry a planted violation of
    //   ¬(t1.salary > t2.salary ∧ t1.tax < t2.tax)
    let rows = rheem::datagen::generate_tax(20_000, 0.001, 7);

    let mut ctx = rheem::default_context();
    register_iejoin(&mut ctx); // BigDansing's custom inequality-join operator

    let task = CleaningTask::tax();
    let (plan, sink) = task.build_plan(Arc::new(rows))?;

    // The optimizer should pick IEJoin over the O(n²) nested loop:
    let opt = ctx.optimize(&plan)?;
    let join = plan
        .operators()
        .iter()
        .find(|n| n.op.kind() == rheem_core::plan::OpKind::InequalityJoin)
        .expect("plan contains the detect join");
    println!(
        "detect operator executes as: {} on {}",
        opt.candidate_of(join.id).exec.name(),
        opt.platform_of(join.id)
    );

    let result = ctx.execute(&plan)?;
    let fixes = result.sink(sink)?;
    println!(
        "found {} violations in {:.1} virtual ms via {:?}",
        fixes.len(),
        result.metrics.virtual_ms,
        result.metrics.platforms
    );
    for fix in fixes.iter().take(5) {
        let (t1, t2) = violation_ids(fix);
        println!("  records ({t1}, {t2}): {}", fix.field(1));
    }
    Ok(())
}
