//! RheemLatin example (§5, Listing 1): run WordCount written in the
//! data-flow language, pinning one operator to a platform with
//! `with platform`, then run a mini-SGD with a `repeat` block.
//!
//! ```sh
//! cargo run --release --example rheemlatin
//! ```

use rheem::lang::{Parser, UdfRegistry};
use rheem::prelude::*;

fn main() -> Result<()> {
    // Register the UDFs the scripts reference by name (the analogue of
    // Listing 1's `import '/sgd/udfs.class'`).
    let mut udfs = UdfRegistry::new();
    udfs.flat_map(
        "split",
        FlatMapUdf::new("split", |v| {
            v.as_str().unwrap_or("").split_whitespace().map(Value::from).collect()
        }),
    )
    .map("pair", MapUdf::new("pair", |w| Value::pair(w.clone(), Value::from(1))))
    .key("word", KeyUdf::field(0))
    .reduce(
        "sumcount",
        ReduceUdf::new("sumcount", |a, b| {
            Value::pair(
                a.field(0).clone(),
                Value::from(a.field(1).as_int().unwrap() + b.field(1).as_int().unwrap()),
            )
        }),
    )
    .map("inc", MapUdf::new("inc", |v| Value::from(v.as_int().unwrap_or(0) + 1)));

    // Write a small corpus to the HDFS simulacrum.
    let corpus = std::path::PathBuf::from("hdfs://examples/latin_corpus.txt");
    rheem::datagen::text::write_corpus(&corpus, 64, 3).expect("corpus");

    let wordcount = format!(
        "lines  = load '{}';\n\
         words  = flatmap lines -> {{split}};\n\
         pairs  = map words -> {{pair}} with platform 'JavaStreams';\n\
         counts = reduceby pairs -> {{word}} {{sumcount}};\n\
         collect counts;",
        corpus.display()
    );
    println!("--- RheemLatin program ---\n{wordcount}\n--------------------------");

    let program = Parser::new(udfs.clone()).parse(&wordcount)?;
    let ctx = rheem::default_context();
    let result = ctx.execute(&program.plan)?;
    let counts = result.sink(program.sinks["counts"])?;
    println!("{} distinct words, via {:?}\n", counts.len(), result.metrics.platforms);

    // A loop in the language (Listing 1's `repeat` clause).
    let looped = "w   = values 0;\n\
                  out = repeat 10 w { w2 = map w -> {inc}; yield w2; };\n\
                  collect out;";
    let program = Parser::new(udfs).parse(looped)?;
    let result = ctx.execute(&program.plan)?;
    println!("repeat 10 {{ +1 }} over 0 = {}", result.sink(program.sinks["out"])?[0]);
    Ok(())
}
