//! Cost-model learning workflow (§4.5): generate execution logs over the
//! three plan topologies, fit the genetic-algorithm learner, persist the
//! tuned configuration, and reload it into a fresh context.
//!
//! ```sh
//! cargo run --release --example cost_learning
//! ```

use rheem::prelude::*;
use rheem_core::learner::{samples_from_monitor, write_samples, CostLearner, LogGenerator};

fn main() -> Result<()> {
    let ctx = rheem::default_context();

    // 1. Generate execution logs: pipeline, merge and iterative topologies
    //    across input sizes and UDF complexities.
    println!("generating execution logs (3 topologies × sizes × UDF costs)…");
    let generator = LogGenerator {
        sizes: vec![1_000, 20_000, 80_000],
        udf_costs: vec![1.0, 8.0],
        iterations: 5,
    };
    let samples = generator.generate(&ctx)?;
    println!("  {} stage samples collected", samples.len());

    let dir = std::env::temp_dir().join("rheem_cost_learning");
    std::fs::create_dir_all(&dir).map_err(rheem_core::error::RheemError::Io)?;
    let log = dir.join("execution_log.tsv");
    write_samples(&log, &samples)?;
    println!("  logs written to {}", log.display());

    // 2. Fit the cost model with the GA under the paper's relative loss.
    println!("fitting the cost model (genetic algorithm)…");
    let learner = CostLearner::default();
    let model = learner.fit(&samples, ctx.profiles());
    let fitted = learner.evaluate(&model, &samples, ctx.profiles());
    let default = learner.evaluate(&rheem_core::cost::CostModel::new(), &samples, ctx.profiles());
    println!("  relative loss: defaults {default:.4} → learned {fitted:.4}");

    // 3. Persist profiles + learned parameters as a deployment config.
    let conf = dir.join("rheem.conf");
    rheem_core::config::save(&conf, ctx.profiles(), &model)?;
    println!("  configuration saved to {}", conf.display());

    // 4. A fresh context picks the tuned model up.
    let (profiles, model) =
        rheem_core::config::load(&conf, &rheem_core::platform::Profiles::paper_testbed())?;
    let mut tuned = rheem::default_context();
    *tuned.profiles_mut() = profiles;
    tuned.cost_model_mut().merge(&model);
    println!(
        "  reloaded {} learned parameters into a fresh context",
        tuned.cost_model().params().len()
    );

    // The tuned context optimizes as usual.
    let mut b = rheem_core::plan::PlanBuilder::new();
    b.collection((0..10_000i64).map(Value::from).collect::<Vec<_>>())
        .map(MapUdf::new("x2", |v| Value::from(v.as_int().unwrap() * 2)))
        .count()
        .collect();
    let plan = b.build()?;
    let opt = tuned.optimize(&plan)?;
    println!(
        "tuned optimizer estimate for a 10k map+count: {:.2} ms on {:?}",
        opt.est_ms, opt.platforms
    );
    let _ = samples_from_monitor(ctx.monitor());
    Ok(())
}
