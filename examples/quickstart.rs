//! Quickstart: build a platform-agnostic plan, let the cross-platform
//! optimizer pick engines, and inspect what it chose.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rheem::prelude::*;
use rheem_core::plan::PlanBuilder;

fn main() -> Result<()> {
    // A context with JavaStreams, Spark and Flink registered.
    let ctx = rheem::default_context();

    // WordCount over a small generated corpus (platform-agnostic plan).
    let lines: Vec<Value> =
        rheem::datagen::generate_text(2_000, 10, 2_000, 42).into_iter().map(Value::from).collect();

    let mut b = PlanBuilder::new();
    let sink = b
        .collection(lines)
        .flat_map(FlatMapUdf::new("split", |v| {
            v.as_str().unwrap_or("").split_whitespace().map(Value::from).collect()
        }))
        .map(MapUdf::new("pair", |w| Value::pair(w.clone(), Value::from(1))))
        .reduce_by_key(
            KeyUdf::field(0),
            ReduceUdf::new("sum", |a, b| {
                Value::pair(
                    a.field(0).clone(),
                    Value::from(a.field(1).as_int().unwrap() + b.field(1).as_int().unwrap()),
                )
            }),
        )
        .collect();
    let plan = b.build()?;

    // Ask the optimizer to explain itself before running.
    println!("{}", ctx.explain(&plan)?);

    let result = ctx.execute(&plan)?;
    let mut counts: Vec<(String, i64)> = result
        .sink(sink)?
        .iter()
        .map(|v| (v.field(0).to_string(), v.field(1).as_int().unwrap_or(0)))
        .collect();
    counts.sort_by_key(|(_, c)| -c);

    println!("\ntop words:");
    for (w, c) in counts.iter().take(10) {
        println!("  {w:<12} {c}");
    }
    println!(
        "\nexecuted on {:?} in {:.1} virtual ms ({:.1} real ms)",
        result.metrics.platforms, result.metrics.virtual_ms, result.metrics.real_ms
    );
    Ok(())
}
