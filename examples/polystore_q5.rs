//! Data Civilizer polystore example (§2.4): TPC-H Q5 across three stores —
//! LINEITEM/ORDERS on the HDFS simulacrum, CUSTOMER/SUPPLIER/REGION in the
//! Postgres simulacrum, NATION on the local filesystem. Rheem runs each
//! slice where the data lives and joins across stores.
//!
//! ```sh
//! cargo run --release --example polystore_q5
//! ```

use rheem::dataciv::{build_q5_plan, place};
use rheem::platform_postgres::PostgresPlatform;
use rheem::prelude::*;

fn main() -> Result<()> {
    let data = rheem::datagen::tpch::generate(0.5, 7);
    println!(
        "TPC-H (scaled): {} lineitems, {} orders, {} customers, {} suppliers",
        data.lineitem.len(),
        data.orders.len(),
        data.customer.len(),
        data.supplier.len()
    );

    // Spread the tables across the three stores like the paper.
    let placement = place(&data, "example_q5")?;
    println!(
        "placement: lineitem/orders -> {}, nation -> local fs, rest -> postgres",
        placement.lineitem.parent().unwrap().display()
    );

    let mut ctx = rheem::default_context();
    ctx.register_platform(&PostgresPlatform::new(std::sync::Arc::clone(&placement.db)));

    let (plan, sink) = build_q5_plan(&placement, "ASIA", 1995)?;
    let result = ctx.execute(&plan)?;

    println!("\nQ5 revenue per ASIA nation (1995):");
    for row in result.sink(sink)?.iter() {
        println!("  {:<10} {:>14.2}", row.field(0), row.field(1).as_f64().unwrap_or(0.0));
    }
    println!(
        "\nplatforms used: {:?}  |  {:.1} virtual ms",
        result.metrics.platforms, result.metrics.virtual_ms
    );
    Ok(())
}
