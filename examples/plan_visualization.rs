//! Render a Rheem plan and its optimized execution plan as Graphviz `dot`
//! files (the library counterpart of Rheem Studio's drawing surface, §5).
//!
//! ```sh
//! cargo run --release --example plan_visualization
//! dot -Tpng /tmp/rheem_viz/sgd_exec.dot -o sgd_exec.png   # if graphviz is installed
//! ```

use rheem::prelude::*;
use rheem_core::dot::{exec_plan_to_dot, plan_to_dot};

fn main() -> Result<()> {
    let points = std::sync::Arc::new(rheem::datagen::generate_points(5_000, 4, 0.05, 3).points);
    let cfg = rheem::ml4all::SgdConfig { iterations: 20, batch: 32, ..Default::default() };
    let (plan, _) =
        rheem::ml4all::build_sgd_plan(rheem::ml4all::PointSource::InMemory(points), &cfg)?;

    let ctx = rheem::default_context();
    let (opt, eplan) = ctx.compile(&plan)?;
    // Execute once so the physical rendering carries measured profiles
    // (tuples, virtual ms, retries) next to the optimizer's estimates.
    let result = ctx.execute(&plan)?;

    let dir = std::env::temp_dir().join("rheem_viz");
    std::fs::create_dir_all(&dir).map_err(rheem_core::error::RheemError::Io)?;
    let logical = dir.join("sgd_plan.dot");
    let physical = dir.join("sgd_exec.dot");
    std::fs::write(&logical, plan_to_dot(&plan)).map_err(rheem_core::error::RheemError::Io)?;
    std::fs::write(&physical, exec_plan_to_dot(&plan, &opt, &eplan, result.trace.as_ref()))
        .map_err(rheem_core::error::RheemError::Io)?;

    println!("Rheem plan (Fig. 3a analogue):      {}", logical.display());
    println!("execution plan (Fig. 3b analogue):  {}", physical.display());
    println!("\nexecution plan summary:\n{}", eplan.describe());
    Ok(())
}
