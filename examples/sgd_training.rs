//! ML4all example (§2.2): train a classifier with SGD using the Fig. 3
//! plan shape — the optimizer mixes a distributed engine for the data side
//! with the driver-adjacent engine for the weight updates.
//!
//! ```sh
//! cargo run --release --example sgd_training
//! ```

use std::sync::Arc;

use rheem::ml4all::{build_sgd_plan, hinge_loss, weights_of, PointSource, SgdConfig};
use rheem::prelude::*;

fn main() -> Result<()> {
    let set = rheem::datagen::generate_points(50_000, 6, 0.05, 11);
    let points: Dataset = Arc::new(set.points);

    let cfg =
        SgdConfig { dims: 6, batch: 128, iterations: 150, learning_rate: 0.05, tolerance: None };
    let (plan, sink) = build_sgd_plan(PointSource::InMemory(Arc::clone(&points)), &cfg)?;

    let ctx = rheem::default_context();
    let result = ctx.execute(&plan)?;
    let w = weights_of(result.sink(sink)?);

    println!("learned weights: {w:?}");
    println!(
        "hinge loss: {:.4} (untrained: {:.4})",
        hinge_loss(&points, &w),
        hinge_loss(&points, &vec![0.0; cfg.dims]),
    );
    println!(
        "ran on {:?} in {:.1} virtual ms, {} progressive re-optimizations",
        result.metrics.platforms, result.metrics.virtual_ms, result.metrics.replans
    );
    Ok(())
}
