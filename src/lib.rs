//! # rheem-rs
//!
//! A Rust reproduction of **RHEEM: Enabling Cross-Platform Data Processing**
//! (PVLDB 11(11), 2018) — the system behind the ICDE 2018 tutorial
//! *"Cross-Platform Data Processing: Use Cases and Challenges"* and, later,
//! Apache Wayang.
//!
//! This facade crate re-exports the whole workspace: the core (plans,
//! cross-platform optimizer, executor, monitor, progressive optimizer, cost
//! learner), the platform simulacra (JavaStreams, Spark, Flink, Postgres,
//! Giraph/JGraph/GraphChi), the storage substrate (local FS + HDFS
//! simulacrum), the RheemLatin dataflow language, the paper's applications
//! (BigDansing, ML4all, xDB, Data Civilizer), the single-platform baselines,
//! and the synthetic data generators.
//!
//! ```
//! use rheem::prelude::*;
//!
//! let ctx = rheem::default_context();
//! let mut b = PlanBuilder::new();
//! let sink = b
//!     .collection((0..100i64).map(Value::from).collect::<Vec<_>>())
//!     .map(MapUdf::new("double", |v| Value::from(v.as_int().unwrap() * 2)))
//!     .collect();
//! let plan = b.build().unwrap();
//! let result = ctx.execute(&plan).unwrap();
//! assert_eq!(result.sink(sink).unwrap().len(), 100);
//! ```

#![warn(missing_docs)]

pub use bigdansing;
pub use dataciv;
pub use ml4all;
pub use platform_flink;
pub use platform_graph;
pub use platform_javastreams;
pub use platform_postgres;
pub use platform_spark;
pub use rheem_baselines as baselines;
pub use rheem_core as core;
pub use rheem_datagen as datagen;
pub use rheem_lang as lang;
pub use rheem_storage as storage;
pub use xdb;

pub use rheem_core::prelude;

use rheem_core::api::RheemContext;

/// A context with the general-purpose platforms registered (JavaStreams,
/// Spark, Flink). Add Postgres/graph platforms per application:
/// `ctx.register_platform(&PostgresPlatform::new(db))`.
pub fn default_context() -> RheemContext {
    RheemContext::new()
        .with_platform(&platform_javastreams::JavaStreamsPlatform::new())
        .with_platform(&platform_spark::SparkPlatform::new())
        .with_platform(&platform_flink::FlinkPlatform::new())
}

/// A context with *every* platform of Fig. 5 registered, backed by the given
/// relational store.
pub fn full_context(db: std::sync::Arc<platform_postgres::PgDatabase>) -> RheemContext {
    let mut ctx = default_context();
    ctx.register_platform(&platform_postgres::PostgresPlatform::new(db));
    ctx.register_platform(&platform_graph::GiraphPlatform::new());
    ctx.register_platform(&platform_graph::JGraphPlatform::new());
    ctx.register_platform(&platform_graph::GraphChiPlatform::new());
    ctx
}
