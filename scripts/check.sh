#!/usr/bin/env sh
# Repo gate: formatting, lints on the core crate, and the tier-1 suite.
# Run from the repo root: ./scripts/check.sh
set -eu

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy -p rheem-core (deny warnings)"
cargo clippy -p rheem-core --all-targets -- -D warnings

echo "== tier-1: build + full test suite (adaptive scheduler)"
cargo build --release
cargo test -q

echo "== tier-1 under both forced scheduler modes"
RHEEM_SCHED=conc cargo test -q
RHEEM_SCHED=seq cargo test -q

echo "== tier-1 with the cross-job result cache enabled"
RHEEM_CACHE=on cargo test -q

echo "== tier-1 with the cache spilling to disk (tight memory, 64 MB spill tier)"
RHEEM_CACHE=on RHEEM_CACHE_MB=1 RHEEM_CACHE_DISK_MB=64 cargo test -q

echo "== tier-1 with columnar batch execution disabled (row interpreter)"
RHEEM_BATCH=off cargo test -q

echo "== trace round-trip (native JSON + chrome export)"
cargo run --release -q -p rheem-bench --bin trace_dump

echo "== scheduler bench gate (makespan < sequential sum; pool < spawn)"
cargo run --release -q -p rheem-bench --bin sched_bench

echo "== result-cache bench gate (warm rerun >= 2x; structural sharing >= 2x; spill replay >= 2x)"
cargo run --release -q -p rheem-bench --bin cache_bench

echo "== columnar batch bench gate (>= 1.5x on wordcount, scan, shuffle exchange, join)"
cargo run --release -q -p rheem-bench --bin batch_bench

echo "== multi-tenant service stress suite (2-core and 8-core pool shapes)"
RHEEM_POOL=2 cargo test -q --release --test service -- --test-threads=1
RHEEM_POOL=8 cargo test -q --release --test service -- --test-threads=1

echo "== job-service bench gate (>= 2x jobs/sec at 16 tenants vs serial)"
cargo run --release -q -p rheem-bench --bin service_bench

echo "== observability suite (recorder, exposition, watchdog over live TCP scrapes)"
cargo test -q --release --test obs -- --test-threads=1

echo "== observability bench gate (recorder+SLO overhead < 5%; live scrape leg)"
cargo run --release -q -p rheem-bench --bin obs_bench

echo "== all checks passed"
